//! The advisor contract: constraints and the `IndexAdvisor` trait.

use isum_optimizer::{IndexConfig, WhatIfOptimizer};
use isum_workload::{CompressedWorkload, Workload};

/// Tuning constraints, matching the knobs the paper varies in its
/// evaluation: configuration size (Fig 9b) and storage budget (Fig 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningConstraints {
    /// Maximum number of indexes in the recommended configuration.
    pub max_indexes: usize,
    /// Storage budget in bytes (`None` = unconstrained). DTA's default is
    /// 3× the database size (Sec 8.1).
    pub storage_budget_bytes: Option<u64>,
}

impl TuningConstraints {
    /// `m` indexes, unconstrained storage.
    pub fn with_max_indexes(m: usize) -> Self {
        Self { max_indexes: m, storage_budget_bytes: None }
    }

    /// `m` indexes under a byte budget.
    pub fn with_budget(m: usize, bytes: u64) -> Self {
        Self { max_indexes: m, storage_budget_bytes: Some(bytes) }
    }
}

impl Default for TuningConstraints {
    fn default() -> Self {
        Self { max_indexes: 16, storage_budget_bytes: None }
    }
}

/// An index advisor: recommends a configuration for a weighted subset of a
/// workload. The advisor must only inspect the queries named by `subset`
/// (that is the whole point of workload compression); the weights convey
/// each query's representativeness (Sec 7).
pub trait IndexAdvisor {
    /// Short display name used by experiment reports.
    fn name(&self) -> &'static str;

    /// Recommends a configuration.
    fn recommend(
        &self,
        optimizer: &WhatIfOptimizer<'_>,
        workload: &Workload,
        subset: &CompressedWorkload,
        constraints: &TuningConstraints,
    ) -> IndexConfig;

    /// Convenience: tune the *entire* workload with uniform weights.
    fn recommend_full(
        &self,
        optimizer: &WhatIfOptimizer<'_>,
        workload: &Workload,
        constraints: &TuningConstraints,
    ) -> IndexConfig {
        let all = CompressedWorkload::uniform(workload.queries.iter().map(|q| q.id).collect());
        self.recommend(optimizer, workload, &all, constraints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_constructors() {
        let a = TuningConstraints::with_max_indexes(8);
        assert_eq!(a.max_indexes, 8);
        assert_eq!(a.storage_budget_bytes, None);
        let b = TuningConstraints::with_budget(4, 1024);
        assert_eq!(b.storage_budget_bytes, Some(1024));
        assert_eq!(TuningConstraints::default().max_indexes, 16);
    }
}
