//! Anytime tuning under a time budget (DTA's anytime mode \[12\], discussed
//! in Sec 1 and Sec 10 of the ISUM paper: "index advisors support tuning
//! with a time-budget ... queries from the input workload are consumed and
//! tuned incrementally").
//!
//! [`AnytimeDta`] consumes the (weighted) queries in descending weight
//! order — the compressed workload's weights say which queries matter most
//! — growing the candidate pool and re-running enumeration, keeping the
//! best configuration found so far. When the deadline strikes, the current
//! best is returned; given enough time it converges to the batch
//! [`DtaAdvisor`] result.

use std::time::{Duration, Instant};

use isum_optimizer::{Index, IndexConfig, WhatIfOptimizer};
use isum_workload::{CompressedWorkload, Workload};

use crate::advisor::TuningConstraints;
use crate::dta::DtaAdvisor;
use crate::enumerate::{greedy_enumerate, weighted_cost};
use crate::merging::merged_candidates;

/// Anytime wrapper around the DTA-like advisor.
#[derive(Debug, Clone, Default)]
pub struct AnytimeDta {
    inner: DtaAdvisor,
}

/// Progress report from an anytime run.
#[derive(Debug, Clone)]
pub struct AnytimeOutcome {
    /// Best configuration found before the deadline.
    pub config: IndexConfig,
    /// Queries whose candidates were processed before time ran out.
    pub queries_consumed: usize,
    /// True when every query was processed (the run converged to batch).
    pub completed: bool,
}

impl AnytimeDta {
    /// Anytime advisor with default DTA options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tunes under a wall-clock budget.
    pub fn recommend_within(
        &self,
        optimizer: &WhatIfOptimizer<'_>,
        workload: &Workload,
        subset: &CompressedWorkload,
        constraints: &TuningConstraints,
        budget: Duration,
    ) -> AnytimeOutcome {
        let deadline = Instant::now() + budget;
        // Highest-weight queries first: their indexes matter most.
        let mut order: Vec<(isum_common::QueryId, f64)> = subset.entries.clone();
        order.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights"));

        let mut pool: Vec<Index> = Vec::new();
        let mut best = IndexConfig::empty();
        let mut best_cost = weighted_cost(optimizer, workload, &subset.entries, &best);
        let mut consumed = 0;
        // Re-enumerating after every query would make the whole run
        // quadratic in n; instead enumerate whenever the consumed count
        // doubles (and once more at the end), the classic anytime schedule.
        let mut next_enumeration = 1usize;
        let mut enumerated_at = 0usize;
        let enumerate_now = |pool: &Vec<Index>, best: &mut IndexConfig, best_cost: &mut f64| {
            let mut trial_pool = pool.clone();
            if self.inner.merging {
                trial_pool.extend(merged_candidates(pool, pool.len() / 2 + 1, 8));
            }
            let cfg =
                greedy_enumerate(optimizer, workload, &subset.entries, &trial_pool, constraints);
            let cost = weighted_cost(optimizer, workload, &subset.entries, &cfg);
            if cost < *best_cost {
                *best_cost = cost;
                *best = cfg;
            }
        };
        for (i, &(id, _)) in order.iter().enumerate() {
            if Instant::now() >= deadline && consumed > 0 {
                break;
            }
            for ix in self.inner.selected_candidates(optimizer, workload, id) {
                if !pool.contains(&ix) {
                    pool.push(ix);
                }
            }
            consumed = i + 1;
            if consumed >= next_enumeration {
                enumerate_now(&pool, &mut best, &mut best_cost);
                enumerated_at = consumed;
                next_enumeration = consumed * 2;
            }
        }
        if consumed > enumerated_at {
            enumerate_now(&pool, &mut best, &mut best_cost);
        }
        AnytimeOutcome {
            config: best,
            queries_consumed: consumed,
            completed: consumed == order.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advisor::IndexAdvisor;
    use isum_optimizer::populate_costs;
    use isum_workload::gen::tpch_workload;

    fn setup() -> Workload {
        let mut w = tpch_workload(1, 12, 8).expect("tpch binds");
        populate_costs(&mut w);
        w
    }

    #[test]
    fn generous_budget_converges_to_batch() {
        let w = setup();
        let opt = WhatIfOptimizer::new(&w.catalog);
        let sub = CompressedWorkload::uniform(w.queries.iter().map(|q| q.id).collect());
        let constraints = TuningConstraints::with_max_indexes(8);
        let outcome = AnytimeDta::new().recommend_within(
            &opt,
            &w,
            &sub,
            &constraints,
            Duration::from_secs(120),
        );
        assert!(outcome.completed);
        assert_eq!(outcome.queries_consumed, 12);
        let batch = DtaAdvisor::new().recommend(&opt, &w, &sub, &constraints);
        let anytime_imp = opt.improvement_pct(&w, &outcome.config);
        let batch_imp = opt.improvement_pct(&w, &batch);
        // Anytime keeps the best over a superset of enumeration runs — it
        // can only match or beat the single batch pass.
        assert!(
            anytime_imp >= batch_imp - 1e-6,
            "anytime {anytime_imp:.2} vs batch {batch_imp:.2}"
        );
    }

    #[test]
    fn zero_budget_still_processes_one_query() {
        let w = setup();
        let opt = WhatIfOptimizer::new(&w.catalog);
        let sub = CompressedWorkload::uniform(w.queries.iter().map(|q| q.id).collect());
        let outcome = AnytimeDta::new().recommend_within(
            &opt,
            &w,
            &sub,
            &TuningConstraints::with_max_indexes(8),
            Duration::ZERO,
        );
        assert_eq!(outcome.queries_consumed, 1, "first query always consumed");
        assert!(!outcome.config.is_empty(), "one query still yields indexes");
    }

    #[test]
    fn high_weight_queries_are_consumed_first() {
        let w = setup();
        let opt = WhatIfOptimizer::new(&w.catalog);
        // Put all the weight on the last query; with a zero budget only it
        // is processed, so every index must belong to its tables.
        let last = w.queries.last().expect("non-empty").id;
        let mut entries: Vec<_> = w.queries.iter().map(|q| (q.id, 0.001)).collect();
        entries.last_mut().expect("non-empty").1 = 1.0;
        let sub = CompressedWorkload { entries };
        let outcome = AnytimeDta::new().recommend_within(
            &opt,
            &w,
            &sub,
            &TuningConstraints::with_max_indexes(4),
            Duration::ZERO,
        );
        let tables = w.query(last).bound.referenced_tables();
        for ix in outcome.config.indexes() {
            assert!(tables.contains(&ix.table), "index outside the top-weight query's tables");
        }
    }
}
