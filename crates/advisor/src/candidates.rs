//! Syntactically relevant candidate-index generation.
//!
//! Implements Table 1 of the ISUM paper — the rules index advisors apply to
//! combine a query's indexable columns into candidate indexes:
//!
//! | rule | key order |
//! |------|-----------|
//! | R1 | selection |
//! | R2 | join |
//! | R3 | selection + join |
//! | R4 | join + selection |
//! | R5 | order-by + selection + join |
//! | R6 | group-by + selection + join |
//! | R7 | order-by + join + selection |
//! | R8 | group-by + join + selection |
//!
//! plus a covering extension (selection + every other referenced column of
//! the table, the index-merging–style widening DTA performs) that lets the
//! optimizer use index-only scans.

use isum_catalog::Catalog;
use isum_common::{ColumnId, TableId};
use isum_optimizer::Index;
use isum_sql::BoundQuery;
use isum_workload::{indexable_columns, IndexableColumn};

/// Options bounding candidate generation.
#[derive(Debug, Clone, Copy)]
pub struct CandidateOptions {
    /// Maximum selection columns considered per table (most selective kept).
    pub max_selection_cols: usize,
    /// Maximum key columns in any candidate.
    pub max_key_cols: usize,
    /// Generate the wide covering variants.
    pub covering: bool,
}

impl Default for CandidateOptions {
    fn default() -> Self {
        Self { max_selection_cols: 3, max_key_cols: 8, covering: true }
    }
}

/// Generates the syntactically relevant candidate indexes of one query,
/// deduplicated, grouped by nothing in particular (order is deterministic).
pub fn candidate_indexes(
    bound: &BoundQuery,
    catalog: &Catalog,
    opts: &CandidateOptions,
) -> Vec<Index> {
    let cols = indexable_columns(bound, catalog);
    let mut out: Vec<Index> = Vec::new();
    // Group indexable columns by table.
    let mut tables: Vec<TableId> = cols.iter().map(|c| c.gid.table).collect();
    tables.sort_unstable();
    tables.dedup();

    for table in tables {
        let per: Vec<&IndexableColumn> = cols.iter().filter(|c| c.gid.table == table).collect();
        // Selection columns: sargable filters ordered by selectivity
        // (most selective first — the order advisors key indexes in).
        let mut sel: Vec<&IndexableColumn> =
            per.iter().copied().filter(|c| c.positions.filter && c.sargable).collect();
        sel.sort_by(|a, b| a.selectivity.partial_cmp(&b.selectivity).expect("finite"));
        sel.truncate(opts.max_selection_cols);
        let sel: Vec<ColumnId> = sel.iter().map(|c| c.gid.column).collect();
        let join: Vec<ColumnId> =
            per.iter().copied().filter(|c| c.positions.join).map(|c| c.gid.column).collect();
        let group: Vec<ColumnId> =
            per.iter().copied().filter(|c| c.positions.group_by).map(|c| c.gid.column).collect();
        let order: Vec<ColumnId> =
            per.iter().copied().filter(|c| c.positions.order_by).map(|c| c.gid.column).collect();

        let mut push = |keys: Vec<ColumnId>| {
            let keys: Vec<ColumnId> = keys.into_iter().take(opts.max_key_cols).collect();
            if keys.is_empty() {
                return;
            }
            let ix = Index::new(table, keys);
            if !out.contains(&ix) {
                out.push(ix);
            }
        };

        // R1: each selection column alone, and the full selection prefix.
        for &c in &sel {
            push(vec![c]);
        }
        if sel.len() > 1 {
            push(sel.clone());
        }
        // R2: each join column alone.
        for &c in &join {
            push(vec![c]);
        }
        // R3 / R4.
        if !sel.is_empty() && !join.is_empty() {
            push(concat(&sel, &join));
            push(concat(&join, &sel));
        }
        // R5 / R7 (order-by leading).
        if !order.is_empty() {
            push(concat(&order, &concat(&sel, &join)));
            push(concat(&order, &concat(&join, &sel)));
        }
        // R6 / R8 (group-by leading).
        if !group.is_empty() {
            push(concat(&group, &concat(&sel, &join)));
            push(concat(&group, &concat(&join, &sel)));
        }
        // Covering widening: most selective predicate leads, every other
        // referenced column of this table follows.
        if opts.covering {
            let lead: Vec<ColumnId> = if !sel.is_empty() {
                sel.clone()
            } else if !join.is_empty() {
                vec![join[0]]
            } else if !group.is_empty() {
                group.clone()
            } else {
                Vec::new()
            };
            if !lead.is_empty() {
                let mut rest: Vec<ColumnId> = slot_used_columns(bound, table)
                    .into_iter()
                    .filter(|c| !lead.contains(c))
                    .collect();
                rest.sort_unstable();
                if !rest.is_empty() {
                    push(concat(&lead, &rest));
                }
            }
        }
    }
    out
}

/// All columns of `table` the query references anywhere (projection
/// included) — what a covering index must contain.
fn slot_used_columns(bound: &BoundQuery, table: TableId) -> Vec<ColumnId> {
    let mut out: Vec<ColumnId> = Vec::new();
    let mut add = |t: TableId, c: ColumnId| {
        if t == table && !out.contains(&c) {
            out.push(c);
        }
    };
    for f in &bound.filters {
        add(f.column.gid.table, f.column.gid.column);
    }
    for j in &bound.joins {
        add(j.left.gid.table, j.left.gid.column);
        add(j.right.gid.table, j.right.gid.column);
    }
    for c in bound.group_by.iter().chain(&bound.order_by).chain(&bound.projections) {
        add(c.gid.table, c.gid.column);
    }
    out
}

fn concat(a: &[ColumnId], b: &[ColumnId]) -> Vec<ColumnId> {
    let mut v = a.to_vec();
    for &c in b {
        if !v.contains(&c) {
            v.push(c);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_catalog::CatalogBuilder;
    use isum_sql::{parse, Binder};

    fn setup(sql: &str) -> (Catalog, Vec<Index>) {
        let catalog = CatalogBuilder::new()
            .table("orders", 1_500_000)
            .col_key("o_orderkey")
            .col_int("o_custkey", 100_000, 1, 150_000)
            .col_date("o_orderdate", 8035, 10_591)
            .finish()
            .unwrap()
            .table("lineitem", 6_000_000)
            .col_int("l_orderkey", 1_500_000, 1, 1_500_000)
            .col_float("l_quantity", 50, 1.0, 50.0)
            .col_date("l_shipdate", 8035, 10_591)
            .finish()
            .unwrap()
            .build();
        let b = Binder::new(&catalog).bind(&parse(sql).unwrap()).unwrap();
        let cands = candidate_indexes(&b, &catalog, &CandidateOptions::default());
        (catalog, cands)
    }

    fn names(catalog: &Catalog, cands: &[Index]) -> Vec<String> {
        cands.iter().map(|i| i.display(catalog)).collect()
    }

    #[test]
    fn single_filter_generates_r1_and_covering() {
        let (c, cands) = setup("SELECT o_orderdate FROM orders WHERE o_custkey = 7");
        let n = names(&c, &cands);
        assert!(n.contains(&"orders(o_custkey)".to_string()), "{n:?}");
        assert!(
            n.iter().any(|s| s.starts_with("orders(o_custkey, ")),
            "covering variant expected: {n:?}"
        );
    }

    #[test]
    fn join_query_generates_r2_r3_r4() {
        let (c, cands) = setup(
            "SELECT o_orderdate FROM orders, lineitem \
             WHERE o_orderkey = l_orderkey AND l_quantity < 5",
        );
        let n = names(&c, &cands);
        assert!(n.contains(&"orders(o_orderkey)".to_string()), "R2: {n:?}");
        assert!(n.contains(&"lineitem(l_orderkey)".to_string()), "R2: {n:?}");
        assert!(n.contains(&"lineitem(l_quantity, l_orderkey)".to_string()), "R3: {n:?}");
        assert!(n.contains(&"lineitem(l_orderkey, l_quantity)".to_string()), "R4: {n:?}");
    }

    #[test]
    fn group_and_order_lead_r5_to_r8() {
        let (c, cands) = setup(
            "SELECT o_custkey, count(*) FROM orders WHERE o_orderdate < DATE '1995-01-01' \
             GROUP BY o_custkey ORDER BY o_custkey",
        );
        let n = names(&c, &cands);
        assert!(
            n.contains(&"orders(o_custkey, o_orderdate)".to_string()),
            "group-by leading: {n:?}"
        );
    }

    #[test]
    fn candidates_are_deduplicated_and_bounded() {
        let (_, cands) = setup(
            "SELECT o_custkey, count(*) FROM orders, lineitem \
             WHERE o_orderkey = l_orderkey AND o_orderdate < DATE '1995-01-01' \
             AND l_quantity < 10 AND l_shipdate > DATE '1997-01-01' \
             GROUP BY o_custkey ORDER BY o_custkey",
        );
        let mut seen = std::collections::HashSet::new();
        for ix in &cands {
            assert!(seen.insert(ix.clone()), "duplicate candidate {ix:?}");
            assert!(ix.key_columns.len() <= 8);
        }
        assert!(cands.len() >= 8, "rich query should have many candidates, got {}", cands.len());
        assert!(cands.len() <= 40, "and not explode: {}", cands.len());
    }

    #[test]
    fn no_indexable_columns_no_candidates() {
        let (_, cands) = setup("SELECT o_orderkey FROM orders");
        assert!(cands.is_empty());
    }

    #[test]
    fn options_control_width() {
        let catalog = CatalogBuilder::new()
            .table("t", 1000)
            .col_int("a", 100, 0, 100)
            .col_int("b", 100, 0, 100)
            .col_int("c", 100, 0, 100)
            .col_int("d", 100, 0, 100)
            .finish()
            .unwrap()
            .build();
        let b = Binder::new(&catalog)
            .bind(&parse("SELECT a FROM t WHERE a = 1 AND b = 2 AND c = 3 AND d = 4").unwrap())
            .unwrap();
        let narrow = candidate_indexes(
            &b,
            &catalog,
            &CandidateOptions { max_selection_cols: 1, max_key_cols: 2, covering: false },
        );
        assert!(narrow.iter().all(|ix| ix.key_columns.len() <= 2));
        let wide = candidate_indexes(&b, &catalog, &CandidateOptions::default());
        assert!(wide.iter().any(|ix| ix.key_columns.len() >= 3));
    }
}
