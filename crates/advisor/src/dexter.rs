//! The DEXTER-like advisor (Sec 8.3 of the paper).
//!
//! DEXTER \[2\] is an open-source PostgreSQL advisor the paper uses to check
//! generalizability. Compared to DTA it is deliberately simpler: per-query
//! hypothetical-index trials with a *minimum improvement* threshold, a union
//! of winners, no index merging, no storage budget, and only narrow (one- or
//! two-column) indexes. The paper notes it "misses optimizations such as
//! index merging" and supports fewer constraints — we reproduce exactly
//! those limitations.

use isum_optimizer::{Index, IndexConfig, WhatIfOptimizer};
use isum_workload::{indexable_columns, CompressedWorkload, Workload};

use crate::advisor::{IndexAdvisor, TuningConstraints};

/// DEXTER-like single-pass advisor.
#[derive(Debug, Clone)]
pub struct DexterAdvisor {
    /// Minimum per-query improvement fraction for an index to be considered
    /// (DEXTER's `--min-cost-savings-pct`; the paper sets it to 5%).
    pub min_improvement: f64,
}

impl Default for DexterAdvisor {
    fn default() -> Self {
        Self { min_improvement: 0.05 }
    }
}

impl DexterAdvisor {
    /// Advisor with the paper's 5% threshold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Narrow candidates: single filter/join columns and (filter, filter)
    /// pairs — no wide covering indexes.
    fn narrow_candidates(&self, workload: &Workload, id: isum_common::QueryId) -> Vec<Index> {
        let q = workload.query(id);
        let cols = indexable_columns(&q.bound, &workload.catalog);
        let mut out: Vec<Index> = Vec::new();
        let mut push = |ix: Index| {
            if !out.contains(&ix) {
                out.push(ix);
            }
        };
        let mut filters: Vec<_> = cols
            .iter()
            .filter(|c| (c.positions.filter || c.positions.join) && c.sargable)
            .collect();
        filters.sort_by(|a, b| a.selectivity.partial_cmp(&b.selectivity).expect("finite"));
        for c in &filters {
            push(Index::new(c.gid.table, vec![c.gid.column]));
        }
        for a in &filters {
            for b in &filters {
                if a.gid != b.gid && a.gid.table == b.gid.table {
                    push(Index::new(a.gid.table, vec![a.gid.column, b.gid.column]));
                }
            }
        }
        out
    }
}

impl IndexAdvisor for DexterAdvisor {
    fn name(&self) -> &'static str {
        "DEXTER"
    }

    fn recommend(
        &self,
        optimizer: &WhatIfOptimizer<'_>,
        workload: &Workload,
        subset: &CompressedWorkload,
        constraints: &TuningConstraints,
    ) -> IndexConfig {
        // Per-query: try narrow candidates, keep those clearing the
        // threshold, scored by weighted gain.
        let mut scored: Vec<(f64, Index)> = Vec::new();
        for &(id, weight) in &subset.entries {
            let base = optimizer.cost_query(workload, id, &IndexConfig::empty());
            if base <= 0.0 {
                continue;
            }
            for ix in self.narrow_candidates(workload, id) {
                let cost =
                    optimizer.cost_query(workload, id, &IndexConfig::from_indexes([ix.clone()]));
                let gain = base - cost;
                if gain / base >= self.min_improvement {
                    match scored.iter_mut().find(|(_, i)| *i == ix) {
                        Some((g, _)) => *g += weight * gain,
                        None => scored.push((weight * gain, ix)),
                    }
                }
            }
        }
        // Union of winners, best first, truncated to the configuration
        // size; no merging, no storage accounting (DEXTER's limitations).
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite gains"));
        IndexConfig::from_indexes(
            scored.into_iter().take(constraints.max_indexes).map(|(_, ix)| ix),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dta::DtaAdvisor;
    use isum_workload::gen::tpch::{tpch_catalog, tpch_workload};

    #[test]
    fn recommends_narrow_indexes_only() {
        let mut w = tpch_workload(1, 22, 1).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        let advisor = DexterAdvisor::new();
        let cfg = advisor.recommend_full(&opt, &w, &TuningConstraints::with_max_indexes(10));
        assert!(!cfg.is_empty());
        for ix in cfg.indexes() {
            assert!(ix.key_columns.len() <= 2, "{}", ix.display(&catalog));
        }
    }

    #[test]
    fn improvements_are_smaller_than_dta() {
        // Sec 8.3: "the improvements are in general smaller than DTA, ...
        // misses optimizations such as index merging".
        let mut w = tpch_workload(1, 22, 2).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        let c = TuningConstraints::with_max_indexes(10);
        let dex = DexterAdvisor::new().recommend_full(&opt, &w, &c);
        let dta = DtaAdvisor::new().recommend_full(&opt, &w, &c);
        let imp_dex = opt.improvement_pct(&w, &dex);
        let imp_dta = opt.improvement_pct(&w, &dta);
        assert!(imp_dex <= imp_dta + 1e-9, "DEXTER {imp_dex} vs DTA {imp_dta}");
        assert!(imp_dex > 0.0);
    }

    #[test]
    fn threshold_filters_marginal_indexes() {
        let mut w = tpch_workload(1, 22, 3).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        let strict = DexterAdvisor { min_improvement: 0.9 };
        let lax = DexterAdvisor { min_improvement: 0.01 };
        let c = TuningConstraints::with_max_indexes(32);
        let n_strict = strict.recommend_full(&opt, &w, &c).len();
        let n_lax = lax.recommend_full(&opt, &w, &c).len();
        assert!(n_strict <= n_lax, "{n_strict} > {n_lax}");
    }
}
