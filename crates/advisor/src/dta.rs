//! The DTA-like advisor: candidate generation → per-query candidate
//! selection → greedy configuration enumeration, following the published
//! Database Tuning Advisor architecture (Fig 1 of the paper, \[7, 14\]).

use isum_optimizer::{Index, IndexConfig, WhatIfOptimizer};
use isum_workload::{CompressedWorkload, Workload};

use crate::advisor::{IndexAdvisor, TuningConstraints};
use crate::candidates::{candidate_indexes, CandidateOptions};
use crate::enumerate::greedy_enumerate;
use crate::merging::merged_candidates;

/// DTA-like three-phase index advisor.
#[derive(Debug, Clone)]
pub struct DtaAdvisor {
    /// Candidate-generation options.
    pub options: CandidateOptions,
    /// Candidates kept per query after per-query selection.
    pub per_query_keep: usize,
    /// Apply index merging \[16\] to the pooled candidates before
    /// enumeration (DTA does; DEXTER does not — Sec 8.3).
    pub merging: bool,
}

impl Default for DtaAdvisor {
    fn default() -> Self {
        Self { options: CandidateOptions::default(), per_query_keep: 8, merging: true }
    }
}

impl DtaAdvisor {
    /// Advisor with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Phase 1+2: candidates for one query, pruned to those that actually
    /// improve the query (per-query candidate selection), best first.
    pub fn selected_candidates(
        &self,
        optimizer: &WhatIfOptimizer<'_>,
        workload: &Workload,
        query: isum_common::QueryId,
    ) -> Vec<Index> {
        let q = workload.query(query);
        let base = optimizer.cost_query(workload, query, &IndexConfig::empty());
        // Each candidate costing is an independent what-if call; fan them
        // out, then keep the winners in candidate order so the stable
        // gain sort below ties exactly as the sequential scan did.
        let candidates = candidate_indexes(&q.bound, &workload.catalog, &self.options);
        let gains = isum_exec::par_map(&candidates, |ix| {
            let cfg = IndexConfig::from_indexes([ix.clone()]);
            optimizer.cost_query(workload, query, &cfg)
        });
        let mut scored: Vec<(f64, Index)> = candidates
            .into_iter()
            .zip(gains)
            .filter_map(|(ix, cost)| {
                let gain = base - cost;
                (gain > 1e-9).then_some((gain, ix))
            })
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite gains"));
        scored.truncate(self.per_query_keep);
        scored.into_iter().map(|(_, ix)| ix).collect()
    }
}

impl IndexAdvisor for DtaAdvisor {
    fn name(&self) -> &'static str {
        "DTA"
    }

    fn recommend(
        &self,
        optimizer: &WhatIfOptimizer<'_>,
        workload: &Workload,
        subset: &CompressedWorkload,
        constraints: &TuningConstraints,
    ) -> IndexConfig {
        let _tune = isum_common::telemetry::span("tune");
        // Phase 1+2 per tuned query.
        let mut pool: Vec<Index> = {
            let _s = isum_common::telemetry::span("candidates");
            // Per-query selection runs concurrently (the optimizer is
            // Sync); the dedup merge stays a sequential scan in subset
            // order, so the pool order is thread-count independent.
            let per_query = isum_exec::par_map(&subset.entries, |&(id, _)| {
                self.selected_candidates(optimizer, workload, id)
            });
            let mut pool: Vec<Index> = Vec::new();
            for ix in per_query.into_iter().flatten() {
                if !pool.contains(&ix) {
                    pool.push(ix);
                }
            }
            pool
        };
        // Phase 2.5: index merging widens the pool with indexes that can
        // serve several queries at lower storage.
        if self.merging {
            let merged = merged_candidates(&pool, pool.len() / 2 + 1, 8);
            pool.extend(merged);
        }
        isum_common::count!("advisor.candidates.pooled", pool.len() as u64);
        // Phase 3: greedy enumeration over the weighted subset.
        greedy_enumerate(optimizer, workload, &subset.entries, &pool, constraints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_common::QueryId;
    use isum_workload::gen::tpch::{tpch_catalog, tpch_workload};

    #[test]
    fn recommends_useful_indexes_on_tpch() {
        let mut w = tpch_workload(1, 22, 1).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        let advisor = DtaAdvisor::new();
        let cfg = advisor.recommend_full(&opt, &w, &TuningConstraints::with_max_indexes(10));
        assert!(!cfg.is_empty());
        let imp = opt.improvement_pct(&w, &cfg);
        assert!(imp > 10.0, "TPC-H full tuning should improve >10%, got {imp:.1}%");
    }

    #[test]
    fn more_indexes_never_hurt() {
        let mut w = tpch_workload(1, 12, 2).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        let advisor = DtaAdvisor::new();
        let mut prev = 0.0;
        for m in [1usize, 2, 4, 8] {
            let cfg = advisor.recommend_full(&opt, &w, &TuningConstraints::with_max_indexes(m));
            let imp = opt.improvement_pct(&w, &cfg);
            assert!(imp + 1e-9 >= prev, "m={m}: {imp} < {prev}");
            prev = imp;
        }
    }

    #[test]
    fn per_query_candidate_selection_only_keeps_winners() {
        let mut w = tpch_workload(1, 22, 3).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        let advisor = DtaAdvisor::new();
        for id in 0..6 {
            let cands = advisor.selected_candidates(&opt, &w, QueryId(id));
            assert!(cands.len() <= advisor.per_query_keep);
            let base = opt.cost_query(&w, QueryId(id), &IndexConfig::empty());
            for ix in cands {
                let cost =
                    opt.cost_query(&w, QueryId(id), &IndexConfig::from_indexes([ix.clone()]));
                assert!(cost < base, "{} kept but useless", ix.display(&catalog));
            }
        }
    }

    #[test]
    fn tuning_subset_only_sees_subset_tables() {
        let mut w = tpch_workload(1, 22, 4).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        let advisor = DtaAdvisor::new();
        // Tune only Q6 (pure lineitem query).
        let sub = CompressedWorkload::uniform(vec![QueryId(5)]);
        let cfg = advisor.recommend(&opt, &w, &sub, &TuningConstraints::with_max_indexes(8));
        let li = catalog.table_id("lineitem").unwrap();
        for ix in cfg.indexes() {
            assert_eq!(ix.table, li, "only lineitem may be indexed");
        }
    }

    #[test]
    fn empty_subset_empty_config() {
        let mut w = tpch_workload(1, 4, 5).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        let advisor = DtaAdvisor::new();
        let cfg = advisor.recommend(
            &opt,
            &w,
            &CompressedWorkload::default(),
            &TuningConstraints::default(),
        );
        assert!(cfg.is_empty());
        assert_eq!(advisor.name(), "DTA");
    }
}
