//! Greedy configuration enumeration.
//!
//! The combinatorial heart of an index advisor (Fig 1, step 3): from a pool
//! of candidate indexes, pick the subset that maximizes the weighted cost
//! reduction of the tuned queries, subject to a configuration-size limit and
//! an optional storage budget. Exact search is NP-hard \[10, 17\]; like DTA we
//! use greedy marginal-gain selection, which also makes the advisor's
//! explored-configuration count grow quadratically with candidates — the
//! scalability pain Fig 2 of the paper measures.

use isum_common::telemetry;
use isum_common::{count, record, QueryId};
use isum_optimizer::{Index, IndexConfig, WhatIfOptimizer};
use isum_workload::Workload;

use crate::advisor::TuningConstraints;

/// Greedily selects a configuration from `pool` minimizing the weighted cost
/// of `(query, weight)` pairs. Returns the chosen configuration.
pub fn greedy_enumerate(
    optimizer: &WhatIfOptimizer<'_>,
    workload: &Workload,
    tuned: &[(QueryId, f64)],
    pool: &[Index],
    constraints: &TuningConstraints,
) -> IndexConfig {
    let _s = telemetry::span("enumerate");
    count!("advisor.greedy.pool_size", pool.len() as u64);
    let catalog = optimizer.catalog();
    let mut cfg = IndexConfig::empty();
    let mut remaining: Vec<&Index> = pool.iter().collect();
    let mut used_bytes: u64 = 0;
    let mut current = weighted_cost(optimizer, workload, tuned, &cfg);

    while cfg.len() < constraints.max_indexes && !remaining.is_empty() {
        count!("advisor.greedy.iterations");
        let calls_before = optimizer.optimizer_calls();
        // Every trial configuration of this round is independent: fan the
        // what-if costings out over the pool, then pick the winner in a
        // sequential index-order scan (first strict maximum), so the pick
        // matches the sequential loop at any thread count.
        let trials = isum_exec::par_map(&remaining, |ix| {
            let bytes = ix.size_bytes(catalog);
            if let Some(budget) = constraints.storage_budget_bytes {
                if used_bytes + bytes > budget {
                    return None;
                }
            }
            let mut trial = cfg.clone();
            trial.add((*ix).clone());
            let cost = weighted_cost(optimizer, workload, tuned, &trial);
            Some((current - cost, bytes))
        });
        let mut best: Option<(usize, f64, u64)> = None;
        for (i, t) in trials.into_iter().enumerate() {
            let Some((gain, bytes)) = t else { continue };
            if gain > 1e-9 && best.is_none_or(|(_, g, _)| gain > g) {
                best = Some((i, gain, bytes));
            }
        }
        // Per-round what-if pressure: this is the quadratic growth Fig 2
        // attributes 70–80% of tuning time to.
        record!(
            "advisor.greedy.whatif_calls_per_round",
            optimizer.optimizer_calls() - calls_before
        );
        match best {
            Some((i, gain, bytes)) => {
                cfg.add(remaining.remove(i).clone());
                used_bytes += bytes;
                current -= gain;
            }
            None => break,
        }
    }
    cfg
}

/// Weighted cost of the tuned queries under a configuration. Weights are
/// scaled so a weight of zero removes a query from consideration.
pub fn weighted_cost(
    optimizer: &WhatIfOptimizer<'_>,
    workload: &Workload,
    tuned: &[(QueryId, f64)],
    cfg: &IndexConfig,
) -> f64 {
    tuned.iter().map(|&(id, w)| w * optimizer.cost_query(workload, id, cfg)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_optimizer::WhatIfOptimizer;
    use isum_workload::gen::tpch::{tpch_catalog, tpch_workload};
    use isum_workload::Workload;

    use crate::candidates::{candidate_indexes, CandidateOptions};

    fn pool_for(w: &Workload) -> Vec<Index> {
        let mut pool = Vec::new();
        for q in &w.queries {
            for ix in candidate_indexes(&q.bound, &w.catalog, &CandidateOptions::default()) {
                if !pool.contains(&ix) {
                    pool.push(ix);
                }
            }
        }
        pool
    }

    #[test]
    fn greedy_respects_max_indexes() {
        let mut w = tpch_workload(1, 8, 3).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        let pool = pool_for(&w);
        let tuned: Vec<_> = w.queries.iter().map(|q| (q.id, 1.0)).collect();
        let cfg =
            greedy_enumerate(&opt, &w, &tuned, &pool, &TuningConstraints::with_max_indexes(3));
        assert!(cfg.len() <= 3);
        assert!(!cfg.is_empty(), "TPC-H queries must benefit from some index");
    }

    #[test]
    fn greedy_respects_storage_budget() {
        let mut w = tpch_workload(1, 8, 3).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        let pool = pool_for(&w);
        let tuned: Vec<_> = w.queries.iter().map(|q| (q.id, 1.0)).collect();
        let budget = 50 * 1024 * 1024; // 50 MiB: tight at sf=1
        let cfg =
            greedy_enumerate(&opt, &w, &tuned, &pool, &TuningConstraints::with_budget(16, budget));
        assert!(cfg.total_bytes(&catalog) <= budget);
    }

    #[test]
    fn each_greedy_pick_reduces_weighted_cost() {
        let mut w = tpch_workload(1, 6, 5).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        let pool = pool_for(&w);
        let tuned: Vec<_> = w.queries.iter().map(|q| (q.id, 1.0)).collect();
        let mut prev = weighted_cost(&opt, &w, &tuned, &IndexConfig::empty());
        // Re-run greedy with increasing budgets; cost must be monotone.
        for m in 1..=4 {
            let cfg =
                greedy_enumerate(&opt, &w, &tuned, &pool, &TuningConstraints::with_max_indexes(m));
            let cost = weighted_cost(&opt, &w, &tuned, &cfg);
            assert!(cost <= prev + 1e-9, "m={m}: {cost} > {prev}");
            prev = cost;
        }
    }

    #[test]
    fn zero_weight_queries_are_ignored() {
        let mut w = tpch_workload(1, 4, 7).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        let pool = pool_for(&w);
        let only_first: Vec<_> =
            w.queries.iter().map(|q| (q.id, if q.id.index() == 0 { 1.0 } else { 0.0 })).collect();
        let cfg =
            greedy_enumerate(&opt, &w, &only_first, &pool, &TuningConstraints::with_max_indexes(4));
        // Every selected index must be relevant to query 0's tables.
        let q0_tables = w.queries[0].bound.referenced_tables();
        for ix in cfg.indexes() {
            assert!(q0_tables.contains(&ix.table), "irrelevant index {ix:?}");
        }
    }

    #[test]
    fn empty_pool_yields_empty_config() {
        let mut w = tpch_workload(1, 2, 9).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        let tuned: Vec<_> = w.queries.iter().map(|q| (q.id, 1.0)).collect();
        let cfg = greedy_enumerate(&opt, &w, &tuned, &[], &TuningConstraints::with_max_indexes(4));
        assert!(cfg.is_empty());
    }
}
