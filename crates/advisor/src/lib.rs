//! Index advisors.
//!
//! Implements the three-stage architecture of Fig 1 in the ISUM paper
//! (candidate generation → per-query candidate selection → configuration
//! enumeration) as a [`DtaAdvisor`], the stand-in for Microsoft's Database
//! Tuning Advisor, plus a deliberately simpler [`DexterAdvisor`] mirroring
//! the open-source DEXTER tool used in Sec 8.3 (per-query heuristics, a
//! minimum-improvement threshold, no merging, no storage budget).
//!
//! Both implement the [`IndexAdvisor`] trait over a *weighted* compressed
//! workload, exactly the contract workload compression hands its tuner.

pub mod advisor;
pub mod anytime;
pub mod candidates;
pub mod dexter;
pub mod dta;
pub mod enumerate;
pub mod merging;
pub mod report;

pub use advisor::{IndexAdvisor, TuningConstraints};
pub use anytime::{AnytimeDta, AnytimeOutcome};
pub use candidates::{candidate_indexes, CandidateOptions};
pub use dexter::DexterAdvisor;
pub use dta::DtaAdvisor;
pub use merging::{merge_pair, merged_candidates};
pub use report::{QueryReport, TuningReport};
