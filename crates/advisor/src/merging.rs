//! Index merging (Chaudhuri & Narasayya, ICDE 1999 — cited as \[16\] in the
//! ISUM paper).
//!
//! Merging reduces storage and optimizer calls by replacing two candidate
//! indexes on the same table with one index that serves (most of) both:
//! the merged index keeps the first index's full key order and appends the
//! columns unique to the second. DTA applies merging during candidate
//! selection; DEXTER famously does not (Sec 8.3 attributes part of the
//! quality gap to exactly this).

use isum_common::TableId;
use isum_optimizer::Index;

/// Merges two indexes on the same table: `a`'s key order, then `b`'s
/// columns not already present. Returns `None` for different tables or
/// when the merge would equal `a` (nothing gained).
pub fn merge_pair(a: &Index, b: &Index) -> Option<Index> {
    if a.table != b.table {
        return None;
    }
    let mut keys = a.key_columns.clone();
    for &c in &b.key_columns {
        if !keys.contains(&c) {
            keys.push(c);
        }
    }
    if keys.len() == a.key_columns.len() {
        return None; // b ⊆ a
    }
    Some(Index::new(a.table, keys))
}

/// Expands a candidate pool with pairwise merges, capped at `max_new`
/// additional indexes and `max_width` key columns. Wider merges are
/// generated first from the most-overlapping pairs, mirroring how merging
/// prefers indexes that share a prefix.
pub fn merged_candidates(pool: &[Index], max_new: usize, max_width: usize) -> Vec<Index> {
    let mut scored: Vec<(usize, Index)> = Vec::new();
    for (i, a) in pool.iter().enumerate() {
        for b in pool.iter().skip(i + 1) {
            if let Some(m) = merge_pair(a, b) {
                if m.key_columns.len() <= max_width
                    && !pool.contains(&m)
                    && !scored.iter().any(|(_, x)| *x == m)
                {
                    let overlap =
                        a.key_columns.iter().filter(|c| b.key_columns.contains(c)).count();
                    scored.push((overlap, m));
                }
            }
        }
    }
    scored.sort_by_key(|(overlap, _)| std::cmp::Reverse(*overlap));
    scored.into_iter().take(max_new).map(|(_, m)| m).collect()
}

/// Per-table grouping helper used by callers that merge within one table.
pub fn group_by_table(pool: &[Index]) -> Vec<(TableId, Vec<&Index>)> {
    let mut out: Vec<(TableId, Vec<&Index>)> = Vec::new();
    for ix in pool {
        match out.iter_mut().find(|(t, _)| *t == ix.table) {
            Some((_, v)) => v.push(ix),
            None => out.push((ix.table, vec![ix])),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_common::ColumnId;

    fn ix(t: u32, cols: &[u32]) -> Index {
        Index::new(TableId(t), cols.iter().map(|&c| ColumnId(c)).collect())
    }

    #[test]
    fn merge_keeps_first_order_appends_rest() {
        let m = merge_pair(&ix(0, &[1, 2]), &ix(0, &[3, 2])).expect("merges");
        assert_eq!(m, ix(0, &[1, 2, 3]));
    }

    #[test]
    fn merge_rejects_cross_table_and_subsets() {
        assert!(merge_pair(&ix(0, &[1]), &ix(1, &[2])).is_none());
        assert!(merge_pair(&ix(0, &[1, 2]), &ix(0, &[2])).is_none(), "b subset of a");
    }

    #[test]
    fn merged_candidates_respects_caps_and_dedup() {
        let pool = vec![ix(0, &[1]), ix(0, &[2]), ix(0, &[3]), ix(0, &[1, 2])];
        let merged = merged_candidates(&pool, 3, 2);
        assert!(merged.len() <= 3);
        assert!(merged.iter().all(|m| m.key_columns.len() <= 2));
        assert!(merged.iter().all(|m| !pool.contains(m)));
        let unlimited = merged_candidates(&pool, 100, 8);
        let mut seen = std::collections::HashSet::new();
        for m in &unlimited {
            assert!(seen.insert(m.clone()), "duplicate merge {m:?}");
        }
    }

    #[test]
    fn overlapping_pairs_merge_first() {
        let pool = vec![ix(0, &[1, 2]), ix(0, &[2, 3]), ix(0, &[9])];
        let merged = merged_candidates(&pool, 1, 8);
        // (1,2)+(2,3) share a column; the disjoint merge with 9 ranks lower.
        assert_eq!(merged[0], ix(0, &[1, 2, 3]));
    }

    #[test]
    fn group_by_table_partitions() {
        let pool = vec![ix(0, &[1]), ix(1, &[1]), ix(0, &[2])];
        let groups = group_by_table(&pool);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].1.len(), 2);
        assert_eq!(groups[1].1.len(), 1);
    }
}
