//! Tuning reports: per-query drill-downs and improvement accounting.
//!
//! Sec 10 of the ISUM paper describes the contract commercial advisors
//! keep: "report the actual improvement on the entire (uncompressed) input
//! workload ... along with drill-downs on which indexes were used by each
//! query" — and notes that for large workloads this estimation step erodes
//! compression's benefit, posing as an open question whether the report
//! could be computed from the compressed workload alone.
//!
//! This module implements both sides of that trade-off:
//!
//! * [`TuningReport::exact`] — one what-if call per input query (the
//!   expensive, DTA-style report), with the indexes each query's plan uses
//!   extracted from the priced [`PlanNode`].
//! * [`TuningReport::extrapolated`] — what-if calls only for the
//!   *compressed* queries, extrapolating each unselected query's
//!   improvement from its most similar selected representative (the
//!   direction the paper suggests exploring).

use isum_core::features::{Featurizer, WorkloadFeatures};
use isum_core::similarity::weighted_jaccard;
use isum_optimizer::{CostModel, IndexConfig, PlanNode, WhatIfOptimizer};
use isum_workload::{CompressedWorkload, Workload};

/// One query's entry in a tuning report.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// Query id (index into the workload).
    pub query: isum_common::QueryId,
    /// Cost under the existing design.
    pub cost_before: f64,
    /// (Estimated) cost under the recommended configuration.
    pub cost_after: f64,
    /// Indexes of the configuration the query's plan actually uses
    /// (rendered via `Index::display`); empty for extrapolated entries.
    pub indexes_used: Vec<isum_optimizer::Index>,
    /// True when `cost_after` came from a what-if call; false when it was
    /// extrapolated from a similar tuned query.
    pub measured: bool,
}

impl QueryReport {
    /// The query's improvement fraction in `[0, 1]`.
    pub fn improvement(&self) -> f64 {
        if self.cost_before <= 0.0 {
            0.0
        } else {
            ((self.cost_before - self.cost_after) / self.cost_before).clamp(0.0, 1.0)
        }
    }
}

/// A full tuning report.
#[derive(Debug, Clone)]
pub struct TuningReport {
    /// Per-query entries, in workload order.
    pub entries: Vec<QueryReport>,
}

impl TuningReport {
    /// The exact report: one what-if costing per input query, plus plan
    /// inspection for the drill-down. Costs `n` optimizer calls.
    pub fn exact(
        optimizer: &WhatIfOptimizer<'_>,
        workload: &Workload,
        config: &IndexConfig,
    ) -> Self {
        let model = CostModel::new(optimizer.catalog());
        let entries = workload
            .queries
            .iter()
            .map(|q| {
                let after = optimizer.cost_query(workload, q.id, config);
                let plan = model.plan(&q.bound, config);
                let indexes_used = plan.map(|p| collect_indexes(&p)).unwrap_or_default();
                QueryReport {
                    query: q.id,
                    cost_before: q.cost,
                    cost_after: after,
                    indexes_used,
                    measured: true,
                }
            })
            .collect();
        Self { entries }
    }

    /// The extrapolated report: what-if costings only for the compressed
    /// queries; every other query inherits the improvement *fraction* of
    /// its most similar selected query, damped by the similarity itself
    /// (similarity 1 → same fraction, similarity 0 → no improvement).
    /// Costs `k` optimizer calls instead of `n`.
    pub fn extrapolated(
        optimizer: &WhatIfOptimizer<'_>,
        workload: &Workload,
        subset: &CompressedWorkload,
        config: &IndexConfig,
    ) -> Self {
        let model = CostModel::new(optimizer.catalog());
        let features = WorkloadFeatures::build(workload, &Featurizer::default());
        // Measure the selected queries.
        let mut measured: Vec<(usize, f64)> = Vec::new(); // (idx, improvement frac)
        let mut entries: Vec<Option<QueryReport>> = vec![None; workload.len()];
        for &(id, _) in &subset.entries {
            let q = workload.query(id);
            let after = optimizer.cost_query(workload, id, config);
            let plan = model.plan(&q.bound, config);
            let report = QueryReport {
                query: id,
                cost_before: q.cost,
                cost_after: after,
                indexes_used: plan.map(|p| collect_indexes(&p)).unwrap_or_default(),
                measured: true,
            };
            measured.push((id.index(), report.improvement()));
            entries[id.index()] = Some(report);
        }
        // Extrapolate the rest.
        for (i, q) in workload.queries.iter().enumerate() {
            if entries[i].is_some() {
                continue;
            }
            let (sim, frac) = measured
                .iter()
                .map(|&(j, frac)| {
                    (weighted_jaccard(&features.original[i], &features.original[j]), frac)
                })
                .max_by(|a, b| a.0.partial_cmp(&b.0).expect("finite similarity"))
                .unwrap_or((0.0, 0.0));
            let est_frac = sim * frac;
            entries[i] = Some(QueryReport {
                query: q.id,
                cost_before: q.cost,
                cost_after: q.cost * (1.0 - est_frac),
                indexes_used: Vec::new(),
                measured: false,
            });
        }
        Self { entries: entries.into_iter().map(|e| e.expect("every entry filled")).collect() }
    }

    /// Workload-level improvement (%) implied by the report.
    pub fn total_improvement_pct(&self) -> f64 {
        let before: f64 = self.entries.iter().map(|e| e.cost_before).sum();
        let after: f64 = self.entries.iter().map(|e| e.cost_after).sum();
        if before <= 0.0 {
            0.0
        } else {
            (before - after) / before * 100.0
        }
    }

    /// Number of what-if-measured entries.
    pub fn measured_count(&self) -> usize {
        self.entries.iter().filter(|e| e.measured).count()
    }
}

/// Collects the distinct indexes a plan uses.
fn collect_indexes(plan: &PlanNode) -> Vec<isum_optimizer::Index> {
    let mut out = Vec::new();
    collect_rec(plan, &mut out);
    out
}

fn collect_rec(p: &PlanNode, out: &mut Vec<isum_optimizer::Index>) {
    let mut push = |ix: &isum_optimizer::Index| {
        if !out.contains(ix) {
            out.push(ix.clone());
        }
    };
    match p {
        PlanNode::IndexSeek { index, .. } | PlanNode::IndexOnlyScan { index, .. } => push(index),
        PlanNode::IndexNestedLoopJoin { outer, index, .. } => {
            push(index);
            collect_rec(outer, out);
        }
        PlanNode::HashJoin { left, right, .. } | PlanNode::CrossJoin { left, right, .. } => {
            collect_rec(left, out);
            collect_rec(right, out);
        }
        PlanNode::HashAggregate { input, .. } | PlanNode::Sort { input, .. } => {
            collect_rec(input, out)
        }
        PlanNode::SeqScan { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advisor::{IndexAdvisor, TuningConstraints};
    use crate::dta::DtaAdvisor;
    use isum_core::{Compressor, Isum};
    use isum_optimizer::populate_costs;
    use isum_workload::gen::tpch_workload;

    fn setup() -> (Workload, IndexConfig, CompressedWorkload) {
        let mut w = tpch_workload(1, 22, 12).expect("tpch binds");
        populate_costs(&mut w);
        let cw = Isum::new().compress(&w, 6).expect("valid inputs");
        let opt = WhatIfOptimizer::new(&w.catalog);
        let cfg =
            DtaAdvisor::new().recommend(&opt, &w, &cw, &TuningConstraints::with_max_indexes(10));
        (w, cfg, cw)
    }

    #[test]
    fn exact_report_matches_optimizer_improvement() {
        let (w, cfg, _) = setup();
        let opt = WhatIfOptimizer::new(&w.catalog);
        let report = TuningReport::exact(&opt, &w, &cfg);
        assert_eq!(report.entries.len(), w.len());
        assert_eq!(report.measured_count(), w.len());
        let direct = opt.improvement_pct(&w, &cfg);
        assert!(
            (report.total_improvement_pct() - direct).abs() < 1e-6,
            "report {} vs direct {}",
            report.total_improvement_pct(),
            direct
        );
    }

    #[test]
    fn improved_queries_show_their_indexes() {
        let (w, cfg, _) = setup();
        let opt = WhatIfOptimizer::new(&w.catalog);
        let report = TuningReport::exact(&opt, &w, &cfg);
        for e in &report.entries {
            if e.improvement() > 0.05 {
                assert!(
                    !e.indexes_used.is_empty(),
                    "{} improved {:.0}% without using an index?",
                    e.query,
                    e.improvement() * 100.0
                );
                // Every reported index must be part of the configuration.
                for ix in &e.indexes_used {
                    assert!(cfg.contains(ix));
                }
            }
        }
    }

    #[test]
    fn extrapolated_report_is_cheap_and_close() {
        let (w, cfg, cw) = setup();
        let opt = WhatIfOptimizer::new(&w.catalog);
        let exact = TuningReport::exact(&opt, &w, &cfg);
        let opt2 = WhatIfOptimizer::new(&w.catalog);
        let extra = TuningReport::extrapolated(&opt2, &w, &cw, &cfg);
        assert_eq!(extra.measured_count(), cw.len(), "only compressed queries measured");
        assert!(
            opt2.optimizer_calls() < opt.optimizer_calls(),
            "extrapolation must make fewer what-if calls"
        );
        let err = (extra.total_improvement_pct() - exact.total_improvement_pct()).abs();
        assert!(
            err < 25.0,
            "extrapolated {:.1}% vs exact {:.1}%",
            extra.total_improvement_pct(),
            exact.total_improvement_pct()
        );
    }

    #[test]
    fn improvement_fraction_clamped() {
        let r = QueryReport {
            query: isum_common::QueryId(0),
            cost_before: 0.0,
            cost_after: 10.0,
            indexes_used: vec![],
            measured: true,
        };
        assert_eq!(r.improvement(), 0.0);
        let r2 = QueryReport { cost_before: 10.0, cost_after: 2.0, ..r };
        assert!((r2.improvement() - 0.8).abs() < 1e-12);
    }
}
