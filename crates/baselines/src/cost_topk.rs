//! Cost top-k baseline.

use isum_common::{QueryId, Result};
use isum_core::compressor::{validate, Compressor};
use isum_workload::{CompressedWorkload, Workload};

/// Selects the `k` most expensive queries, weighted by cost share. Strong
/// when cost dominates improvement (Real-M, Sec 8.1) but redundant when a
/// template's many instances all rank high (Fig 12a).
#[derive(Debug, Clone, Copy, Default)]
pub struct CostTopK;

impl Compressor for CostTopK {
    fn name(&self) -> String {
        "Cost".into()
    }

    fn compress(&self, workload: &Workload, k: usize) -> Result<CompressedWorkload> {
        let _s = isum_common::telemetry::span("cost_topk");
        validate(workload, k)?;
        let mut order: Vec<usize> = (0..workload.len()).collect();
        order.sort_by(|&a, &b| {
            workload.queries[b]
                .cost
                .partial_cmp(&workload.queries[a].cost)
                .expect("finite costs")
                .then(a.cmp(&b))
        });
        order.truncate(k);
        let total: f64 = order.iter().map(|&i| workload.queries[i].cost).sum();
        let entries = order
            .into_iter()
            .map(|i| {
                let w = if total > 0.0 { workload.queries[i].cost / total } else { 0.0 };
                (QueryId::from_index(i), w)
            })
            .collect();
        let mut cw = CompressedWorkload { entries };
        if total <= 0.0 {
            cw = CompressedWorkload::uniform(cw.ids());
        }
        Ok(cw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_catalog::CatalogBuilder;

    fn workload(costs: &[f64]) -> Workload {
        let catalog = CatalogBuilder::new()
            .table("t", 1000)
            .col_key("a")
            .col_int("b", 100, 0, 100)
            .finish()
            .unwrap()
            .build();
        let sqls: Vec<String> =
            (0..costs.len()).map(|i| format!("SELECT a FROM t WHERE b = {i}")).collect();
        let mut w = Workload::from_sql(catalog, &sqls).unwrap();
        w.set_costs(costs);
        w
    }

    #[test]
    fn picks_most_expensive() {
        let w = workload(&[5.0, 50.0, 1.0, 30.0]);
        let cw = CostTopK.compress(&w, 2).unwrap();
        let ids: Vec<usize> = cw.ids().iter().map(|i| i.index()).collect();
        assert_eq!(ids, vec![1, 3]);
        // Weights proportional to cost: 50/80 and 30/80.
        assert!((cw.entries[0].1 - 0.625).abs() < 1e-12);
        assert!((cw.entries[1].1 - 0.375).abs() < 1e-12);
    }

    #[test]
    fn ties_break_by_id_for_determinism() {
        let w = workload(&[10.0, 10.0, 10.0]);
        let cw = CostTopK.compress(&w, 2).unwrap();
        let ids: Vec<usize> = cw.ids().iter().map(|i| i.index()).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn zero_cost_workload_falls_back_to_uniform_weights() {
        let w = workload(&[0.0, 0.0]);
        let cw = CostTopK.compress(&w, 2).unwrap();
        assert_eq!(cw.entries[0].1, 0.5);
    }
}
