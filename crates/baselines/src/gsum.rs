//! GSUM: the coverage + representativity greedy of Deep et al. \[20\].
//!
//! GSUM maximizes (a) *coverage* — the fraction of workload feature mass
//! present in the summary — and (b) *representativity* — how closely the
//! summary's feature distribution matches the workload's. Its featurization
//! is indexing-agnostic (every referenced column counts equally), which is
//! precisely the weakness ISUM targets (Sec 9: "the featurization ... is
//! agnostic of the features that are more relevant to index tuning").

use std::collections::HashMap;

use isum_common::{GlobalColumnId, QueryId, Result};
use isum_core::compressor::{validate, Compressor};
use isum_workload::{indexable_columns, CompressedWorkload, Workload};

/// GSUM greedy compressor.
#[derive(Debug, Clone, Copy)]
pub struct Gsum {
    /// Trade-off between coverage and representativity in `\[0, 1\]`
    /// (`alpha = 1` is pure coverage). Deep et al. balance both; 0.5 is
    /// the default.
    pub alpha: f64,
}

impl Default for Gsum {
    fn default() -> Self {
        Self { alpha: 0.5 }
    }
}

impl Gsum {
    /// GSUM with the default trade-off.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Compressor for Gsum {
    fn name(&self) -> String {
        "GSUM".into()
    }

    fn compress(&self, workload: &Workload, k: usize) -> Result<CompressedWorkload> {
        let _s = isum_common::telemetry::span("gsum");
        validate(workload, k)?;
        let n = workload.len();
        let k = k.min(n);
        // Indexing-agnostic featurization: the set of referenced columns
        // per query, with workload-level frequencies.
        let per_query: Vec<Vec<GlobalColumnId>> = workload
            .queries
            .iter()
            .map(|q| {
                let mut cols: Vec<GlobalColumnId> = indexable_columns(&q.bound, &workload.catalog)
                    .into_iter()
                    .map(|c| c.gid)
                    .collect();
                // Projection columns count too (GSUM is syntax-driven).
                cols.extend(q.bound.projections.iter().map(|p| p.gid));
                cols.sort_unstable();
                cols.dedup();
                cols
            })
            .collect();
        let mut freq: HashMap<GlobalColumnId, f64> = HashMap::new();
        for cols in &per_query {
            for &c in cols {
                *freq.entry(c).or_insert(0.0) += 1.0;
            }
        }
        let total_freq: f64 = freq.values().sum();
        if total_freq <= 0.0 {
            // Degenerate workload (no columns anywhere): fall back to the
            // first k queries.
            return Ok(CompressedWorkload::uniform((0..k).map(QueryId::from_index).collect()));
        }

        // Greedy: maximize alpha * coverage_gain + (1-alpha) * representativity.
        let mut covered: HashMap<GlobalColumnId, f64> = HashMap::new();
        let mut summary_count: HashMap<GlobalColumnId, f64> = HashMap::new();
        let mut summary_total = 0.0;
        let mut picked: Vec<usize> = Vec::with_capacity(k);
        let mut in_summary = vec![false; n];
        for _ in 0..k {
            let mut best: Option<(usize, f64)> = None;
            for i in 0..n {
                if in_summary[i] {
                    continue;
                }
                // Coverage gain: frequency mass of newly covered columns.
                let gain: f64 = per_query[i]
                    .iter()
                    .filter(|c| !covered.contains_key(c))
                    .map(|c| freq[c] / total_freq)
                    .sum();
                // Representativity: 1 − L1 distance between the summary's
                // column distribution (with i added) and the workload's.
                let mut trial = summary_count.clone();
                for &c in &per_query[i] {
                    *trial.entry(c).or_insert(0.0) += 1.0;
                }
                let trial_total = summary_total + per_query[i].len() as f64;
                let mut l1 = 0.0;
                for (&c, &f) in &freq {
                    let p = f / total_freq;
                    let q =
                        trial.get(&c).copied().unwrap_or(0.0) / trial_total.max(f64::MIN_POSITIVE);
                    l1 += (p - q).abs();
                }
                let repr = 1.0 - l1 / 2.0;
                let score = self.alpha * gain + (1.0 - self.alpha) * repr;
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((i, score));
                }
            }
            let Some((pick, _)) = best else { break };
            in_summary[pick] = true;
            picked.push(pick);
            for &c in &per_query[pick] {
                *covered.entry(c).or_insert(0.0) += 1.0;
                *summary_count.entry(c).or_insert(0.0) += 1.0;
            }
            summary_total += per_query[pick].len() as f64;
        }
        Ok(CompressedWorkload::uniform(picked.into_iter().map(QueryId::from_index).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_catalog::CatalogBuilder;

    fn workload() -> Workload {
        let catalog = CatalogBuilder::new()
            .table("t", 10_000)
            .col_key("a")
            .col_int("b", 100, 0, 100)
            .col_int("c", 100, 0, 100)
            .col_int("d", 100, 0, 100)
            .finish()
            .unwrap()
            .build();
        let mut w = Workload::from_sql(
            catalog,
            &[
                "SELECT a FROM t WHERE b = 1",                     // {a, b}
                "SELECT a FROM t WHERE b = 2",                     // {a, b} duplicate shape
                "SELECT a FROM t WHERE c = 1",                     // {a, c}
                "SELECT a FROM t WHERE d = 1",                     // {a, d}
                "SELECT a FROM t WHERE b = 1 AND c = 2 AND d = 3", // covers all
            ],
        )
        .unwrap();
        w.set_costs(&[1.0; 5]);
        w
    }

    #[test]
    fn first_pick_maximizes_coverage() {
        let w = workload();
        let cw = Gsum::new().compress(&w, 1).unwrap();
        assert_eq!(cw.ids()[0].index(), 4, "the all-columns query covers most");
    }

    #[test]
    fn subsequent_picks_avoid_pure_duplicates() {
        let w = workload();
        let cw = Gsum::new().compress(&w, 3).unwrap();
        let ids: Vec<usize> = cw.ids().iter().map(|i| i.index()).collect();
        // Picking both b-duplicates before c/d would sacrifice coverage.
        assert!(
            !(ids.contains(&0) && ids.contains(&1)),
            "duplicate-shape queries both picked early: {ids:?}"
        );
    }

    #[test]
    fn selects_k_and_normalizes() {
        let w = workload();
        let cw = Gsum::new().compress(&w, 4).unwrap();
        assert_eq!(cw.len(), 4);
        assert!((cw.entries.iter().map(|(_, w)| w).sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_one_is_pure_coverage() {
        let w = workload();
        let pure = Gsum { alpha: 1.0 }.compress(&w, 2).unwrap();
        assert_eq!(pure.ids()[0].index(), 4);
    }

    #[test]
    fn deterministic() {
        let w = workload();
        assert_eq!(Gsum::new().compress(&w, 3).unwrap(), Gsum::new().compress(&w, 3).unwrap());
    }
}
