//! k-medoid clustering baseline (Chaudhuri et al. \[11\], adapted).
//!
//! The original distance function of \[11\] is only defined for queries with
//! identical signatures (same tables and join columns); following Sec 8.1
//! of the ISUM paper we substitute the weighted-Jaccard distance over ISUM
//! feature vectors so the method works across templates. Random seeds,
//! iterative reassignment, medoid recomputation — with the iteration cap
//! that the paper notes trades quality for time.

use isum_common::rng::DetRng;
use isum_common::{QueryId, Result};
use isum_core::compressor::{validate, Compressor};
use isum_core::features::{Featurizer, WorkloadFeatures};
use isum_core::similarity::weighted_jaccard;
use isum_workload::{CompressedWorkload, Workload};

/// k-medoid compressor.
#[derive(Debug, Clone, Copy)]
pub struct KMedoid {
    /// RNG seed for the initial medoids.
    pub seed: u64,
    /// Iteration cap (the approximation \[11\] applies for scalability).
    pub max_iterations: usize,
}

impl KMedoid {
    /// k-medoid with the default iteration cap of 20.
    pub fn new(seed: u64) -> Self {
        Self { seed, max_iterations: 20 }
    }
}

impl Compressor for KMedoid {
    fn name(&self) -> String {
        "k-medoid".into()
    }

    fn compress(&self, workload: &Workload, k: usize) -> Result<CompressedWorkload> {
        let _s = isum_common::telemetry::span("kmedoid");
        validate(workload, k)?;
        let n = workload.len();
        let k = k.min(n);
        let wf = WorkloadFeatures::build(workload, &Featurizer::default());
        let dist = |a: usize, b: usize| 1.0 - weighted_jaccard(&wf.original[a], &wf.original[b]);

        let mut rng = DetRng::seeded(self.seed);
        let mut medoids: Vec<usize> = rng.sample_indices(n, k);
        let mut assignment = vec![0usize; n];
        for _ in 0..self.max_iterations {
            // Assign.
            let mut changed = false;
            for (q, slot) in assignment.iter_mut().enumerate() {
                let best = (0..k)
                    .min_by(|&a, &b| {
                        dist(q, medoids[a])
                            .partial_cmp(&dist(q, medoids[b]))
                            .expect("finite distances")
                    })
                    .expect("k >= 1");
                if *slot != best {
                    *slot = best;
                    changed = true;
                }
            }
            // Recompute medoids.
            let mut moved = false;
            for (c, medoid) in medoids.iter_mut().enumerate() {
                let members: Vec<usize> = (0..n).filter(|&q| assignment[q] == c).collect();
                if members.is_empty() {
                    continue;
                }
                let new = *members
                    .iter()
                    .min_by(|&&a, &&b| {
                        let da: f64 = members.iter().map(|&m| dist(a, m)).sum();
                        let db: f64 = members.iter().map(|&m| dist(b, m)).sum();
                        da.partial_cmp(&db).expect("finite distances")
                    })
                    .expect("non-empty cluster");
                if new != *medoid {
                    *medoid = new;
                    moved = true;
                }
            }
            if !changed && !moved {
                break;
            }
        }
        // Weight each medoid by its cluster's cost share.
        let total_cost: f64 = workload.total_cost();
        let entries: Vec<(QueryId, f64)> = medoids
            .iter()
            .enumerate()
            .map(|(c, &m)| {
                let cluster_cost: f64 =
                    (0..n).filter(|&q| assignment[q] == c).map(|q| workload.queries[q].cost).sum();
                let w = if total_cost > 0.0 { cluster_cost / total_cost } else { 1.0 / k as f64 };
                (QueryId::from_index(m), w)
            })
            .collect();
        // Identical queries can collapse multiple medoids onto one query;
        // merge duplicates by summing their weights.
        let mut merged: Vec<(QueryId, f64)> = Vec::new();
        for (id, w) in entries {
            match merged.iter_mut().find(|(i, _)| *i == id) {
                Some((_, mw)) => *mw += w,
                None => merged.push((id, w)),
            }
        }
        let mut cw = CompressedWorkload { entries: merged };
        cw.normalize_weights();
        Ok(cw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_catalog::CatalogBuilder;

    fn workload() -> Workload {
        let catalog = CatalogBuilder::new()
            .table("t", 100_000)
            .col_key("a")
            .col_int("b", 1000, 0, 1000)
            .col_int("c", 1000, 0, 1000)
            .finish()
            .unwrap()
            .build();
        // Two clear clusters: b-queries and c-queries.
        let sqls: Vec<String> = (0..6)
            .map(|i| format!("SELECT a FROM t WHERE b = {i}"))
            .chain((0..6).map(|i| format!("SELECT a FROM t WHERE c = {i} ORDER BY c")))
            .collect();
        let mut w = Workload::from_sql(catalog, &sqls).unwrap();
        w.set_costs(&[10.0; 12]);
        w
    }

    #[test]
    fn finds_the_two_natural_clusters() {
        // k-medoid is "prone to local minima" (Sec 8.1): when both random
        // seeds land in one cluster it can fail to split. Require that a
        // majority of seeds find the two natural clusters.
        let w = workload();
        let mut split = 0;
        for seed in 0..10 {
            let cw = KMedoid::new(seed).compress(&w, 2).unwrap();
            let ids: Vec<usize> = cw.ids().iter().map(|i| i.index()).collect();
            if ids.len() == 2 && (ids[0] < 6) != (ids[1] < 6) {
                split += 1;
            }
        }
        assert!(split >= 5, "only {split}/10 seeds split the clusters");
    }

    #[test]
    fn weights_reflect_cluster_cost_mass() {
        let mut w = workload();
        // Make the b-cluster carry 90% of the cost.
        let costs: Vec<f64> = (0..12).map(|i| if i < 6 { 90.0 } else { 10.0 }).collect();
        w.set_costs(&costs);
        let cw = KMedoid::new(3).compress(&w, 2).unwrap();
        let (b_weight, c_weight) = {
            let mut bw = 0.0;
            let mut cwt = 0.0;
            for (id, wt) in &cw.entries {
                if id.index() < 6 {
                    bw += wt;
                } else {
                    cwt += wt;
                }
            }
            (bw, cwt)
        };
        assert!(b_weight > c_weight * 5.0, "b={b_weight} c={c_weight}");
    }

    #[test]
    fn deterministic_per_seed() {
        let w = workload();
        assert_eq!(
            KMedoid::new(5).compress(&w, 3).unwrap(),
            KMedoid::new(5).compress(&w, 3).unwrap()
        );
    }

    #[test]
    fn iteration_cap_respected() {
        let w = workload();
        let fast = KMedoid { seed: 1, max_iterations: 1 };
        let cw = fast.compress(&w, 4).unwrap();
        // Identical queries may collapse medoids; at least two distinct
        // medoids must survive, at most the requested four.
        assert!((2..=4).contains(&cw.len()), "got {}", cw.len());
    }

    #[test]
    fn k_equal_n_collapses_identical_queries() {
        // The 12 queries form two groups of 6 identical feature vectors;
        // medoids over duplicates legitimately collapse. Distinct medoids
        // must cover both groups, weights must stay normalized.
        let w = workload();
        let cw = KMedoid::new(1).compress(&w, 12).unwrap();
        let ids: Vec<usize> = cw.ids().iter().map(|i| i.index()).collect();
        assert!(ids.iter().any(|&i| i < 6) && ids.iter().any(|&i| i >= 6), "{ids:?}");
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "no duplicate entries after merging");
        assert!((cw.entries.iter().map(|(_, w)| w).sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
