//! Baseline workload-compression algorithms (Sec 8 of the ISUM paper).
//!
//! * [`UniformSampling`] — uniform random subset.
//! * [`CostTopK`] — the `k` most expensive queries.
//! * [`Stratified`] — cluster by template, sample evenly per cluster.
//! * [`Gsum`] — the coverage + representativity greedy of Deep et al. \[20\].
//! * [`KMedoid`] — the clustering approach of Chaudhuri et al. \[11\],
//!   adapted (as the paper does) to the weighted-Jaccard distance so it is
//!   defined across templates.
//!
//! All implement [`isum_core::Compressor`] so the experiment harness treats
//! them interchangeably with ISUM.

pub mod cost_topk;
pub mod gsum;
pub mod kmedoid;
pub mod stratified;
pub mod uniform;

pub use cost_topk::CostTopK;
pub use gsum::Gsum;
pub use kmedoid::KMedoid;
pub use stratified::Stratified;
pub use uniform::UniformSampling;
