//! Stratified (per-template) sampling baseline.

use std::collections::HashMap;

use isum_common::rng::DetRng;
use isum_common::{QueryId, Result, TemplateId};
use isum_core::compressor::{validate, Compressor};
use isum_workload::{CompressedWorkload, Workload};

/// Clusters queries by template and samples evenly from each cluster
/// (round-robin over templates, uniform within). When `k` is below the
/// template count — common on Real-M-like workloads — some templates go
/// unrepresented, the weakness Sec 1 calls out for template-based methods.
#[derive(Debug, Clone, Copy)]
pub struct Stratified {
    /// RNG seed for within-cluster sampling.
    pub seed: u64,
}

impl Stratified {
    /// Sampler with a fixed seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl Compressor for Stratified {
    fn name(&self) -> String {
        "Stratified".into()
    }

    fn compress(&self, workload: &Workload, k: usize) -> Result<CompressedWorkload> {
        let _s = isum_common::telemetry::span("stratified");
        validate(workload, k)?;
        let k = k.min(workload.len());
        let mut clusters: HashMap<TemplateId, Vec<usize>> = HashMap::new();
        for (i, q) in workload.queries.iter().enumerate() {
            clusters.entry(q.template).or_default().push(i);
        }
        // Deterministic per seed, but unbiased across templates: sort for
        // determinism, then shuffle so k < #templates does not always favor
        // the earliest-interned templates.
        let mut templates: Vec<TemplateId> = clusters.keys().copied().collect();
        templates.sort_unstable();
        let mut rng = DetRng::seeded(self.seed);
        rng.shuffle(&mut templates);
        // Shuffle within clusters once, then deal round-robin.
        for t in &templates {
            let v = clusters.get_mut(t).expect("known template");
            rng.shuffle(v);
        }
        let mut picked: Vec<usize> = Vec::with_capacity(k);
        let mut round = 0;
        while picked.len() < k {
            let mut advanced = false;
            for t in &templates {
                if picked.len() >= k {
                    break;
                }
                if let Some(&q) = clusters[t].get(round) {
                    picked.push(q);
                    advanced = true;
                }
            }
            if !advanced {
                break;
            }
            round += 1;
        }
        Ok(CompressedWorkload::uniform(picked.into_iter().map(QueryId::from_index).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_catalog::CatalogBuilder;

    fn workload() -> Workload {
        let catalog = CatalogBuilder::new()
            .table("t", 1000)
            .col_key("a")
            .col_int("b", 100, 0, 100)
            .col_int("c", 100, 0, 100)
            .finish()
            .unwrap()
            .build();
        // Template A: 6 instances; template B: 2; template C: 1.
        let mut sqls: Vec<String> =
            (0..6).map(|i| format!("SELECT a FROM t WHERE b = {i}")).collect();
        sqls.push("SELECT a FROM t WHERE c > 1".into());
        sqls.push("SELECT a FROM t WHERE c > 2".into());
        sqls.push("SELECT a FROM t WHERE b = 1 AND c = 2".into());
        Workload::from_sql(catalog, &sqls).unwrap()
    }

    #[test]
    fn one_per_template_before_seconds() {
        let w = workload();
        let cw = Stratified::new(3).compress(&w, 3).unwrap();
        let templates: Vec<_> = cw.ids().iter().map(|id| w.queries[id.index()].template).collect();
        let mut t = templates.clone();
        t.sort();
        t.dedup();
        assert_eq!(t.len(), 3, "k = #templates → one instance each, got {templates:?}");
    }

    #[test]
    fn oversampling_rounds_across_templates() {
        let w = workload();
        let cw = Stratified::new(3).compress(&w, 6).unwrap();
        assert_eq!(cw.len(), 6);
        // Counts per template after two rounds: A:2+, B:2, C:1 (exhausted).
        let mut counts = std::collections::HashMap::new();
        for id in cw.ids() {
            *counts.entry(w.queries[id.index()].template).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 3);
        assert!(counts.values().all(|&c| c >= 1));
    }

    #[test]
    fn deterministic_per_seed() {
        let w = workload();
        let a = Stratified::new(5).compress(&w, 4).unwrap();
        let b = Stratified::new(5).compress(&w, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn k_exceeding_n_selects_all() {
        let w = workload();
        let cw = Stratified::new(1).compress(&w, 100).unwrap();
        assert_eq!(cw.len(), 9);
    }
}
