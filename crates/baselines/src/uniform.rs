//! Uniform random sampling baseline.

use isum_common::rng::DetRng;
use isum_common::{QueryId, Result};
use isum_core::compressor::{validate, Compressor};
use isum_workload::{CompressedWorkload, Workload};

/// Samples `k` queries uniformly at random. As the paper notes (Sec 1),
/// sampling "misses out queries that may lead to substantial improvement
/// ... but may be less frequent" — it is the weakest informed baseline.
#[derive(Debug, Clone, Copy)]
pub struct UniformSampling {
    /// RNG seed (experiments average over seeds).
    pub seed: u64,
}

impl UniformSampling {
    /// Sampler with a fixed seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl Compressor for UniformSampling {
    fn name(&self) -> String {
        "Uniform".into()
    }

    fn compress(&self, workload: &Workload, k: usize) -> Result<CompressedWorkload> {
        let _s = isum_common::telemetry::span("uniform");
        validate(workload, k)?;
        let n = workload.len();
        let k = k.min(n);
        let mut rng = DetRng::seeded(self.seed);
        let ids: Vec<QueryId> =
            rng.sample_indices(n, k).into_iter().map(QueryId::from_index).collect();
        Ok(CompressedWorkload::uniform(ids))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_catalog::CatalogBuilder;

    fn workload(n: usize) -> Workload {
        let catalog = CatalogBuilder::new()
            .table("t", 1000)
            .col_key("a")
            .col_int("b", 100, 0, 100)
            .finish()
            .unwrap()
            .build();
        let sqls: Vec<String> = (0..n).map(|i| format!("SELECT a FROM t WHERE b = {i}")).collect();
        Workload::from_sql(catalog, &sqls).unwrap()
    }

    #[test]
    fn samples_k_distinct_queries() {
        let w = workload(20);
        let cw = UniformSampling::new(1).compress(&w, 5).unwrap();
        assert_eq!(cw.len(), 5);
        let mut ids = cw.ids();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 5);
        assert!((cw.entries.iter().map(|(_, w)| w).sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed_different_across_seeds() {
        let w = workload(30);
        let a = UniformSampling::new(7).compress(&w, 10).unwrap();
        let b = UniformSampling::new(7).compress(&w, 10).unwrap();
        let c = UniformSampling::new(8).compress(&w, 10).unwrap();
        assert_eq!(a, b);
        assert_ne!(a.ids(), c.ids());
    }

    #[test]
    fn k_capped_at_n() {
        let w = workload(3);
        let cw = UniformSampling::new(1).compress(&w, 10).unwrap();
        assert_eq!(cw.len(), 3);
    }
}
