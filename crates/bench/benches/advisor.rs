//! Advisor-side costs: candidate generation and full tuning of compressed
//! workloads of growing size — the curve that motivates compression
//! (Fig 2a of the paper).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isum_advisor::{
    candidate_indexes, CandidateOptions, DtaAdvisor, IndexAdvisor, TuningConstraints,
};
use isum_bench::prepared_tpch;
use isum_optimizer::WhatIfOptimizer;
use isum_workload::CompressedWorkload;

fn bench_candidate_generation(c: &mut Criterion) {
    let w = prepared_tpch(22);
    c.bench_function("candidates_22_queries", |b| {
        let opts = CandidateOptions::default();
        b.iter(|| {
            for q in &w.queries {
                std::hint::black_box(candidate_indexes(&q.bound, &w.catalog, &opts));
            }
        });
    });
}

fn bench_tuning_vs_workload_size(c: &mut Criterion) {
    let w = prepared_tpch(44);
    let advisor = DtaAdvisor::new();
    let constraints = TuningConstraints::with_max_indexes(8);
    let mut group = c.benchmark_group("dta_tuning");
    group.sample_size(10);
    for &n in &[4usize, 11, 22, 44] {
        let sub = CompressedWorkload::uniform(w.queries.iter().take(n).map(|q| q.id).collect());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let opt = WhatIfOptimizer::new(&w.catalog);
                std::hint::black_box(advisor.recommend(&opt, &w, &sub, &constraints))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_candidate_generation, bench_tuning_vs_workload_size);
criterion_main!(benches);
