//! Compression-time scaling (regenerates the Fig 11c/d comparison):
//! summary-features (linear) vs all-pairs (quadratic) vs k-medoid, plus the
//! other baselines, as the input workload grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isum_baselines::{Gsum, KMedoid, UniformSampling};
use isum_bench::prepared_tpch;
use isum_core::{Compressor, Isum, IsumConfig};

fn bench_compression_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("compression_scaling");
    group.sample_size(10);
    for &n in &[110usize, 220, 440] {
        let w = prepared_tpch(n);
        let k = ((n as f64).sqrt() * 0.5).round() as usize;
        group.bench_with_input(BenchmarkId::new("isum_summary", n), &n, |b, _| {
            let m = Isum::new();
            b.iter(|| m.compress(&w, k).expect("valid inputs"));
        });
        group.bench_with_input(BenchmarkId::new("isum_all_pairs", n), &n, |b, _| {
            let m = Isum::with_config(IsumConfig::all_pairs());
            b.iter(|| m.compress(&w, k).expect("valid inputs"));
        });
        group.bench_with_input(BenchmarkId::new("k_medoid", n), &n, |b, _| {
            let m = KMedoid::new(1);
            b.iter(|| m.compress(&w, k).expect("valid inputs"));
        });
        group.bench_with_input(BenchmarkId::new("gsum", n), &n, |b, _| {
            let m = Gsum::new();
            b.iter(|| m.compress(&w, k).expect("valid inputs"));
        });
        group.bench_with_input(BenchmarkId::new("uniform", n), &n, |b, _| {
            let m = UniformSampling::new(1);
            b.iter(|| m.compress(&w, k).expect("valid inputs"));
        });
    }
    group.finish();
}

fn bench_compression_k(c: &mut Criterion) {
    // Cost of growing the compressed size at fixed n (the k × n term).
    let w = prepared_tpch(220);
    let mut group = c.benchmark_group("compression_vs_k");
    group.sample_size(10);
    for &k in &[4usize, 8, 16, 29] {
        group.bench_with_input(BenchmarkId::new("isum_summary", k), &k, |b, &k| {
            let m = Isum::new();
            b.iter(|| m.compress(&w, k).expect("valid inputs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compression_scaling, bench_compression_k);
criterion_main!(benches);
