//! SQL front-end throughput: lexing, parsing, binding, and template
//! fingerprinting over the TPC-H templates.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use isum_common::rng::DetRng;
use isum_sql::{fingerprint, parse, Binder};
use isum_workload::gen::tpch::{instantiate_template, tpch_catalog};

fn bench_parse(c: &mut Criterion) {
    let mut rng = DetRng::seeded(3);
    let sqls: Vec<String> = (1..=22).map(|q| instantiate_template(q, &mut rng)).collect();
    let bytes: u64 = sqls.iter().map(|s| s.len() as u64).sum();
    let mut group = c.benchmark_group("sql_frontend");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("parse_22_templates", |b| {
        b.iter(|| {
            for sql in &sqls {
                std::hint::black_box(parse(sql).expect("templates parse"));
            }
        });
    });
    let catalog = tpch_catalog(1);
    let stmts: Vec<_> = sqls.iter().map(|s| parse(s).expect("templates parse")).collect();
    group.bench_function("bind_22_templates", |b| {
        let binder = Binder::new(&catalog);
        b.iter(|| {
            for stmt in &stmts {
                std::hint::black_box(binder.bind(stmt).expect("templates bind"));
            }
        });
    });
    group.bench_function("fingerprint_22_templates", |b| {
        b.iter(|| {
            for stmt in &stmts {
                std::hint::black_box(fingerprint(stmt));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_parse);
criterion_main!(benches);
