//! Micro-benchmarks of the similarity kernel and summary construction —
//! the inner loops whose allocation-free sorted-merge design DESIGN.md
//! calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isum_common::rng::DetRng;
use isum_common::{ColumnId, GlobalColumnId, TableId};
use isum_core::features::FeatureVec;
use isum_core::similarity::{set_jaccard, weighted_jaccard};
use isum_core::summary::summary_features;

fn random_vec(rng: &mut DetRng, n_features: usize, space: u32) -> FeatureVec {
    FeatureVec::from_entries(
        (0..n_features)
            .map(|_| {
                (
                    GlobalColumnId::new(
                        TableId(rng.below(8) as u32),
                        ColumnId(rng.below(space as usize) as u32),
                    ),
                    rng.unit(),
                )
            })
            .collect(),
    )
}

fn bench_weighted_jaccard(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted_jaccard");
    for &size in &[4usize, 16, 64] {
        let mut rng = DetRng::seeded(7);
        let a = random_vec(&mut rng, size, 32);
        let b = random_vec(&mut rng, size, 32);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, _| {
            bench.iter(|| weighted_jaccard(std::hint::black_box(&a), std::hint::black_box(&b)));
        });
    }
    group.finish();
}

fn bench_set_jaccard(c: &mut Criterion) {
    let mut rng = DetRng::seeded(9);
    let a = random_vec(&mut rng, 16, 32);
    let b = random_vec(&mut rng, 16, 32);
    c.bench_function("set_jaccard_16", |bench| {
        bench.iter(|| set_jaccard(std::hint::black_box(&a), std::hint::black_box(&b)));
    });
}

fn bench_summary_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("summary_features_build");
    group.sample_size(20);
    for &n in &[100usize, 500, 2000] {
        let mut rng = DetRng::seeded(11);
        let features: Vec<FeatureVec> = (0..n).map(|_| random_vec(&mut rng, 8, 64)).collect();
        let utilities: Vec<f64> = (0..n).map(|_| rng.unit() / n as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| summary_features(std::hint::black_box(&features), &utilities));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_weighted_jaccard, bench_set_jaccard, bench_summary_build);
criterion_main!(benches);
