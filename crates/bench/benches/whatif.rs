//! What-if costing throughput — the resource that dominates tuning time
//! (70–80% per Fig 2 of the paper) — and the payoff of the relevance-scoped
//! cost cache.

use criterion::{criterion_group, criterion_main, Criterion};
use isum_bench::prepared_tpch;
use isum_optimizer::{Index, IndexConfig, WhatIfOptimizer};

fn bench_cost_bound(c: &mut Criterion) {
    let w = prepared_tpch(22);
    let empty = IndexConfig::empty();
    let li = w.catalog.table_id("lineitem").expect("tpch table");
    let t = w.catalog.table(li);
    let cfg = IndexConfig::from_indexes([
        Index::new(li, vec![t.column_id("l_shipdate").expect("col")]),
        Index::new(
            li,
            vec![t.column_id("l_orderkey").expect("col"), t.column_id("l_quantity").expect("col")],
        ),
    ]);
    let mut group = c.benchmark_group("whatif");
    group.bench_function("cost_22_queries_no_indexes", |b| {
        let opt = WhatIfOptimizer::new(&w.catalog);
        b.iter(|| {
            for q in &w.queries {
                std::hint::black_box(opt.cost_bound(&q.bound, &empty));
            }
        });
    });
    group.bench_function("cost_22_queries_with_indexes", |b| {
        let opt = WhatIfOptimizer::new(&w.catalog);
        b.iter(|| {
            for q in &w.queries {
                std::hint::black_box(opt.cost_bound(&q.bound, &cfg));
            }
        });
    });
    group.bench_function("cached_workload_cost", |b| {
        let opt = WhatIfOptimizer::new(&w.catalog);
        opt.workload_cost(&w, &cfg); // warm
        b.iter(|| std::hint::black_box(opt.workload_cost(&w, &cfg)));
    });
    group.finish();
}

criterion_group!(benches, bench_cost_bound);
criterion_main!(benches);
