//! Shared fixtures for the Criterion benches.
//!
//! The benches mirror the paper's timing artifacts: compression-time
//! scaling (Fig 11c/d), what-if costing throughput (the resource Fig 2
//! shows dominating tuning time), advisor enumeration, and the micro
//! operations underneath (similarity merges, SQL parsing).

use isum_optimizer::populate_costs;
use isum_workload::gen::tpch_workload;
use isum_workload::Workload;

/// A TPC-H workload of `n` queries with populated costs (sf = 1 so bench
/// setup stays fast; costs only shift magnitudes, not asymptotics).
pub fn prepared_tpch(n: usize) -> Workload {
    let mut w = tpch_workload(1, n, 0xBE7C).expect("tpch binds");
    populate_costs(&mut w);
    w
}
