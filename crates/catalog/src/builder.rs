//! Fluent construction of catalogs.
//!
//! Workload generators build large schemas (TPC-H's 8 tables up to Real-M's
//! 474); the builder keeps those definitions readable and enforces catalog
//! invariants at one choke point.

use isum_common::{Result, TableId};

use crate::histogram::Histogram;
use crate::schema::{Catalog, Column, ColumnStats, ColumnType, Table};

/// Number of histogram buckets synthesized per column.
pub const DEFAULT_BUCKETS: usize = 64;

/// Builder for a whole [`Catalog`].
#[derive(Debug, Default)]
pub struct CatalogBuilder {
    catalog: Catalog,
}

impl CatalogBuilder {
    /// Starts an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts defining a table with `rows` rows. Finish with
    /// [`TableBuilder::finish`].
    pub fn table(self, name: impl Into<String>, rows: u64) -> TableBuilder {
        TableBuilder { parent: self, name: name.into(), rows, columns: Vec::new() }
    }

    /// Finalizes the catalog.
    pub fn build(self) -> Catalog {
        self.catalog
    }
}

/// Builder for one table; created via [`CatalogBuilder::table`].
#[derive(Debug)]
pub struct TableBuilder {
    parent: CatalogBuilder,
    name: String,
    rows: u64,
    columns: Vec<Column>,
}

impl TableBuilder {
    /// Integer column with `distinct` uniform values over `[min, max]` and a
    /// synthesized histogram.
    pub fn col_int(self, name: &str, distinct: u64, min: i64, max: i64) -> Self {
        self.push(name, ColumnType::Int, distinct, min as f64, max as f64, 8, 0.0)
    }

    /// Integer key column: `rows` distinct values `1..=rows`.
    pub fn col_key(self, name: &str) -> Self {
        let rows = self.rows.max(1);
        self.push(name, ColumnType::Int, rows, 1.0, rows as f64, 8, 0.0)
    }

    /// Float column with a uniform domain.
    pub fn col_float(self, name: &str, distinct: u64, min: f64, max: f64) -> Self {
        self.push(name, ColumnType::Float, distinct, min, max, 8, 0.0)
    }

    /// Date column spanning `[min_day, max_day]` (days since epoch) with one
    /// distinct value per day.
    pub fn col_date(self, name: &str, min_day: i64, max_day: i64) -> Self {
        let distinct = (max_day - min_day + 1).max(1) as u64;
        self.push(name, ColumnType::Date, distinct, min_day as f64, max_day as f64, 8, 0.0)
    }

    /// Text column with `distinct` values and an average width.
    pub fn col_text(self, name: &str, distinct: u64, avg_width: u32) -> Self {
        self.push(name, ColumnType::Text, distinct, 0.0, distinct.max(1) as f64, avg_width, 0.0)
    }

    /// Integer column whose value distribution is Zipf-skewed with exponent
    /// `theta`; used by the DSB and Real-M generators.
    pub fn col_int_skewed(self, name: &str, distinct: u64, min: i64, max: i64, theta: f64) -> Self {
        self.push(name, ColumnType::Int, distinct, min as f64, max as f64, 8, theta)
    }

    #[allow(clippy::too_many_arguments)] // internal builder plumbing
    fn push(
        mut self,
        name: &str,
        ty: ColumnType,
        distinct: u64,
        min: f64,
        max: f64,
        avg_width: u32,
        theta: f64,
    ) -> Self {
        let histogram = if ty.is_ordered() {
            Some(if theta > 0.0 {
                Histogram::zipf(self.rows, distinct, min, max, DEFAULT_BUCKETS, theta)
            } else {
                Histogram::uniform(self.rows, distinct, min, max, DEFAULT_BUCKETS)
            })
        } else {
            None
        };
        let mut stats = ColumnStats::uniform(distinct, min, max, avg_width);
        stats.histogram = histogram;
        self.columns.push(Column { name: name.to_ascii_lowercase(), ty, stats });
        self
    }

    /// Finishes the table and returns to the catalog builder.
    ///
    /// # Errors
    /// Propagates catalog invariant violations (duplicate table names).
    pub fn finish(mut self) -> Result<CatalogBuilder> {
        let table = Table::new(self.name, self.rows, self.columns);
        self.parent.catalog.add_table(table)?;
        Ok(self.parent)
    }

    /// Like [`TableBuilder::finish`] but also hands back the new table's id.
    pub fn finish_with_id(mut self) -> Result<(CatalogBuilder, TableId)> {
        let table = Table::new(self.name, self.rows, self.columns);
        let id = self.parent.catalog.add_table(table)?;
        Ok((self.parent, id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_multi_table_catalog() {
        let catalog = CatalogBuilder::new()
            .table("orders", 1500)
            .col_key("o_orderkey")
            .col_int("o_custkey", 150, 1, 150)
            .col_date("o_orderdate", 0, 2555)
            .finish()
            .unwrap()
            .table("lineitem", 6000)
            .col_int("l_orderkey", 1500, 1, 1500)
            .col_float("l_price", 1000, 900.0, 105_000.0)
            .col_text("l_comment", 5000, 27)
            .finish()
            .unwrap()
            .build();
        assert_eq!(catalog.len(), 2);
        let orders = catalog.table_id("orders").unwrap();
        let t = catalog.table(orders);
        assert_eq!(t.row_count, 1500);
        assert_eq!(t.columns.len(), 3);
        // Key column spans 1..=rows.
        let key = t.column(t.column_id("o_orderkey").unwrap());
        assert_eq!(key.stats.distinct, 1500);
        assert!(key.stats.histogram.is_some());
    }

    #[test]
    fn text_columns_have_no_histogram() {
        let catalog =
            CatalogBuilder::new().table("t", 10).col_text("s", 5, 12).finish().unwrap().build();
        let t = catalog.table(catalog.table_id("t").unwrap());
        assert!(t.column(t.column_id("s").unwrap()).stats.histogram.is_none());
    }

    #[test]
    fn skewed_column_gets_zipf_histogram() {
        let catalog = CatalogBuilder::new()
            .table("t", 10_000)
            .col_int_skewed("hot", 100, 0, 1000, 1.5)
            .col_int("cold", 100, 0, 1000)
            .finish()
            .unwrap()
            .build();
        let t = catalog.table(catalog.table_id("t").unwrap());
        let hot = t.column(t.column_id("hot").unwrap()).stats.histogram.as_ref().unwrap();
        let cold = t.column(t.column_id("cold").unwrap()).stats.histogram.as_ref().unwrap();
        // Head of the skewed domain is denser than the uniform one.
        assert!(
            hot.selectivity_range(Some(0.0), Some(100.0))
                > cold.selectivity_range(Some(0.0), Some(100.0))
        );
    }

    #[test]
    fn duplicate_table_surfaces_error() {
        let res = CatalogBuilder::new()
            .table("t", 1)
            .col_key("a")
            .finish()
            .unwrap()
            .table("t", 2)
            .col_key("b")
            .finish();
        assert!(res.is_err());
    }
}
