//! Equi-depth histograms.
//!
//! Production optimizers estimate range selectivity from histograms; we
//! provide an equi-depth variant that can be synthesized directly from a
//! distribution description (uniform or Zipf-skewed) without materializing
//! rows. The DSB- and Real-M-shaped generators use the skewed constructor to
//! reproduce "skewed data distribution" (Table 2 commentary in the paper).

/// One histogram bucket over `[lo, hi]` holding `rows` rows and `distinct`
/// distinct values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
    /// Rows falling into the bucket.
    pub rows: f64,
    /// Distinct values in the bucket.
    pub distinct: f64,
}

/// Equi-depth histogram: every bucket holds (approximately) the same number
/// of rows, so skew shows up as narrow buckets around hot values.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: Vec<Bucket>,
    total_rows: f64,
}

impl Histogram {
    /// Builds a histogram for a uniform distribution of `distinct` values
    /// over `[min, max]` with `rows` total rows, split into `nbuckets`.
    pub fn uniform(rows: u64, distinct: u64, min: f64, max: f64, nbuckets: usize) -> Self {
        let nbuckets = nbuckets.max(1);
        let rows_f = rows as f64;
        let distinct_f = distinct.max(1) as f64;
        let width = (max - min).max(0.0) / nbuckets as f64;
        let buckets = (0..nbuckets)
            .map(|i| Bucket {
                lo: min + width * i as f64,
                hi: if i + 1 == nbuckets { max } else { min + width * (i + 1) as f64 },
                rows: rows_f / nbuckets as f64,
                distinct: distinct_f / nbuckets as f64,
            })
            .collect();
        Self { buckets, total_rows: rows_f }
    }

    /// Builds an equi-depth histogram for a Zipf-skewed distribution: bucket
    /// boundaries follow a power curve so early buckets (hot values) are
    /// narrow. `theta = 0` reduces to [`Histogram::uniform`].
    pub fn zipf(rows: u64, distinct: u64, min: f64, max: f64, nbuckets: usize, theta: f64) -> Self {
        let nbuckets = nbuckets.max(1);
        let rows_f = rows as f64;
        let distinct_f = distinct.max(1) as f64;
        let span = (max - min).max(0.0);
        // Boundary curve: fraction of domain covered by the first i buckets
        // grows like (i/n)^(1+theta): equal-depth buckets get narrower near
        // the hot (low) end of the domain.
        let boundary = |i: usize| -> f64 {
            let frac = i as f64 / nbuckets as f64;
            min + span * frac.powf(1.0 + theta)
        };
        let buckets = (0..nbuckets)
            .map(|i| {
                let lo = boundary(i);
                let hi = if i + 1 == nbuckets { max } else { boundary(i + 1) };
                let width_frac = if span > 0.0 { (hi - lo) / span } else { 1.0 / nbuckets as f64 };
                Bucket {
                    lo,
                    hi,
                    rows: rows_f / nbuckets as f64,
                    distinct: (distinct_f * width_frac).max(1.0),
                }
            })
            .collect();
        Self { buckets, total_rows: rows_f }
    }

    /// Buckets in domain order.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Total rows represented.
    pub fn total_rows(&self) -> f64 {
        self.total_rows
    }

    /// Selectivity of `column = value`, assuming uniformity within the
    /// bucket containing `value`.
    pub fn selectivity_eq(&self, value: f64) -> f64 {
        if self.total_rows <= 0.0 {
            return 0.0;
        }
        for b in &self.buckets {
            if value >= b.lo && value <= b.hi {
                return (b.rows / b.distinct.max(1.0)) / self.total_rows;
            }
        }
        0.0
    }

    /// Selectivity of a (half-)open range predicate. Pass `None` for an
    /// unbounded side; bounds are inclusive, matching how the binder lowers
    /// `BETWEEN`, `<=`, `>=` (strict comparisons differ negligibly at
    /// histogram granularity).
    pub fn selectivity_range(&self, lo: Option<f64>, hi: Option<f64>) -> f64 {
        if self.total_rows <= 0.0 {
            return 0.0;
        }
        let mut rows = 0.0;
        for b in &self.buckets {
            let blo = lo.unwrap_or(f64::NEG_INFINITY).max(b.lo);
            let bhi = hi.unwrap_or(f64::INFINITY).min(b.hi);
            if bhi < blo {
                continue;
            }
            let width = b.hi - b.lo;
            let frac = if width > 0.0 { (bhi - blo) / width } else { 1.0 };
            rows += b.rows * frac.clamp(0.0, 1.0);
        }
        (rows / self.total_rows).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_range_selectivity_matches_fraction() {
        let h = Histogram::uniform(1000, 100, 0.0, 100.0, 10);
        let s = h.selectivity_range(Some(0.0), Some(50.0));
        assert!((s - 0.5).abs() < 1e-9, "got {s}");
        assert!((h.selectivity_range(None, None) - 1.0).abs() < 1e-9);
        assert_eq!(h.selectivity_range(Some(200.0), Some(300.0)), 0.0);
    }

    #[test]
    fn uniform_eq_selectivity_is_one_over_ndv() {
        let h = Histogram::uniform(1000, 100, 0.0, 100.0, 10);
        let s = h.selectivity_eq(13.0);
        assert!((s - 0.01).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn zipf_with_zero_theta_is_uniform() {
        let u = Histogram::uniform(1000, 100, 0.0, 100.0, 4);
        let z = Histogram::zipf(1000, 100, 0.0, 100.0, 4, 0.0);
        for (a, b) in u.buckets().iter().zip(z.buckets()) {
            assert!((a.lo - b.lo).abs() < 1e-9 && (a.hi - b.hi).abs() < 1e-9);
        }
    }

    #[test]
    fn zipf_concentrates_rows_at_low_end() {
        let z = Hero::histogram();
        // The first 10% of the domain holds far more than 10% of the rows.
        let s = z.selectivity_range(Some(0.0), Some(10.0));
        assert!(s > 0.3, "skewed head selectivity was {s}");
        // And equality at the hot end is more selective per-value counted
        // over a narrower bucket.
        assert!(z.selectivity_range(Some(90.0), Some(100.0)) < s);
    }

    /// Helper wrapper so the test above reads clearly.
    struct Hero;
    impl Hero {
        fn histogram() -> Histogram {
            Histogram::zipf(10_000, 1_000, 0.0, 100.0, 10, 1.5)
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::uniform(0, 0, 0.0, 0.0, 4);
        assert_eq!(h.selectivity_eq(0.0), 0.0);
        assert_eq!(h.selectivity_range(None, None), 0.0);
    }

    #[test]
    fn range_clamps_to_unit_interval() {
        let h = Histogram::uniform(100, 10, 0.0, 10.0, 1);
        let s = h.selectivity_range(Some(-5.0), Some(20.0));
        assert!((s - 1.0).abs() < 1e-9);
    }
}
