//! Catalog and statistics substrate.
//!
//! The ISUM paper assumes the database exposes (a) a schema, (b) per-table
//! row counts, and (c) per-column statistics — distinct counts ("density",
//! Sec 4.2) and histograms for selectivity estimation (Sec 4.1). This crate
//! implements that substrate: a [`Catalog`] of [`Table`]s and [`Column`]s with
//! equi-depth [`Histogram`]s, plus predicate selectivity estimation used both
//! by ISUM's stats-based featurization and by the what-if optimizer's
//! cardinality model.
//!
//! No rows are ever materialized: exactly like the paper's setting, every
//! quantity downstream (query costs, improvements) is *optimizer estimated*
//! from these statistics.

pub mod builder;
pub mod histogram;
pub mod schema;
pub mod selectivity;

pub use builder::{CatalogBuilder, TableBuilder};
pub use histogram::Histogram;
pub use schema::{Catalog, Column, ColumnStats, ColumnType, Table};
pub use selectivity::{CompareOp, Selectivity};
