//! Schema objects: catalog, tables, columns, and column statistics.

use std::collections::HashMap;

use isum_common::{ColumnId, Error, GlobalColumnId, Result, TableId};

use crate::histogram::Histogram;

/// Logical column type. Dates are represented as days-since-epoch integers,
/// and text columns carry only statistics (no values are stored anywhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit integer (also used for surrogate keys).
    Int,
    /// 64-bit float / decimal.
    Float,
    /// Variable-length text.
    Text,
    /// Calendar date stored as days since an epoch.
    Date,
}

impl ColumnType {
    /// True for types with a meaningful linear order used by range predicates.
    pub fn is_ordered(self) -> bool {
        !matches!(self, ColumnType::Text)
    }
}

/// Statistics maintained per column, mirroring what a production system keeps
/// in its statistics objects (SQL Server `sys.stats` / PostgreSQL `pg_stats`).
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Number of distinct values; the paper's *density* is `1 / distinct`.
    pub distinct: u64,
    /// Domain minimum (for ordered types).
    pub min: f64,
    /// Domain maximum (for ordered types).
    pub max: f64,
    /// Fraction of NULLs in `\[0, 1\]`.
    pub null_frac: f64,
    /// Average stored width in bytes (drives index size estimates).
    pub avg_width: u32,
    /// Optional equi-depth histogram for finer range selectivity.
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Statistics for a column with `distinct` uniform values over
    /// `[min, max]`.
    pub fn uniform(distinct: u64, min: f64, max: f64, avg_width: u32) -> Self {
        Self { distinct: distinct.max(1), min, max, null_frac: 0.0, avg_width, histogram: None }
    }

    /// The paper's density statistic: `1 / distinct` (Sec 4.2).
    pub fn density(&self) -> f64 {
        1.0 / self.distinct.max(1) as f64
    }
}

/// A column: name, type, statistics.
#[derive(Debug, Clone)]
pub struct Column {
    /// Lower-cased column name, unique within its table.
    pub name: String,
    /// Logical type.
    pub ty: ColumnType,
    /// Statistics.
    pub stats: ColumnStats,
}

/// A table: name, cardinality, columns.
#[derive(Debug, Clone)]
pub struct Table {
    /// Lower-cased table name, unique within the catalog.
    pub name: String,
    /// Row count.
    pub row_count: u64,
    /// Average row width in bytes (sum of column widths plus header).
    pub row_width: u32,
    /// Columns in declaration order; [`ColumnId`] indexes this vector.
    pub columns: Vec<Column>,
    name_to_col: HashMap<String, ColumnId>,
}

/// Bytes per page assumed by the size/cost models (8 KiB, the SQL Server
/// page size).
pub const PAGE_SIZE: u64 = 8192;

impl Table {
    /// Creates a table; row width is derived from the column widths.
    pub fn new(name: impl Into<String>, row_count: u64, mut columns: Vec<Column>) -> Self {
        let name = name.into().to_ascii_lowercase();
        for c in &mut columns {
            c.name.make_ascii_lowercase();
        }
        let row_width: u32 = 16 + columns.iter().map(|c| c.stats.avg_width).sum::<u32>();
        let name_to_col = columns
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), ColumnId::from_index(i)))
            .collect();
        Self { name, row_count, row_width, columns, name_to_col }
    }

    /// Looks up a column by (case-insensitive) name.
    pub fn column_id(&self, name: &str) -> Option<ColumnId> {
        self.name_to_col.get(&name.to_ascii_lowercase()).copied()
    }

    /// Column accessor.
    pub fn column(&self, id: ColumnId) -> &Column {
        &self.columns[id.index()]
    }

    /// Heap pages occupied by the table under [`PAGE_SIZE`].
    pub fn pages(&self) -> u64 {
        let bytes = self.row_count * self.row_width as u64;
        bytes.div_ceil(PAGE_SIZE).max(1)
    }

    /// Table size in bytes (used by storage budgets, Sec 8.1 "Improvement on
    /// varying storage").
    pub fn bytes(&self) -> u64 {
        self.row_count * self.row_width as u64
    }
}

/// The catalog: an immutable set of tables plus name lookup.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<Table>,
    name_to_table: HashMap<String, TableId>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table, returning its id.
    ///
    /// # Errors
    /// Returns [`Error::Catalog`] when a table with the same name exists.
    pub fn add_table(&mut self, table: Table) -> Result<TableId> {
        if self.name_to_table.contains_key(&table.name) {
            return Err(Error::Catalog(format!("duplicate table `{}`", table.name)));
        }
        let id = TableId::from_index(self.tables.len());
        self.name_to_table.insert(table.name.clone(), id);
        self.tables.push(table);
        Ok(id)
    }

    /// Table accessor.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    /// Looks up a table by (case-insensitive) name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.name_to_table.get(&name.to_ascii_lowercase()).copied()
    }

    /// All tables with their ids.
    pub fn tables(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables.iter().enumerate().map(|(i, t)| (TableId::from_index(i), t))
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when the catalog has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Column accessor through a global id.
    pub fn column(&self, gid: GlobalColumnId) -> &Column {
        self.table(gid.table).column(gid.column)
    }

    /// Total data size in bytes across all tables — the "original database
    /// size" that Fig 10's storage budgets are multiples of.
    pub fn total_bytes(&self) -> u64 {
        self.tables.iter().map(Table::bytes).sum()
    }

    /// Table-size weight from Sec 4.2:
    /// `w_table(t) = n(t) / Σ_j n(t_j)` over the tables referenced by a query.
    ///
    /// The denominator is supplied by the caller because the paper normalizes
    /// within a query's referenced tables, not over the whole catalog.
    pub fn table_weight(&self, table: TableId, referenced: &[TableId]) -> f64 {
        let total: u64 = referenced.iter().map(|&t| self.table(t).row_count).sum();
        if total == 0 {
            return 0.0;
        }
        self.table(table).row_count as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(name: &str, distinct: u64) -> Column {
        Column {
            name: name.into(),
            ty: ColumnType::Int,
            stats: ColumnStats::uniform(distinct, 0.0, distinct as f64, 8),
        }
    }

    #[test]
    fn table_lookup_is_case_insensitive() {
        let t = Table::new("Orders", 100, vec![col("O_OrderKey", 100)]);
        assert_eq!(t.name, "orders");
        assert!(t.column_id("o_orderkey").is_some());
        assert!(t.column_id("O_ORDERKEY").is_some());
        assert!(t.column_id("nope").is_none());
    }

    #[test]
    fn catalog_rejects_duplicate_tables() {
        let mut c = Catalog::new();
        c.add_table(Table::new("t", 1, vec![col("a", 1)])).unwrap();
        let err = c.add_table(Table::new("T", 1, vec![col("a", 1)])).unwrap_err();
        assert!(matches!(err, Error::Catalog(_)));
    }

    #[test]
    fn pages_and_bytes() {
        let t = Table::new("t", 1000, vec![col("a", 10)]);
        // row width = 16 header + 8 = 24 bytes; 24_000 bytes -> 3 pages.
        assert_eq!(t.row_width, 24);
        assert_eq!(t.bytes(), 24_000);
        assert_eq!(t.pages(), 3);
    }

    #[test]
    fn density_is_reciprocal_distinct() {
        let s = ColumnStats::uniform(4, 0.0, 4.0, 8);
        assert_eq!(s.density(), 0.25);
        let z = ColumnStats::uniform(0, 0.0, 0.0, 8);
        assert_eq!(z.density(), 1.0); // clamped to 1 distinct
    }

    #[test]
    fn table_weight_normalizes_within_referenced() {
        let mut c = Catalog::new();
        let big = c.add_table(Table::new("big", 900, vec![col("a", 10)])).unwrap();
        let small = c.add_table(Table::new("small", 100, vec![col("b", 10)])).unwrap();
        let refs = vec![big, small];
        assert!((c.table_weight(big, &refs) - 0.9).abs() < 1e-12);
        assert!((c.table_weight(small, &refs) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_catalog_queries() {
        let c = Catalog::new();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert!(c.table_id("x").is_none());
        assert_eq!(c.total_bytes(), 0);
    }
}
