//! Predicate selectivity estimation.
//!
//! Centralizes the formulas both consumers share: ISUM's stats-based
//! featurization (Sec 4.2 uses "selectivity or density") and the what-if
//! optimizer's cardinality model. Estimates prefer histograms when present
//! and fall back to uniform-domain assumptions otherwise, mirroring how
//! production optimizers degrade.

use crate::schema::{Column, ColumnType};

/// Comparison operators appearing in filter predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `LIKE` (prefix patterns assumed)
    Like,
}

/// Default selectivity for predicates we cannot estimate (matches the
/// classic System-R magic constant for unknown restrictions).
pub const DEFAULT_UNKNOWN: f64 = 0.33;
/// Default selectivity for `LIKE` prefix patterns without histograms.
pub const DEFAULT_LIKE: f64 = 0.05;

/// Selectivity estimator over a single column's statistics.
#[derive(Debug, Clone, Copy)]
pub struct Selectivity;

impl Selectivity {
    /// Selectivity of `col <op> literal`.
    pub fn compare(col: &Column, op: CompareOp, literal: f64) -> f64 {
        let stats = &col.stats;
        let not_null = 1.0 - stats.null_frac;
        let sel = match op {
            CompareOp::Eq => match &stats.histogram {
                Some(h) => h.selectivity_eq(literal),
                None => stats.density(),
            },
            CompareOp::NotEq => {
                let eq = Self::compare(col, CompareOp::Eq, literal);
                (1.0 - eq).max(0.0)
            }
            CompareOp::Lt | CompareOp::LtEq => Self::range(col, None, Some(literal)),
            CompareOp::Gt | CompareOp::GtEq => Self::range(col, Some(literal), None),
            CompareOp::Like => DEFAULT_LIKE,
        };
        (sel * not_null).clamp(0.0, 1.0)
    }

    /// Selectivity of `col BETWEEN lo AND hi` (either side optional).
    pub fn range(col: &Column, lo: Option<f64>, hi: Option<f64>) -> f64 {
        let stats = &col.stats;
        if !col.ty.is_ordered() {
            return DEFAULT_UNKNOWN;
        }
        if let Some(h) = &stats.histogram {
            return h.selectivity_range(lo, hi);
        }
        let span = stats.max - stats.min;
        if span <= 0.0 {
            // Single-valued domain: any range either covers it or not.
            let covered = lo.is_none_or(|l| l <= stats.min) && hi.is_none_or(|h| h >= stats.max);
            return if covered { 1.0 } else { 0.0 };
        }
        let l = lo.unwrap_or(stats.min).max(stats.min);
        let h = hi.unwrap_or(stats.max).min(stats.max);
        if h < l {
            return 0.0;
        }
        ((h - l) / span).clamp(0.0, 1.0)
    }

    /// Selectivity of `col IN (v1, ..., vn)`: n distinct equality probes,
    /// capped at 1.
    pub fn in_list(col: &Column, n_values: usize) -> f64 {
        (n_values as f64 * col.stats.density()).clamp(0.0, 1.0)
    }

    /// Join selectivity of `a = b` under the standard containment assumption:
    /// `1 / max(ndv(a), ndv(b))`.
    pub fn equi_join(a: &Column, b: &Column) -> f64 {
        1.0 / a.stats.distinct.max(b.stats.distinct).max(1) as f64
    }

    /// Selectivity of `col IS NULL`.
    pub fn is_null(col: &Column) -> f64 {
        col.stats.null_frac.clamp(0.0, 1.0)
    }
}

/// Whether a column's type admits range (ordered) predicates.
pub fn supports_range(ty: ColumnType) -> bool {
    ty.is_ordered()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnStats;

    fn int_col(distinct: u64, min: f64, max: f64) -> Column {
        Column {
            name: "x".into(),
            ty: ColumnType::Int,
            stats: ColumnStats::uniform(distinct, min, max, 8),
        }
    }

    #[test]
    fn eq_uses_density_without_histogram() {
        let c = int_col(100, 0.0, 100.0);
        assert!((Selectivity::compare(&c, CompareOp::Eq, 5.0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn noteq_is_complement_of_eq() {
        let c = int_col(100, 0.0, 100.0);
        let eq = Selectivity::compare(&c, CompareOp::Eq, 5.0);
        let ne = Selectivity::compare(&c, CompareOp::NotEq, 5.0);
        assert!((eq + ne - 1.0).abs() < 1e-12);
    }

    #[test]
    fn range_is_linear_in_uniform_domain() {
        let c = int_col(1000, 0.0, 100.0);
        assert!((Selectivity::compare(&c, CompareOp::Lt, 25.0) - 0.25).abs() < 1e-12);
        assert!((Selectivity::compare(&c, CompareOp::GtEq, 75.0) - 0.25).abs() < 1e-12);
        assert!((Selectivity::range(&c, Some(10.0), Some(20.0)) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn range_clamps_outside_domain() {
        let c = int_col(1000, 0.0, 100.0);
        assert_eq!(Selectivity::range(&c, Some(200.0), Some(300.0)), 0.0);
        assert!((Selectivity::range(&c, Some(-100.0), None) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn in_list_caps_at_one() {
        let c = int_col(10, 0.0, 10.0);
        assert!((Selectivity::in_list(&c, 3) - 0.3).abs() < 1e-12);
        assert_eq!(Selectivity::in_list(&c, 50), 1.0);
    }

    #[test]
    fn join_selectivity_uses_larger_ndv() {
        let a = int_col(100, 0.0, 100.0);
        let b = int_col(1000, 0.0, 1000.0);
        assert!((Selectivity::equi_join(&a, &b) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn null_fraction_scales_comparisons() {
        let mut c = int_col(100, 0.0, 100.0);
        c.stats.null_frac = 0.5;
        let s = Selectivity::compare(&c, CompareOp::Lt, 50.0);
        assert!((s - 0.25).abs() < 1e-12);
        assert_eq!(Selectivity::is_null(&c), 0.5);
    }

    #[test]
    fn text_columns_use_defaults() {
        let c = Column {
            name: "s".into(),
            ty: ColumnType::Text,
            stats: ColumnStats::uniform(1000, 0.0, 0.0, 16),
        };
        assert_eq!(Selectivity::compare(&c, CompareOp::Like, 0.0), DEFAULT_LIKE);
        assert_eq!(Selectivity::range(&c, Some(0.0), Some(1.0)), DEFAULT_UNKNOWN);
    }

    #[test]
    fn degenerate_single_value_domain() {
        let c = int_col(1, 42.0, 42.0);
        assert_eq!(Selectivity::range(&c, Some(0.0), Some(100.0)), 1.0);
        assert_eq!(Selectivity::range(&c, Some(43.0), Some(100.0)), 0.0);
    }
}
