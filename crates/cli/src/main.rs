//! `isum` — command-line workload compression and index tuning.
//!
//! ```text
//! isum compress --schema schema.json --workload workload.sql -k 20 [--variant isum|isum-s|all-pairs] [--json]
//! isum tune     --schema schema.json --workload workload.sql -k 20 -m 16 [--advisor dta|dexter] [--report]
//! isum explain  --schema schema.json --workload workload.sql --query 3 [--tuned]
//! isum dump     --workload gen:tpch:1:200:42 [--out workload.sql]
//! isum serve    --schema tpch:1 --listen 127.0.0.1:7071 [--checkpoint state.json] [--queue-cap 64] [--shards 4]
//! isum client   <ingest|summary|explain|status|tune|healthz|telemetry|shutdown> --server 127.0.0.1:7071 [--tenant acme] ...
//! isum load     --server 127.0.0.1:7071 [--seed 42] [--connections 4] [--tenants 4] [--templates 12] [--rate 2.5]
//! ```
//!
//! The schema is a JSON statistics document (see `schema.rs`) or a builtin
//! spec (`tpch:<sf>`, `tpcds:<sf>`); the workload is a `;`-separated SQL
//! script, optionally with `-- cost: <value>` annotations carrying logged
//! costs (missing costs are filled by the bundled what-if optimizer), or a
//! generator spec (`gen:tpch:<sf>:<n>:<seed>`, `gen:dsb:<sf>:<n>:<seed>`).
//! `isum serve` runs the online compression daemon of DESIGN.md §10; `isum
//! client` talks to it over its HTTP API. `isum load` drives a running
//! daemon with the deterministic seeded load generator of DESIGN.md §15:
//! a Zipf-skewed multi-tenant TPC-H mix over N concurrent keep-alive
//! connections, with an optional mid-run mix shift to provoke drift.
//!
//! Passing `--stats` (or setting `ISUM_TELEMETRY=1`) enables the
//! [`isum_common::telemetry`] registry and prints a phase/counter table
//! after the command finishes. Passing `--threads <n>` (or setting
//! `ISUM_THREADS=<n>`) sizes the [`isum_exec`] worker pool; `--threads 1`
//! runs everything sequentially and produces bit-identical results to any
//! other thread count. Passing `--faults <spec>` (or setting
//! `ISUM_FAULTS=<spec>`) activates the deterministic fault injector —
//! see DESIGN.md §9 for the spec grammar and degradation contract.

mod schema;

use std::process::ExitCode;

use isum_advisor::{DexterAdvisor, DtaAdvisor, IndexAdvisor, TuningConstraints, TuningReport};
use isum_catalog::Catalog;
use isum_common::telemetry;
use isum_common::{Error, Result};
use isum_core::{Compressor, Isum, IsumConfig};
use isum_optimizer::{CostModel, IndexConfig, WhatIfOptimizer};
use isum_server::{
    install_signal_handlers, summary_to_json, Client, Server, ServerConfig, ShardMode,
};
use isum_workload::{load_script, split_script, Workload};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn run(args: &[String]) -> Result<()> {
    let Some(command) = args.first() else {
        print_usage();
        return Err(Error::InvalidConfig("missing command".into()));
    };
    // `client` takes a verb before its flags: `isum client summary ...`.
    let (verb, flags) = if command == "client" {
        match args.get(1) {
            Some(v) if !v.starts_with('-') => (Some(v.as_str()), &args[2..]),
            _ => (None, &args[1..]),
        }
    } else {
        (None, &args[1..])
    };
    let opts = Options::parse(flags)?;
    telemetry::init_from_env();
    isum_common::trace::init_from_env();
    if let Some(path) = &opts.log_file {
        isum_common::trace::set_log_file(std::path::Path::new(path))
            .map_err(|e| Error::InvalidConfig(format!("cannot open --log-file `{path}`: {e}")))?;
    }
    isum_faults::init_from_env()
        .map_err(|e| Error::InvalidConfig(format!("invalid ISUM_FAULTS: {e}")))?;
    if let Some(spec) = &opts.faults {
        isum_faults::set_global_spec(spec)
            .map_err(|e| Error::InvalidConfig(format!("invalid --faults spec: {e}")))?;
    }
    if opts.stats {
        telemetry::set_enabled(true);
    }
    if let Some(n) = opts.threads {
        isum_exec::set_global_threads(n);
    }
    let result = match command.as_str() {
        "compress" => compress(&opts),
        "tune" => tune(&opts),
        "explain" => explain(&opts),
        "dump" => dump(&opts),
        "serve" => serve(&opts),
        "client" => client_cmd(verb, &opts),
        "load" => load_cmd(&opts),
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(())
        }
        other => {
            print_usage();
            Err(Error::InvalidConfig(format!("unknown command `{other}`")))
        }
    };
    if result.is_ok() && telemetry::enabled() {
        let snap = telemetry::snapshot();
        if !snap.is_empty() {
            println!("\n{}", snap.render_table());
        }
    }
    result
}

fn print_usage() {
    eprintln!(
        "usage:\n  \
         isum compress --schema <json> --workload <sql> -k <n> [--variant isum|isum-s|all-pairs]\n  \
         isum tune     --schema <json> --workload <sql> -k <n> [-m <indexes>] [--advisor dta|dexter] [--budget-bytes <n>] [--report]\n  \
         isum explain  --schema <json> --workload <sql> --query <idx> [--tuned]\n  \
         isum dump     --workload gen:<kind>:<sf>:<n>:<seed> [--out <file>]\n  \
         isum serve    --schema <json|tpch:sf|tpcds:sf|dsb:sf> [--listen <addr>]\n                \
         [--checkpoint <file>] [--queue-cap <n>] [--variant <v>] [--shards <n>]\n                \
         [--wal-compact-every <records>] [--wal-compact-bytes <n>]\n  \
         isum client   <ingest|summary|explain|status|tune|healthz|telemetry|shutdown> --server <addr>\n                \
         [--workload <sql|gen:spec>] [-k <n>] [-m <n>] [--batch <n>] [--tenant <name>]\n  \
         isum load     --server <addr> [--seed <n>] [--connections <n>] [--tenants <n>]\n                \
         [--templates <1..22>] [--batch <n>] [--warmup <n>] [--measure <n>] [--soak <n>]\n                \
         [--shift-at <batch|off>] [--rate <batches/s per conn>] [-k <n>] [--out <file>]\n\
         isum serve shards by X-Isum-Tenant header by default; --shards <n> (or ISUM_SHARDS=<n>)\n\
         switches to n hash-routed shards for parallel single-tenant ingest (DESIGN.md \u{a7}13),\n\
         isum client --tenant <name> pins every request to one tenant\n\
         (names: \u{2264}64 bytes, visible ASCII, no `/`),\n\
         isum load replays a seeded Zipf-skewed multi-tenant plan over concurrent keep-alive\n\
         connections (closed loop by default; --rate paces each connection open-loop,\n\
         --shift-at off disables the drift-provoking mix shift) and prints a JSON report,\n\
         isum serve reads ISUM_DRIFT_WINDOW=<n> (0 disables) and ISUM_DRIFT_THRESHOLD=<0..1>\n\
         to configure workload-drift tracking (see DESIGN.md \u{a7}12),\n\
         with --checkpoint each acknowledged batch is fsynced to a per-shard write-ahead log\n\
         before the ack; --wal-compact-every <records> / --wal-compact-bytes <n>\n\
         (or ISUM_WAL_COMPACT_EVERY / ISUM_WAL_COMPACT_BYTES) set the snapshot+truncate\n\
         cadence (see DESIGN.md \u{a7}14),\n\
         any command accepts --stats (or ISUM_TELEMETRY=1) to print a telemetry table,\n\
         --threads <n> (or ISUM_THREADS=<n>) to size the worker pool (1 = sequential),\n\
         --faults <spec> (or ISUM_FAULTS=<spec>) for deterministic fault injection\n\
         (e.g. whatif_transient:0.05,parse:0.01,seed:7 — see DESIGN.md \u{a7}9),\n\
         and ISUM_LOG=<filter> (e.g. info,server=debug) with --log-file <path>\n\
         (or ISUM_LOG_FILE) for structured JSONL event logs"
    );
}

/// Parsed flag set shared by all commands.
struct Options {
    schema: Option<String>,
    workload: Option<String>,
    k: usize,
    m: usize,
    query: usize,
    variant: String,
    advisor: String,
    budget_bytes: Option<u64>,
    report: bool,
    tuned: bool,
    stats: bool,
    threads: Option<usize>,
    faults: Option<String>,
    log_file: Option<String>,
    json: bool,
    out: Option<String>,
    listen: String,
    checkpoint: Option<String>,
    queue_cap: usize,
    server: Option<String>,
    batch: usize,
    tenant: Option<String>,
    shards: Option<usize>,
    wal_compact_every: Option<u64>,
    wal_compact_bytes: Option<u64>,
    seed: u64,
    connections: usize,
    tenants: Option<usize>,
    templates: Option<usize>,
    warmup: Option<usize>,
    measure: Option<usize>,
    soak: Option<usize>,
    /// `None` = flag absent (plan default); `Some(None)` = `off`.
    shift_at: Option<Option<usize>>,
    rate: Option<f64>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self> {
        let mut o = Options {
            schema: None,
            workload: None,
            k: 10,
            m: 16,
            query: 0,
            variant: "isum".into(),
            advisor: "dta".into(),
            budget_bytes: None,
            report: false,
            tuned: false,
            stats: false,
            threads: None,
            faults: None,
            log_file: None,
            json: false,
            out: None,
            listen: "127.0.0.1:7071".into(),
            checkpoint: None,
            queue_cap: 64,
            server: None,
            batch: 32,
            tenant: None,
            shards: None,
            wal_compact_every: None,
            wal_compact_bytes: None,
            seed: 42,
            connections: 4,
            tenants: None,
            templates: None,
            warmup: None,
            measure: None,
            soak: None,
            shift_at: None,
            rate: None,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut value = |name: &str| -> Result<String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| Error::InvalidConfig(format!("{name} needs a value")))
            };
            match a.as_str() {
                "--schema" => o.schema = Some(value("--schema")?),
                "--workload" => o.workload = Some(value("--workload")?),
                "-k" => {
                    o.k = value("-k")?
                        .parse()
                        .map_err(|_| Error::InvalidConfig("-k must be an integer".into()))?
                }
                "-m" => {
                    o.m = value("-m")?
                        .parse()
                        .map_err(|_| Error::InvalidConfig("-m must be an integer".into()))?
                }
                "--query" => {
                    o.query = value("--query")?
                        .parse()
                        .map_err(|_| Error::InvalidConfig("--query must be an index".into()))?
                }
                "--variant" => o.variant = value("--variant")?,
                "--advisor" => o.advisor = value("--advisor")?,
                "--budget-bytes" => {
                    o.budget_bytes = Some(value("--budget-bytes")?.parse().map_err(|_| {
                        Error::InvalidConfig("--budget-bytes must be an integer".into())
                    })?)
                }
                "--threads" => {
                    let n: usize = value("--threads")?
                        .parse()
                        .map_err(|_| Error::InvalidConfig("--threads must be an integer".into()))?;
                    if n == 0 {
                        return Err(Error::InvalidConfig("--threads must be at least 1".into()));
                    }
                    o.threads = Some(n);
                }
                "--faults" => o.faults = Some(value("--faults")?),
                "--log-file" => o.log_file = Some(value("--log-file")?),
                "--out" => o.out = Some(value("--out")?),
                "--listen" => o.listen = value("--listen")?,
                "--checkpoint" => o.checkpoint = Some(value("--checkpoint")?),
                "--server" => o.server = Some(value("--server")?),
                "--queue-cap" => {
                    o.queue_cap = value("--queue-cap")?.parse().map_err(|_| {
                        Error::InvalidConfig("--queue-cap must be an integer".into())
                    })?;
                    if o.queue_cap == 0 {
                        return Err(Error::InvalidConfig("--queue-cap must be at least 1".into()));
                    }
                }
                "--tenant" => {
                    // Same rule the server enforces, checked before any
                    // network I/O so a bad name never reaches the wire.
                    let t = value("--tenant")?;
                    isum_server::validate_tenant(&t)
                        .map_err(|why| Error::InvalidConfig(format!("--tenant name {why}")))?;
                    o.tenant = Some(t);
                }
                "--shards" => {
                    let n: usize = value("--shards")?
                        .parse()
                        .map_err(|_| Error::InvalidConfig("--shards must be an integer".into()))?;
                    if n == 0 {
                        return Err(Error::InvalidConfig("--shards must be at least 1".into()));
                    }
                    o.shards = Some(n);
                }
                "--wal-compact-every" => {
                    let n: u64 = value("--wal-compact-every")?.parse().map_err(|_| {
                        Error::InvalidConfig("--wal-compact-every must be an integer".into())
                    })?;
                    if n == 0 {
                        return Err(Error::InvalidConfig(
                            "--wal-compact-every must be at least 1".into(),
                        ));
                    }
                    o.wal_compact_every = Some(n);
                }
                "--wal-compact-bytes" => {
                    let n: u64 = value("--wal-compact-bytes")?.parse().map_err(|_| {
                        Error::InvalidConfig("--wal-compact-bytes must be an integer".into())
                    })?;
                    if n == 0 {
                        return Err(Error::InvalidConfig(
                            "--wal-compact-bytes must be at least 1".into(),
                        ));
                    }
                    o.wal_compact_bytes = Some(n);
                }
                "--batch" => {
                    o.batch = value("--batch")?
                        .parse()
                        .map_err(|_| Error::InvalidConfig("--batch must be an integer".into()))?;
                    if o.batch == 0 {
                        return Err(Error::InvalidConfig("--batch must be at least 1".into()));
                    }
                }
                "--seed" => {
                    o.seed = value("--seed")?
                        .parse()
                        .map_err(|_| Error::InvalidConfig("--seed must be an integer".into()))?
                }
                "--connections" => {
                    o.connections = value("--connections")?.parse().map_err(|_| {
                        Error::InvalidConfig("--connections must be an integer".into())
                    })?;
                    if o.connections == 0 {
                        return Err(Error::InvalidConfig(
                            "--connections must be at least 1".into(),
                        ));
                    }
                }
                "--tenants" => {
                    let n: usize = value("--tenants")?
                        .parse()
                        .map_err(|_| Error::InvalidConfig("--tenants must be an integer".into()))?;
                    if n == 0 {
                        return Err(Error::InvalidConfig("--tenants must be at least 1".into()));
                    }
                    o.tenants = Some(n);
                }
                "--templates" => {
                    let n: usize = value("--templates")?.parse().map_err(|_| {
                        Error::InvalidConfig("--templates must be an integer".into())
                    })?;
                    if !(1..=22).contains(&n) {
                        return Err(Error::InvalidConfig(
                            "--templates must be 1..=22 (TPC-H has 22 templates)".into(),
                        ));
                    }
                    o.templates = Some(n);
                }
                "--warmup" => {
                    o.warmup =
                        Some(value("--warmup")?.parse().map_err(|_| {
                            Error::InvalidConfig("--warmup must be an integer".into())
                        })?)
                }
                "--measure" => {
                    let n: usize = value("--measure")?
                        .parse()
                        .map_err(|_| Error::InvalidConfig("--measure must be an integer".into()))?;
                    if n == 0 {
                        return Err(Error::InvalidConfig("--measure must be at least 1".into()));
                    }
                    o.measure = Some(n);
                }
                "--soak" => {
                    o.soak =
                        Some(value("--soak")?.parse().map_err(|_| {
                            Error::InvalidConfig("--soak must be an integer".into())
                        })?)
                }
                "--shift-at" => {
                    let v = value("--shift-at")?;
                    o.shift_at = Some(if v == "off" {
                        None
                    } else {
                        Some(v.parse().map_err(|_| {
                            Error::InvalidConfig("--shift-at must be a batch index or `off`".into())
                        })?)
                    });
                }
                "--rate" => {
                    let r: f64 = value("--rate")?
                        .parse()
                        .map_err(|_| Error::InvalidConfig("--rate must be a number".into()))?;
                    if !(r > 0.0 && r.is_finite()) {
                        return Err(Error::InvalidConfig("--rate must be positive".into()));
                    }
                    o.rate = Some(r);
                }
                "--json" => o.json = true,
                "--report" => o.report = true,
                "--tuned" => o.tuned = true,
                "--stats" => o.stats = true,
                other => {
                    return Err(Error::InvalidConfig(format!("unknown flag `{other}`")));
                }
            }
        }
        Ok(o)
    }

    fn load(&self) -> Result<Workload> {
        let workload_spec = self
            .workload
            .as_ref()
            .ok_or_else(|| Error::InvalidConfig("--workload is required".into()))?;
        let mut w = if let Some(spec) = workload_spec.strip_prefix("gen:") {
            gen_workload(spec)?
        } else {
            let schema_spec = self
                .schema
                .as_ref()
                .ok_or_else(|| Error::InvalidConfig("--schema is required".into()))?;
            let script = std::fs::read_to_string(workload_spec)?;
            let catalog = resolve_catalog(schema_spec)?;
            load_script(catalog, &script)?
        };
        if w.is_empty() {
            return Err(Error::InvalidConfig("workload script has no statements".into()));
        }
        // Fill costs the script didn't annotate.
        if w.queries.iter().any(|q| q.cost <= 0.0) {
            let costs: Vec<f64> = {
                let opt = WhatIfOptimizer::new(&w.catalog);
                let empty = IndexConfig::empty();
                w.queries
                    .iter()
                    .map(|q| if q.cost > 0.0 { q.cost } else { opt.cost_bound(&q.bound, &empty) })
                    .collect()
            };
            w.set_costs(&costs);
        }
        Ok(w)
    }

    fn compressor(&self) -> Result<Isum> {
        Ok(match self.variant.as_str() {
            "isum" => Isum::new(),
            "isum-s" => Isum::with_config(IsumConfig::isum_s()),
            "all-pairs" => Isum::with_config(IsumConfig::all_pairs()),
            other => {
                return Err(Error::InvalidConfig(format!(
                    "unknown variant `{other}` (isum | isum-s | all-pairs)"
                )))
            }
        })
    }

    fn advisor(&self) -> Result<Box<dyn IndexAdvisor>> {
        Ok(match self.advisor.as_str() {
            "dta" => Box::new(DtaAdvisor::new()),
            "dexter" => Box::new(DexterAdvisor::new()),
            other => {
                return Err(Error::InvalidConfig(format!(
                    "unknown advisor `{other}` (dta | dexter)"
                )))
            }
        })
    }
}

fn compress(opts: &Options) -> Result<()> {
    let w = opts.load()?;
    let compressed = opts.compressor()?.compress(&w, opts.k)?;
    if opts.json {
        // The canonical summary document — identical to what a live
        // `GET /summary?k=N` returns for the same statements, so batch
        // and served output can be compared byte for byte.
        println!(
            "{}",
            summary_to_json(opts.k, w.len(), w.template_count(), &compressed.entries).to_pretty()
        );
        return Ok(());
    }
    println!(
        "selected {} of {} queries ({} templates):",
        compressed.len(),
        w.len(),
        w.template_count()
    );
    for (id, weight) in &compressed.entries {
        let sql = &w.query(*id).sql;
        println!("  {:>6.3}  [{}] {}", weight, id, &sql[..sql.len().min(90)]);
    }
    Ok(())
}

fn tune(opts: &Options) -> Result<()> {
    let w = opts.load()?;
    let compressed = opts.compressor()?.compress(&w, opts.k)?;
    let advisor = opts.advisor()?;
    let constraints =
        TuningConstraints { max_indexes: opts.m, storage_budget_bytes: opts.budget_bytes };
    let opt = WhatIfOptimizer::new(&w.catalog);
    let config = advisor.recommend(&opt, &w, &compressed, &constraints);
    println!("recommended {} indexes (advisor {}):", config.len(), advisor.name());
    for ix in config.indexes() {
        println!("  CREATE INDEX ON {};", ix.display(&w.catalog));
    }
    println!("\nestimated workload improvement: {:.1}%", opt.improvement_pct(&w, &config));
    if opts.report {
        let report = TuningReport::exact(&opt, &w, &config);
        println!("\nper-query drill-down:");
        for e in &report.entries {
            if e.improvement() > 0.005 {
                let used: Vec<String> =
                    e.indexes_used.iter().map(|ix| ix.display(&w.catalog)).collect();
                println!(
                    "  {}: {:.0} -> {:.0} ({:.0}%) via [{}]",
                    e.query,
                    e.cost_before,
                    e.cost_after,
                    e.improvement() * 100.0,
                    used.join(", ")
                );
            }
        }
    }
    Ok(())
}

fn explain(opts: &Options) -> Result<()> {
    let w = opts.load()?;
    if opts.query >= w.len() {
        return Err(Error::InvalidConfig(format!(
            "--query {} out of range (workload has {})",
            opts.query,
            w.len()
        )));
    }
    let q = &w.queries[opts.query];
    let model = CostModel::new(&w.catalog);
    let config = if opts.tuned {
        let compressed = opts.compressor()?.compress(&w, opts.k.min(w.len()))?;
        let opt = WhatIfOptimizer::new(&w.catalog);
        opts.advisor()?.recommend(
            &opt,
            &w,
            &compressed,
            &TuningConstraints::with_max_indexes(opts.m),
        )
    } else {
        IndexConfig::empty()
    };
    println!("-- {}", q.sql);
    match model.plan(&q.bound, &config) {
        Some(plan) => {
            println!("(total cost {:.0})", plan.total_cost());
            print!("{}", plan.render(&w.catalog));
        }
        None => println!("(no tables referenced)"),
    }
    Ok(())
}

/// Resolves a `--schema` spec: a builtin catalog (`tpch:<sf>`,
/// `tpcds:<sf>`, `dsb:<sf>`) or a JSON statistics document on disk.
fn resolve_catalog(spec: &str) -> Result<Catalog> {
    let sf = |rest: &str| -> Result<u64> {
        rest.parse()
            .map_err(|_| Error::InvalidConfig(format!("scale factor `{rest}` must be an integer")))
    };
    if let Some(rest) = spec.strip_prefix("tpch:") {
        return Ok(isum_workload::gen::tpch_catalog(sf(rest)?));
    }
    if let Some(rest) = spec.strip_prefix("tpcds:") {
        return Ok(isum_workload::gen::tpcds_catalog(sf(rest)?, 0.0));
    }
    if let Some(rest) = spec.strip_prefix("dsb:") {
        return Ok(isum_workload::gen::dsb::dsb_catalog(sf(rest)?));
    }
    schema::parse_schema(&std::fs::read_to_string(spec)?)
}

/// Instantiates a `gen:` workload spec: `<kind>:<sf>:<n>:<seed>` for
/// `tpch`/`tpcds`/`dsb`, or `realm:<n>:<seed>` (Real-M has no scale knob).
fn gen_workload(spec: &str) -> Result<Workload> {
    let bad = || {
        Error::InvalidConfig(format!(
            "bad generator spec `gen:{spec}` \
             (expected gen:tpch|tpcds|dsb:<sf>:<n>:<seed> or gen:realm:<n>:<seed>)"
        ))
    };
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |s: &str| s.parse::<u64>().map_err(|_| bad());
    match parts.as_slice() {
        ["realm", n, seed] => {
            isum_workload::gen::realm_workload_sized(num(n)? as usize, num(seed)?)
        }
        [kind, sf, n, seed] => {
            let (sf, n, seed) = (num(sf)?, num(n)? as usize, num(seed)?);
            match *kind {
                "tpch" => isum_workload::gen::tpch_workload(sf, n, seed),
                "tpcds" => isum_workload::gen::tpcds_workload(sf, n, seed),
                "dsb" => isum_workload::gen::dsb_workload(sf, n, seed),
                _ => Err(bad()),
            }
        }
        _ => Err(bad()),
    }
}

/// Renders a workload back to a `;`-separated script with `-- cost:`
/// annotations. Rust's shortest-round-trip float formatting makes the
/// annotations lossless, so loading the dump reproduces the costs exactly.
fn render_script(w: &Workload) -> String {
    let mut out = String::new();
    for q in &w.queries {
        if q.cost > 0.0 {
            out.push_str(&format!("-- cost: {}\n", q.cost));
        }
        out.push_str(q.sql.trim_end_matches(';'));
        out.push_str(";\n");
    }
    out
}

fn dump(opts: &Options) -> Result<()> {
    let w = opts.load()?;
    let script = render_script(&w);
    match &opts.out {
        Some(path) => {
            std::fs::write(path, &script)?;
            eprintln!("wrote {} statements to {path}", w.len());
        }
        None => print!("{script}"),
    }
    Ok(())
}

fn serve(opts: &Options) -> Result<()> {
    let schema_spec = opts
        .schema
        .as_ref()
        .ok_or_else(|| Error::InvalidConfig("serve requires --schema".into()))?;
    let mut config = ServerConfig::new(resolve_catalog(schema_spec)?);
    config.isum = match opts.variant.as_str() {
        "isum" => IsumConfig::isum(),
        "isum-s" => IsumConfig::isum_s(),
        "all-pairs" => IsumConfig::all_pairs(),
        other => {
            return Err(Error::InvalidConfig(format!(
                "unknown variant `{other}` (isum | isum-s | all-pairs)"
            )))
        }
    };
    config.checkpoint = opts.checkpoint.as_ref().map(std::path::PathBuf::from);
    config.queue_cap = opts.queue_cap;
    config = config.apply_drift_env(); // ISUM_DRIFT_WINDOW / ISUM_DRIFT_THRESHOLD
    config = config.apply_shards_env(); // ISUM_SHARDS
    config = config.apply_wal_env(); // ISUM_WAL_COMPACT_EVERY / ISUM_WAL_COMPACT_BYTES
    config = config.apply_trace_env(); // ISUM_SLOW_MS
    if let Some(n) = opts.shards {
        // The CLI flag wins over the environment.
        config.shards = ShardMode::Hashed(n);
    }
    if let Some(n) = opts.wal_compact_every {
        config.wal_compact_every = n;
    }
    if let Some(n) = opts.wal_compact_bytes {
        config.wal_compact_bytes = n;
    }
    install_signal_handlers();
    let server = Server::bind(&opts.listen, config)?;
    eprintln!("isum-serve listening on {}", server.addr());
    server.join(); // until SIGTERM/SIGINT or POST /shutdown
    eprintln!("isum-serve drained and exited cleanly");
    Ok(())
}

fn client_cmd(verb: Option<&str>, opts: &Options) -> Result<()> {
    let addr = opts
        .server
        .as_ref()
        .ok_or_else(|| Error::InvalidConfig("client requires --server <addr>".into()))?;
    let mut client = Client::new(addr.clone());
    if let Some(tenant) = &opts.tenant {
        client = client.with_tenant(tenant).map_err(Error::InvalidConfig)?;
    }
    let client = client;
    let show = |resp: isum_server::ApiResponse| -> Result<()> {
        print!("{}", resp.body);
        if resp.status >= 400 {
            return Err(Error::InvalidConfig(format!("server answered {}", resp.status)));
        }
        Ok(())
    };
    let send = |r: std::io::Result<isum_server::ApiResponse>| -> Result<()> { show(r?) };
    match verb {
        Some("healthz") => send(client.healthz()),
        Some("telemetry") => send(client.telemetry()),
        Some("shutdown") => send(client.shutdown()),
        Some("summary") => send(client.summary(opts.k)),
        Some("explain") => send(client.explain(opts.k)),
        // `status` reports at the server's default coverage size; the
        // daemon picks k = min(observed, 10) so the probe stays cheap.
        Some("status") => send(client.status(None)),
        Some("tune") => {
            let mut target = format!("/tune?k={}&m={}&advisor={}", opts.k, opts.m, opts.advisor);
            if let Some(b) = opts.budget_bytes {
                target.push_str(&format!("&budget_bytes={b}"));
            }
            send(client.post(&target, ""))
        }
        Some("ingest") => client_ingest(&client, opts),
        other => Err(Error::InvalidConfig(format!(
            "client verb {} (expected ingest | summary | explain | status | tune | healthz | telemetry | shutdown)",
            other.map_or("missing".into(), |v| format!("`{v}`"))
        ))),
    }
}

/// Streams a workload to the server as sequenced batches of `--batch`
/// statements, retrying through backpressure; prints one ack per batch.
fn client_ingest(client: &Client, opts: &Options) -> Result<()> {
    let spec = opts
        .workload
        .as_ref()
        .ok_or_else(|| Error::InvalidConfig("client ingest requires --workload".into()))?;
    let script = if let Some(gen) = spec.strip_prefix("gen:") {
        render_script(&gen_workload(gen)?)
    } else {
        std::fs::read_to_string(spec)?
    };
    let (sqls, costs) = split_script(&script);
    if sqls.is_empty() {
        return Err(Error::InvalidConfig("workload script has no statements".into()));
    }
    let mut applied = 0u64;
    let mut rejected = 0u64;
    for (seq, chunk) in sqls.chunks(opts.batch).enumerate() {
        let mut batch = String::new();
        for (j, sql) in chunk.iter().enumerate() {
            if let Some(c) = costs[seq * opts.batch + j] {
                batch.push_str(&format!("-- cost: {c}\n"));
            }
            batch.push_str(sql.trim_end_matches(';'));
            batch.push_str(";\n");
        }
        let resp = client
            .ingest_with_retry(&batch, Some(seq as u64), 600)
            .map_err(|e| Error::Io(format!("ingest seq {seq}: {e}")))?;
        if resp.status != 200 {
            return Err(Error::Io(format!(
                "ingest seq {seq} failed ({}): {}",
                resp.status, resp.body
            )));
        }
        applied += resp.field("applied").and_then(|v| v.as_u64()).unwrap_or(0);
        rejected += resp.field("rejected").and_then(|v| v.as_array()).map_or(0, |r| r.len() as u64);
    }
    println!(
        "ingested {} statements in {} batches ({applied} applied, {rejected} rejected)",
        sqls.len(),
        sqls.len().div_ceil(opts.batch),
    );
    Ok(())
}

/// Drives a running daemon with the deterministic load generator and
/// prints the client-side report as JSON (to `--out` when given).
fn load_cmd(opts: &Options) -> Result<()> {
    use isum_loadgen::{LoadPlan, Mode, PlanConfig, RunConfig};
    let addr = opts
        .server
        .as_ref()
        .ok_or_else(|| Error::InvalidConfig("load requires --server <addr>".into()))?;
    let mut plan_config = PlanConfig::new(opts.seed);
    if let Some(n) = opts.tenants {
        plan_config.tenants = n;
    }
    if let Some(n) = opts.templates {
        plan_config.templates = n;
    }
    plan_config.batch_size = opts.batch;
    if let Some(n) = opts.warmup {
        plan_config.warmup_batches = n;
    }
    if let Some(n) = opts.measure {
        plan_config.measure_batches = n;
    }
    if let Some(n) = opts.soak {
        plan_config.soak_batches = n;
    }
    if let Some(shift) = opts.shift_at {
        plan_config.mix_shift_at = shift;
    }
    let plan = LoadPlan::generate(&plan_config);
    let mut run_config = RunConfig::new(addr.clone());
    run_config.connections = opts.connections;
    run_config.summary_k = opts.k;
    if let Some(rate) = opts.rate {
        run_config.mode = Mode::Open { batches_per_sec: rate };
    }
    eprintln!(
        "driving {addr}: {} batches ({} statements) over {} connection(s), \
         plan fingerprint {:016x}",
        plan.batches.len(),
        plan.total_statements(),
        run_config.connections,
        plan.fingerprint(),
    );
    let report = isum_loadgen::run(&plan, &run_config).map_err(Error::Io)?;
    let doc = report.to_json();
    match &opts.out {
        Some(path) => {
            std::fs::write(path, format!("{}\n", doc.to_pretty()))?;
            eprintln!("wrote load report to {path}");
        }
        None => println!("{}", doc.to_pretty()),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_fixtures() -> (std::path::PathBuf, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("isum_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let schema = dir.join("schema.json");
        std::fs::write(
            &schema,
            r#"{"tables":[{"name":"t","rows":100000,"columns":[
                {"name":"id","type":"key"},
                {"name":"grp","type":"int","distinct":500,"min":0,"max":500},
                {"name":"ts","type":"date","min":19000,"max":20000}
            ]}]}"#,
        )
        .expect("write schema");
        let workload = dir.join("workload.sql");
        std::fs::write(
            &workload,
            "-- cost: 250\nSELECT id FROM t WHERE grp = 7;\n\
             SELECT id FROM t WHERE grp = 9;\n\
             SELECT count(*) FROM t WHERE ts > DATE '2024-01-01' GROUP BY grp;",
        )
        .expect("write workload");
        (schema, workload)
    }

    fn opts(extra: &[&str]) -> Options {
        let (schema, workload) = write_fixtures();
        let mut args = vec![
            "--schema".to_string(),
            schema.to_string_lossy().into_owned(),
            "--workload".to_string(),
            workload.to_string_lossy().into_owned(),
        ];
        args.extend(extra.iter().map(|s| s.to_string()));
        Options::parse(&args).expect("flags parse")
    }

    #[test]
    fn load_fills_missing_costs_keeps_annotated() {
        let o = opts(&[]);
        let w = o.load().expect("loads");
        assert_eq!(w.len(), 3);
        assert_eq!(w.queries[0].cost, 250.0, "annotated cost preserved");
        assert!(w.queries[1].cost > 0.0, "missing cost filled");
    }

    #[test]
    fn commands_run_end_to_end() {
        let o = opts(&["-k", "2", "-m", "4", "--report"]);
        compress(&o).expect("compress runs");
        tune(&o).expect("tune runs");
        let o = opts(&["--query", "2", "--tuned", "-k", "2"]);
        explain(&o).expect("explain runs");
    }

    #[test]
    fn flag_errors_are_reported() {
        assert!(Options::parse(&["--bogus".into()]).is_err());
        assert!(Options::parse(&["-k".into()]).is_err());
        assert!(Options::parse(&["-k".into(), "abc".into()]).is_err());
        let o = opts(&["--variant", "nope"]);
        assert!(o.compressor().is_err());
        let o = opts(&["--advisor", "nope"]);
        assert!(o.advisor().is_err());
        let o = opts(&["--query", "99"]);
        assert!(explain(&o).is_err());
    }

    #[test]
    fn stats_flag_parses() {
        let o = opts(&["--stats"]);
        assert!(o.stats);
        let o = opts(&[]);
        assert!(!o.stats);
    }

    #[test]
    fn threads_flag_parses_and_rejects_bad_values() {
        let o = opts(&["--threads", "4"]);
        assert_eq!(o.threads, Some(4));
        let o = opts(&[]);
        assert_eq!(o.threads, None);
        assert!(Options::parse(&["--threads".into()]).is_err());
        assert!(Options::parse(&["--threads".into(), "abc".into()]).is_err());
        assert!(Options::parse(&["--threads".into(), "0".into()]).is_err());
    }

    #[test]
    fn faults_flag_parses() {
        let o = opts(&["--faults", "whatif_transient:0.1,seed:3"]);
        assert_eq!(o.faults.as_deref(), Some("whatif_transient:0.1,seed:3"));
        let o = opts(&[]);
        assert!(o.faults.is_none());
        assert!(Options::parse(&["--faults".into()]).is_err());
    }

    #[test]
    fn tenant_flag_validates_like_the_server() {
        let o = opts(&["--tenant", "acme-prod"]);
        assert_eq!(o.tenant.as_deref(), Some("acme-prod"));
        let o = opts(&[]);
        assert!(o.tenant.is_none());
        assert!(Options::parse(&["--tenant".into()]).is_err());
        // The same three rejections the server's typed 400 covers:
        // empty, over 64 bytes, and characters outside visible ASCII / `/`.
        assert!(Options::parse(&["--tenant".into(), String::new()]).is_err());
        assert!(Options::parse(&["--tenant".into(), "x".repeat(65)]).is_err());
        assert!(Options::parse(&["--tenant".into(), "a/b".into()]).is_err());
        assert!(Options::parse(&["--tenant".into(), "sp ace".into()]).is_err());
    }

    #[test]
    fn shards_flag_parses_and_rejects_bad_values() {
        let o = opts(&["--shards", "4"]);
        assert_eq!(o.shards, Some(4));
        let o = opts(&[]);
        assert_eq!(o.shards, None);
        assert!(Options::parse(&["--shards".into()]).is_err());
        assert!(Options::parse(&["--shards".into(), "abc".into()]).is_err());
        assert!(Options::parse(&["--shards".into(), "0".into()]).is_err());
    }

    #[test]
    fn wal_flags_parse_and_reject_bad_values() {
        let o = opts(&["--wal-compact-every", "5", "--wal-compact-bytes", "4096"]);
        assert_eq!(o.wal_compact_every, Some(5));
        assert_eq!(o.wal_compact_bytes, Some(4096));
        let o = opts(&[]);
        assert_eq!(o.wal_compact_every, None, "unset flags defer to env/defaults");
        assert_eq!(o.wal_compact_bytes, None);
        assert!(Options::parse(&["--wal-compact-every".into()]).is_err());
        assert!(Options::parse(&["--wal-compact-every".into(), "abc".into()]).is_err());
        assert!(Options::parse(&["--wal-compact-every".into(), "0".into()]).is_err());
        assert!(Options::parse(&["--wal-compact-bytes".into()]).is_err());
        assert!(Options::parse(&["--wal-compact-bytes".into(), "-1".into()]).is_err());
        assert!(Options::parse(&["--wal-compact-bytes".into(), "0".into()]).is_err());
    }

    #[test]
    fn load_flags_parse_and_reject_bad_values() {
        let o = opts(&[
            "--seed",
            "7",
            "--connections",
            "8",
            "--tenants",
            "3",
            "--templates",
            "10",
            "--warmup",
            "2",
            "--measure",
            "20",
            "--soak",
            "2",
            "--shift-at",
            "12",
            "--rate",
            "2.5",
        ]);
        assert_eq!(o.seed, 7);
        assert_eq!(o.connections, 8);
        assert_eq!(o.tenants, Some(3));
        assert_eq!(o.templates, Some(10));
        assert_eq!(o.warmup, Some(2));
        assert_eq!(o.measure, Some(20));
        assert_eq!(o.soak, Some(2));
        assert_eq!(o.shift_at, Some(Some(12)));
        assert_eq!(o.rate, Some(2.5));
        let o = opts(&["--shift-at", "off"]);
        assert_eq!(o.shift_at, Some(None), "`off` disables the mix shift");
        let o = opts(&[]);
        assert_eq!(o.seed, 42, "defaults match the benchmark plan");
        assert_eq!(o.connections, 4);
        assert_eq!(o.shift_at, None, "absent flag defers to the plan default");
        assert!(Options::parse(&["--connections".into(), "0".into()]).is_err());
        assert!(Options::parse(&["--tenants".into(), "0".into()]).is_err());
        assert!(Options::parse(&["--templates".into(), "23".into()]).is_err());
        assert!(Options::parse(&["--templates".into(), "0".into()]).is_err());
        assert!(Options::parse(&["--measure".into(), "0".into()]).is_err());
        assert!(Options::parse(&["--shift-at".into(), "abc".into()]).is_err());
        assert!(Options::parse(&["--rate".into(), "0".into()]).is_err());
        assert!(Options::parse(&["--rate".into(), "-1".into()]).is_err());
        assert!(Options::parse(&["--rate".into(), "nan".into()]).is_err());
        // Without --server the command fails before any network I/O.
        assert!(load_cmd(&opts(&[])).is_err());
    }

    #[test]
    fn run_dispatches() {
        assert!(run(&[]).is_err());
        assert!(run(&["help".into()]).is_ok());
        assert!(run(&["bogus".into()]).is_err());
    }
}
