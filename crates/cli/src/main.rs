//! `isum` — command-line workload compression and index tuning.
//!
//! ```text
//! isum compress --schema schema.json --workload workload.sql -k 20 [--variant isum|isum-s|all-pairs]
//! isum tune     --schema schema.json --workload workload.sql -k 20 -m 16 [--advisor dta|dexter] [--report]
//! isum explain  --schema schema.json --workload workload.sql --query 3 [--tuned]
//! ```
//!
//! The schema is a JSON statistics document (see `schema.rs`); the workload
//! is a `;`-separated SQL script, optionally with `-- cost: <value>`
//! annotations carrying logged costs (missing costs are filled by the
//! bundled what-if optimizer).
//!
//! Passing `--stats` (or setting `ISUM_TELEMETRY=1`) enables the
//! [`isum_common::telemetry`] registry and prints a phase/counter table
//! after the command finishes. Passing `--threads <n>` (or setting
//! `ISUM_THREADS=<n>`) sizes the [`isum_exec`] worker pool; `--threads 1`
//! runs everything sequentially and produces bit-identical results to any
//! other thread count. Passing `--faults <spec>` (or setting
//! `ISUM_FAULTS=<spec>`) activates the deterministic fault injector —
//! see DESIGN.md §9 for the spec grammar and degradation contract.

mod schema;

use std::process::ExitCode;

use isum_advisor::{DexterAdvisor, DtaAdvisor, IndexAdvisor, TuningConstraints, TuningReport};
use isum_common::telemetry;
use isum_common::{Error, Result};
use isum_core::{Compressor, Isum, IsumConfig};
use isum_optimizer::{CostModel, IndexConfig, WhatIfOptimizer};
use isum_workload::{load_script, Workload};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn run(args: &[String]) -> Result<()> {
    let Some(command) = args.first() else {
        print_usage();
        return Err(Error::InvalidConfig("missing command".into()));
    };
    let opts = Options::parse(&args[1..])?;
    telemetry::init_from_env();
    isum_faults::init_from_env()
        .map_err(|e| Error::InvalidConfig(format!("invalid ISUM_FAULTS: {e}")))?;
    if let Some(spec) = &opts.faults {
        isum_faults::set_global_spec(spec)
            .map_err(|e| Error::InvalidConfig(format!("invalid --faults spec: {e}")))?;
    }
    if opts.stats {
        telemetry::set_enabled(true);
    }
    if let Some(n) = opts.threads {
        isum_exec::set_global_threads(n);
    }
    let result = match command.as_str() {
        "compress" => compress(&opts),
        "tune" => tune(&opts),
        "explain" => explain(&opts),
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(())
        }
        other => {
            print_usage();
            Err(Error::InvalidConfig(format!("unknown command `{other}`")))
        }
    };
    if result.is_ok() && telemetry::enabled() {
        let snap = telemetry::snapshot();
        if !snap.is_empty() {
            println!("\n{}", snap.render_table());
        }
    }
    result
}

fn print_usage() {
    eprintln!(
        "usage:\n  \
         isum compress --schema <json> --workload <sql> -k <n> [--variant isum|isum-s|all-pairs]\n  \
         isum tune     --schema <json> --workload <sql> -k <n> [-m <indexes>] [--advisor dta|dexter] [--budget-bytes <n>] [--report]\n  \
         isum explain  --schema <json> --workload <sql> --query <idx> [--tuned]\n\
         any command accepts --stats (or ISUM_TELEMETRY=1) to print a telemetry table,\n\
         --threads <n> (or ISUM_THREADS=<n>) to size the worker pool (1 = sequential),\n\
         and --faults <spec> (or ISUM_FAULTS=<spec>) for deterministic fault injection\n\
         (e.g. whatif_transient:0.05,parse:0.01,seed:7 — see DESIGN.md \u{a7}9)"
    );
}

/// Parsed flag set shared by all commands.
struct Options {
    schema: Option<String>,
    workload: Option<String>,
    k: usize,
    m: usize,
    query: usize,
    variant: String,
    advisor: String,
    budget_bytes: Option<u64>,
    report: bool,
    tuned: bool,
    stats: bool,
    threads: Option<usize>,
    faults: Option<String>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self> {
        let mut o = Options {
            schema: None,
            workload: None,
            k: 10,
            m: 16,
            query: 0,
            variant: "isum".into(),
            advisor: "dta".into(),
            budget_bytes: None,
            report: false,
            tuned: false,
            stats: false,
            threads: None,
            faults: None,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut value = |name: &str| -> Result<String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| Error::InvalidConfig(format!("{name} needs a value")))
            };
            match a.as_str() {
                "--schema" => o.schema = Some(value("--schema")?),
                "--workload" => o.workload = Some(value("--workload")?),
                "-k" => {
                    o.k = value("-k")?
                        .parse()
                        .map_err(|_| Error::InvalidConfig("-k must be an integer".into()))?
                }
                "-m" => {
                    o.m = value("-m")?
                        .parse()
                        .map_err(|_| Error::InvalidConfig("-m must be an integer".into()))?
                }
                "--query" => {
                    o.query = value("--query")?
                        .parse()
                        .map_err(|_| Error::InvalidConfig("--query must be an index".into()))?
                }
                "--variant" => o.variant = value("--variant")?,
                "--advisor" => o.advisor = value("--advisor")?,
                "--budget-bytes" => {
                    o.budget_bytes = Some(value("--budget-bytes")?.parse().map_err(|_| {
                        Error::InvalidConfig("--budget-bytes must be an integer".into())
                    })?)
                }
                "--threads" => {
                    let n: usize = value("--threads")?
                        .parse()
                        .map_err(|_| Error::InvalidConfig("--threads must be an integer".into()))?;
                    if n == 0 {
                        return Err(Error::InvalidConfig("--threads must be at least 1".into()));
                    }
                    o.threads = Some(n);
                }
                "--faults" => o.faults = Some(value("--faults")?),
                "--report" => o.report = true,
                "--tuned" => o.tuned = true,
                "--stats" => o.stats = true,
                other => {
                    return Err(Error::InvalidConfig(format!("unknown flag `{other}`")));
                }
            }
        }
        Ok(o)
    }

    fn load(&self) -> Result<Workload> {
        let schema_path = self
            .schema
            .as_ref()
            .ok_or_else(|| Error::InvalidConfig("--schema is required".into()))?;
        let workload_path = self
            .workload
            .as_ref()
            .ok_or_else(|| Error::InvalidConfig("--workload is required".into()))?;
        let schema_json = std::fs::read_to_string(schema_path)?;
        let script = std::fs::read_to_string(workload_path)?;
        let catalog = schema::parse_schema(&schema_json)?;
        let mut w = load_script(catalog, &script)?;
        if w.is_empty() {
            return Err(Error::InvalidConfig("workload script has no statements".into()));
        }
        // Fill costs the script didn't annotate.
        if w.queries.iter().any(|q| q.cost <= 0.0) {
            let costs: Vec<f64> = {
                let opt = WhatIfOptimizer::new(&w.catalog);
                let empty = IndexConfig::empty();
                w.queries
                    .iter()
                    .map(|q| if q.cost > 0.0 { q.cost } else { opt.cost_bound(&q.bound, &empty) })
                    .collect()
            };
            w.set_costs(&costs);
        }
        Ok(w)
    }

    fn compressor(&self) -> Result<Isum> {
        Ok(match self.variant.as_str() {
            "isum" => Isum::new(),
            "isum-s" => Isum::with_config(IsumConfig::isum_s()),
            "all-pairs" => Isum::with_config(IsumConfig::all_pairs()),
            other => {
                return Err(Error::InvalidConfig(format!(
                    "unknown variant `{other}` (isum | isum-s | all-pairs)"
                )))
            }
        })
    }

    fn advisor(&self) -> Result<Box<dyn IndexAdvisor>> {
        Ok(match self.advisor.as_str() {
            "dta" => Box::new(DtaAdvisor::new()),
            "dexter" => Box::new(DexterAdvisor::new()),
            other => {
                return Err(Error::InvalidConfig(format!(
                    "unknown advisor `{other}` (dta | dexter)"
                )))
            }
        })
    }
}

fn compress(opts: &Options) -> Result<()> {
    let w = opts.load()?;
    let compressed = opts.compressor()?.compress(&w, opts.k)?;
    println!(
        "selected {} of {} queries ({} templates):",
        compressed.len(),
        w.len(),
        w.template_count()
    );
    for (id, weight) in &compressed.entries {
        let sql = &w.query(*id).sql;
        println!("  {:>6.3}  [{}] {}", weight, id, &sql[..sql.len().min(90)]);
    }
    Ok(())
}

fn tune(opts: &Options) -> Result<()> {
    let w = opts.load()?;
    let compressed = opts.compressor()?.compress(&w, opts.k)?;
    let advisor = opts.advisor()?;
    let constraints =
        TuningConstraints { max_indexes: opts.m, storage_budget_bytes: opts.budget_bytes };
    let opt = WhatIfOptimizer::new(&w.catalog);
    let config = advisor.recommend(&opt, &w, &compressed, &constraints);
    println!("recommended {} indexes (advisor {}):", config.len(), advisor.name());
    for ix in config.indexes() {
        println!("  CREATE INDEX ON {};", ix.display(&w.catalog));
    }
    println!("\nestimated workload improvement: {:.1}%", opt.improvement_pct(&w, &config));
    if opts.report {
        let report = TuningReport::exact(&opt, &w, &config);
        println!("\nper-query drill-down:");
        for e in &report.entries {
            if e.improvement() > 0.005 {
                let used: Vec<String> =
                    e.indexes_used.iter().map(|ix| ix.display(&w.catalog)).collect();
                println!(
                    "  {}: {:.0} -> {:.0} ({:.0}%) via [{}]",
                    e.query,
                    e.cost_before,
                    e.cost_after,
                    e.improvement() * 100.0,
                    used.join(", ")
                );
            }
        }
    }
    Ok(())
}

fn explain(opts: &Options) -> Result<()> {
    let w = opts.load()?;
    if opts.query >= w.len() {
        return Err(Error::InvalidConfig(format!(
            "--query {} out of range (workload has {})",
            opts.query,
            w.len()
        )));
    }
    let q = &w.queries[opts.query];
    let model = CostModel::new(&w.catalog);
    let config = if opts.tuned {
        let compressed = opts.compressor()?.compress(&w, opts.k.min(w.len()))?;
        let opt = WhatIfOptimizer::new(&w.catalog);
        opts.advisor()?.recommend(
            &opt,
            &w,
            &compressed,
            &TuningConstraints::with_max_indexes(opts.m),
        )
    } else {
        IndexConfig::empty()
    };
    println!("-- {}", q.sql);
    match model.plan(&q.bound, &config) {
        Some(plan) => {
            println!("(total cost {:.0})", plan.total_cost());
            print!("{}", plan.render(&w.catalog));
        }
        None => println!("(no tables referenced)"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_fixtures() -> (std::path::PathBuf, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("isum_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let schema = dir.join("schema.json");
        std::fs::write(
            &schema,
            r#"{"tables":[{"name":"t","rows":100000,"columns":[
                {"name":"id","type":"key"},
                {"name":"grp","type":"int","distinct":500,"min":0,"max":500},
                {"name":"ts","type":"date","min":19000,"max":20000}
            ]}]}"#,
        )
        .expect("write schema");
        let workload = dir.join("workload.sql");
        std::fs::write(
            &workload,
            "-- cost: 250\nSELECT id FROM t WHERE grp = 7;\n\
             SELECT id FROM t WHERE grp = 9;\n\
             SELECT count(*) FROM t WHERE ts > DATE '2024-01-01' GROUP BY grp;",
        )
        .expect("write workload");
        (schema, workload)
    }

    fn opts(extra: &[&str]) -> Options {
        let (schema, workload) = write_fixtures();
        let mut args = vec![
            "--schema".to_string(),
            schema.to_string_lossy().into_owned(),
            "--workload".to_string(),
            workload.to_string_lossy().into_owned(),
        ];
        args.extend(extra.iter().map(|s| s.to_string()));
        Options::parse(&args).expect("flags parse")
    }

    #[test]
    fn load_fills_missing_costs_keeps_annotated() {
        let o = opts(&[]);
        let w = o.load().expect("loads");
        assert_eq!(w.len(), 3);
        assert_eq!(w.queries[0].cost, 250.0, "annotated cost preserved");
        assert!(w.queries[1].cost > 0.0, "missing cost filled");
    }

    #[test]
    fn commands_run_end_to_end() {
        let o = opts(&["-k", "2", "-m", "4", "--report"]);
        compress(&o).expect("compress runs");
        tune(&o).expect("tune runs");
        let o = opts(&["--query", "2", "--tuned", "-k", "2"]);
        explain(&o).expect("explain runs");
    }

    #[test]
    fn flag_errors_are_reported() {
        assert!(Options::parse(&["--bogus".into()]).is_err());
        assert!(Options::parse(&["-k".into()]).is_err());
        assert!(Options::parse(&["-k".into(), "abc".into()]).is_err());
        let o = opts(&["--variant", "nope"]);
        assert!(o.compressor().is_err());
        let o = opts(&["--advisor", "nope"]);
        assert!(o.advisor().is_err());
        let o = opts(&["--query", "99"]);
        assert!(explain(&o).is_err());
    }

    #[test]
    fn stats_flag_parses() {
        let o = opts(&["--stats"]);
        assert!(o.stats);
        let o = opts(&[]);
        assert!(!o.stats);
    }

    #[test]
    fn threads_flag_parses_and_rejects_bad_values() {
        let o = opts(&["--threads", "4"]);
        assert_eq!(o.threads, Some(4));
        let o = opts(&[]);
        assert_eq!(o.threads, None);
        assert!(Options::parse(&["--threads".into()]).is_err());
        assert!(Options::parse(&["--threads".into(), "abc".into()]).is_err());
        assert!(Options::parse(&["--threads".into(), "0".into()]).is_err());
    }

    #[test]
    fn faults_flag_parses() {
        let o = opts(&["--faults", "whatif_transient:0.1,seed:3"]);
        assert_eq!(o.faults.as_deref(), Some("whatif_transient:0.1,seed:3"));
        let o = opts(&[]);
        assert!(o.faults.is_none());
        assert!(Options::parse(&["--faults".into()]).is_err());
    }

    #[test]
    fn run_dispatches() {
        assert!(run(&[]).is_err());
        assert!(run(&["help".into()]).is_ok());
        assert!(run(&["bogus".into()]).is_err());
    }
}
