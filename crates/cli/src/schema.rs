//! JSON schema definitions for the CLI.
//!
//! Users describe their database as a JSON document (tables, row counts,
//! per-column statistics — the same inputs a production deployment would
//! pull from `pg_stats` / `sys.dm_db_stats`), which the CLI turns into an
//! [`isum_catalog::Catalog`]. Parsing is hand-rolled over
//! [`isum_common::Json`] so the CLI carries no serialization dependency.

use isum_catalog::{Catalog, CatalogBuilder};
use isum_common::{Error, Json, Result};

/// Top-level schema document.
#[derive(Debug)]
pub struct SchemaDoc {
    /// Table definitions.
    pub tables: Vec<TableDoc>,
}

/// One table.
#[derive(Debug)]
pub struct TableDoc {
    /// Table name.
    pub name: String,
    /// Row count.
    pub rows: u64,
    /// Columns.
    pub columns: Vec<ColumnDoc>,
}

/// One column. `type` is one of `int`, `float`, `date`, `text`, `key`.
#[derive(Debug)]
pub struct ColumnDoc {
    /// Column name.
    pub name: String,
    /// Logical type.
    pub ty: String,
    /// Distinct values (defaults to the table's row count for `key`,
    /// `rows / 10` otherwise).
    pub distinct: Option<u64>,
    /// Domain minimum (ordered types; default 0).
    pub min: Option<f64>,
    /// Domain maximum (ordered types; default `distinct`).
    pub max: Option<f64>,
    /// Average width in bytes (text only; default 24).
    pub width: Option<u32>,
    /// Zipf skew exponent for the value distribution (default 0 = uniform).
    pub skew: Option<f64>,
}

fn bad(msg: impl Into<String>) -> Error {
    Error::Io(format!("schema JSON: {}", msg.into()))
}

fn req_str(v: &Json, key: &str, ctx: &str) -> Result<String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad(format!("{ctx}: missing string field `{key}`")))
}

fn opt_f64(v: &Json, key: &str) -> Option<f64> {
    v.get(key).and_then(Json::as_f64)
}

/// Decodes the document structure from parsed JSON.
fn decode_doc(root: &Json) -> Result<SchemaDoc> {
    let tables =
        root.get("tables").and_then(Json::as_array).ok_or_else(|| bad("missing `tables` array"))?;
    let mut out = Vec::with_capacity(tables.len());
    for t in tables {
        let name = req_str(t, "name", "table")?;
        let rows = t
            .get("rows")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad(format!("table `{name}`: missing numeric `rows`")))?;
        let cols = t
            .get("columns")
            .and_then(Json::as_array)
            .ok_or_else(|| bad(format!("table `{name}`: missing `columns` array")))?;
        let mut columns = Vec::with_capacity(cols.len());
        for c in cols {
            let ctx = format!("table `{name}` column");
            columns.push(ColumnDoc {
                name: req_str(c, "name", &ctx)?,
                ty: req_str(c, "type", &ctx)?,
                distinct: c.get("distinct").and_then(Json::as_u64),
                min: opt_f64(c, "min"),
                max: opt_f64(c, "max"),
                width: c.get("width").and_then(Json::as_u64).map(|w| w as u32),
                skew: opt_f64(c, "skew"),
            });
        }
        out.push(TableDoc { name, rows, columns });
    }
    Ok(SchemaDoc { tables: out })
}

/// Parses a schema document and builds the catalog.
///
/// # Errors
/// Returns [`Error::Io`] on malformed JSON and [`Error::Catalog`] on
/// invalid definitions (duplicate tables, unknown column types).
pub fn parse_schema(json: &str) -> Result<Catalog> {
    let root = Json::parse(json).map_err(|e| bad(e.to_string()))?;
    let doc = decode_doc(&root)?;
    let mut builder = CatalogBuilder::new();
    for t in &doc.tables {
        let mut tb = builder.table(&t.name, t.rows);
        for c in &t.columns {
            let distinct = c.distinct.unwrap_or(match c.ty.as_str() {
                "key" => t.rows.max(1),
                _ => (t.rows / 10).max(2),
            });
            let min = c.min.unwrap_or(0.0);
            let max = c.max.unwrap_or(distinct as f64);
            tb = match c.ty.as_str() {
                "key" => tb.col_key(&c.name),
                "int" => {
                    if c.skew.unwrap_or(0.0) > 0.0 {
                        tb.col_int_skewed(
                            &c.name,
                            distinct,
                            min as i64,
                            max as i64,
                            c.skew.unwrap_or(0.0),
                        )
                    } else {
                        tb.col_int(&c.name, distinct, min as i64, max as i64)
                    }
                }
                "float" => tb.col_float(&c.name, distinct, min, max),
                "date" => tb.col_date(&c.name, min as i64, max as i64),
                "text" => tb.col_text(&c.name, distinct, c.width.unwrap_or(24)),
                other => {
                    return Err(Error::Catalog(format!(
                        "unknown column type `{other}` for {}.{}",
                        t.name, c.name
                    )))
                }
            };
        }
        builder = tb.finish()?;
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "tables": [
            {"name": "orders", "rows": 1500000, "columns": [
                {"name": "o_orderkey", "type": "key"},
                {"name": "o_custkey", "type": "int", "distinct": 100000, "min": 1, "max": 150000},
                {"name": "o_orderdate", "type": "date", "min": 8035, "max": 10591},
                {"name": "o_comment", "type": "text", "distinct": 500000, "width": 48}
            ]},
            {"name": "hot", "rows": 1000, "columns": [
                {"name": "h_val", "type": "int", "skew": 1.2}
            ]}
        ]
    }"#;

    #[test]
    fn parses_sample_schema() {
        let cat = parse_schema(SAMPLE).expect("sample parses");
        assert_eq!(cat.len(), 2);
        let orders = cat.table(cat.table_id("orders").expect("table exists"));
        assert_eq!(orders.row_count, 1_500_000);
        assert_eq!(orders.columns.len(), 4);
        let key = orders.column(orders.column_id("o_orderkey").expect("col"));
        assert_eq!(key.stats.distinct, 1_500_000, "key defaults to row count");
        let comment = orders.column(orders.column_id("o_comment").expect("col"));
        assert_eq!(comment.stats.avg_width, 48);
    }

    #[test]
    fn defaults_applied() {
        let cat = parse_schema(
            r#"{"tables":[{"name":"t","rows":100,"columns":[{"name":"a","type":"int"}]}]}"#,
        )
        .expect("parses");
        let t = cat.table(cat.table_id("t").expect("table"));
        assert_eq!(t.column(t.column_id("a").expect("col")).stats.distinct, 10);
    }

    #[test]
    fn rejects_unknown_type_and_bad_json() {
        assert!(parse_schema(
            r#"{"tables":[{"name":"t","rows":1,"columns":[{"name":"a","type":"uuid"}]}]}"#
        )
        .is_err());
        assert!(parse_schema("not json").is_err());
    }

    #[test]
    fn rejects_duplicate_tables() {
        let dup = r#"{"tables":[
            {"name":"t","rows":1,"columns":[{"name":"a","type":"key"}]},
            {"name":"t","rows":2,"columns":[{"name":"b","type":"key"}]}
        ]}"#;
        assert!(parse_schema(dup).is_err());
    }

    #[test]
    fn missing_fields_reported() {
        let err = parse_schema(r#"{"tables":[{"name":"t","columns":[]}]}"#).unwrap_err();
        assert!(err.to_string().contains("rows"), "{err}");
    }
}
