//! Bit-exact `f64` text encoding.
//!
//! The determinism contract (DESIGN.md §5) promises bit-identical results,
//! and JSON decimal round-tripping is not bit-exact. Every persisted `f64`
//! — experiment checkpoints, the server's state checkpoint, `/summary`
//! wire weights — is therefore written as its 16-hex-digit IEEE-754 bit
//! pattern and restored via [`f64::from_bits`], which preserves every
//! value including `-0.0` and NaN payloads.

/// Encodes a float as its 16-hex-digit IEEE-754 bit pattern.
pub fn hex_bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Decodes [`hex_bits`] output; `None` when the text is not hexadecimal.
pub fn unhex_bits(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_bit_pattern_class() {
        for v in [0.0, -0.0, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -1e300, f64::INFINITY] {
            let back = unhex_bits(&hex_bits(v)).expect("valid hex");
            assert_eq!(back.to_bits(), v.to_bits());
        }
        assert!(unhex_bits(&hex_bits(f64::NAN)).expect("valid hex").is_nan());
        assert_eq!(hex_bits(-0.0), "8000000000000000", "sign bit survives");
    }

    #[test]
    fn rejects_non_hex() {
        assert_eq!(unhex_bits("not hex"), None);
        assert_eq!(unhex_bits(""), None);
    }
}
