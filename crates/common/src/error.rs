//! Workspace error type.
//!
//! A single lightweight error enum shared by all crates. The variants mirror
//! the pipeline stages: lexing/parsing SQL, binding names against the catalog,
//! and configuration errors in the compressors/advisors.

use std::fmt;

/// Result alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors produced anywhere in the ISUM pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The SQL lexer met a character sequence it cannot tokenize.
    Lex {
        /// Byte offset in the input text.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// The SQL parser met an unexpected token.
    Parse {
        /// Byte offset of the offending token.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// Name resolution against the catalog failed (unknown table/column,
    /// ambiguous reference, ...).
    Bind(String),
    /// A catalog invariant was violated (duplicate table, bad statistics, ...).
    Catalog(String),
    /// An algorithm was configured inconsistently (e.g. `k` larger than the
    /// workload, empty workload, non-positive budget).
    InvalidConfig(String),
    /// IO error wrapper used by loaders and the experiment harness.
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { offset, message } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            Error::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            Error::Bind(m) => write!(f, "bind error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            Error::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

/// Failure class driving the degradation policy (DESIGN.md §9): transient
/// failures are retried with capped backoff, permanent failures fall back
/// immediately, and budget exhaustion falls back without retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// Worth retrying: timeouts, injected flakiness, latency spikes.
    Transient,
    /// Retrying cannot help: parse/bind failures, bad configuration.
    Permanent,
    /// A resource budget (what-if call budget, wall-clock limit) ran out.
    Budget,
}

impl ErrorClass {
    /// Stable lower-case name, used in checkpoint files and telemetry.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorClass::Transient => "transient",
            ErrorClass::Permanent => "permanent",
            ErrorClass::Budget => "budget",
        }
    }

    /// Inverse of [`ErrorClass::as_str`]; `None` for unknown names.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "transient" => Some(ErrorClass::Transient),
            "permanent" => Some(ErrorClass::Permanent),
            "budget" => Some(ErrorClass::Budget),
            _ => None,
        }
    }

    /// HTTP status the serving layer maps this class to: transient
    /// failures are `503 Service Unavailable` (the client may retry),
    /// permanent failures are `400 Bad Request` (retrying the same input
    /// cannot help), and budget exhaustion is `429 Too Many Requests`
    /// (back off until quota frees up).
    pub fn http_status(self) -> u16 {
        match self {
            ErrorClass::Transient => 503,
            ErrorClass::Permanent => 400,
            ErrorClass::Budget => 429,
        }
    }
}

/// Result alias for fallible resilience-aware paths.
pub type IsumResult<T> = std::result::Result<T, IsumError>;

/// Classified error used on paths that must degrade gracefully instead of
/// panicking: what-if costing, workload ingestion, and the experiment
/// harness. Wraps a message plus an [`ErrorClass`] that tells the caller
/// whether retrying can help.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsumError {
    class: ErrorClass,
    message: String,
}

impl IsumError {
    /// An error of an explicit class.
    pub fn new(class: ErrorClass, message: impl Into<String>) -> Self {
        Self { class, message: message.into() }
    }

    /// A [`ErrorClass::Transient`] error (retry may succeed).
    pub fn transient(message: impl Into<String>) -> Self {
        Self::new(ErrorClass::Transient, message)
    }

    /// A [`ErrorClass::Permanent`] error (retry cannot help).
    pub fn permanent(message: impl Into<String>) -> Self {
        Self::new(ErrorClass::Permanent, message)
    }

    /// A [`ErrorClass::Budget`] error (a resource budget is exhausted).
    pub fn budget(message: impl Into<String>) -> Self {
        Self::new(ErrorClass::Budget, message)
    }

    /// The failure class.
    pub fn class(&self) -> ErrorClass {
        self.class
    }

    /// The human-readable message (no class prefix).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// True when the degradation policy should retry.
    pub fn is_transient(&self) -> bool {
        self.class == ErrorClass::Transient
    }

    /// HTTP status for this error (see [`ErrorClass::http_status`]).
    pub fn http_status(&self) -> u16 {
        self.class.http_status()
    }
}

impl fmt::Display for IsumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.class.as_str(), self.message)
    }
}

impl std::error::Error for IsumError {}

/// Pipeline errors are deterministic functions of their input, so retrying
/// them cannot help: they classify as [`ErrorClass::Permanent`].
impl From<Error> for IsumError {
    fn from(e: Error) -> Self {
        IsumError::permanent(e.to_string())
    }
}

impl From<std::io::Error> for IsumError {
    fn from(e: std::io::Error) -> Self {
        // IO failures (blips of a shared filesystem, interrupted syscalls)
        // are worth one more attempt.
        IsumError::transient(format!("io error: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_message() {
        let e = Error::Parse { offset: 10, message: "expected FROM".into() };
        assert_eq!(e.to_string(), "parse error at byte 10: expected FROM");
        assert!(Error::Bind("no such column x".into()).to_string().contains("bind"));
        assert!(Error::InvalidConfig("k=0".into()).to_string().contains("invalid"));
    }

    #[test]
    fn isum_error_classes_round_trip() {
        for class in [ErrorClass::Transient, ErrorClass::Permanent, ErrorClass::Budget] {
            assert_eq!(ErrorClass::parse(class.as_str()), Some(class));
        }
        assert_eq!(ErrorClass::parse("bogus"), None);

        let e = IsumError::transient("optimizer timed out");
        assert!(e.is_transient());
        assert_eq!(e.to_string(), "transient error: optimizer timed out");

        let from_parse: IsumError =
            Error::Parse { offset: 3, message: "expected FROM".into() }.into();
        assert_eq!(from_parse.class(), ErrorClass::Permanent);
        assert!(!from_parse.is_transient());
        assert!(from_parse.message().contains("expected FROM"));

        let from_io: IsumError =
            std::io::Error::new(std::io::ErrorKind::Interrupted, "EINTR").into();
        assert_eq!(from_io.class(), ErrorClass::Transient);
    }

    #[test]
    fn http_status_mapping_is_stable() {
        assert_eq!(ErrorClass::Transient.http_status(), 503);
        assert_eq!(ErrorClass::Permanent.http_status(), 400);
        assert_eq!(ErrorClass::Budget.http_status(), 429);
        assert_eq!(IsumError::budget("whatif quota").http_status(), 429);
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(e.to_string().contains("gone"));
    }
}
