//! Workspace error type.
//!
//! A single lightweight error enum shared by all crates. The variants mirror
//! the pipeline stages: lexing/parsing SQL, binding names against the catalog,
//! and configuration errors in the compressors/advisors.

use std::fmt;

/// Result alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors produced anywhere in the ISUM pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The SQL lexer met a character sequence it cannot tokenize.
    Lex {
        /// Byte offset in the input text.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// The SQL parser met an unexpected token.
    Parse {
        /// Byte offset of the offending token.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// Name resolution against the catalog failed (unknown table/column,
    /// ambiguous reference, ...).
    Bind(String),
    /// A catalog invariant was violated (duplicate table, bad statistics, ...).
    Catalog(String),
    /// An algorithm was configured inconsistently (e.g. `k` larger than the
    /// workload, empty workload, non-positive budget).
    InvalidConfig(String),
    /// IO error wrapper used by loaders and the experiment harness.
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { offset, message } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            Error::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            Error::Bind(m) => write!(f, "bind error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            Error::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_message() {
        let e = Error::Parse { offset: 10, message: "expected FROM".into() };
        assert_eq!(e.to_string(), "parse error at byte 10: expected FROM");
        assert!(Error::Bind("no such column x".into()).to_string().contains("bind"));
        assert!(Error::InvalidConfig("k=0".into()).to_string().contains("invalid"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(e.to_string().contains("gone"));
    }
}
