//! Length-prefixed, CRC32-checksummed record framing shared by the
//! server's write-ahead log and its tests (DESIGN.md §14).
//!
//! A frame on disk is `[len: u32 LE][crc: u32 LE][payload: len bytes]`
//! where `crc` is the CRC-32 (ISO-HDLC / IEEE 802.3 polynomial,
//! reflected, init and xorout `0xFFFF_FFFF`) of the payload alone.
//! Decoding distinguishes three outcomes so a log reader can tell a
//! torn tail (crash mid-write: tolerate and truncate) from mid-log
//! corruption (bit rot: refuse):
//!
//! - [`FrameStatus::Complete`] — a whole frame with a matching CRC.
//! - [`FrameStatus::Torn`] — the buffer ends before the frame does.
//! - [`FrameStatus::Corrupt`] — the frame is all there but the CRC
//!   disagrees; `consumed` reports its full length so the caller can
//!   check whether anything follows it.

/// Bytes of framing overhead per record: a `u32` length plus a `u32` CRC.
pub const FRAME_HEADER_LEN: usize = 8;

/// Largest payload a frame will declare or accept. Anything bigger in a
/// length prefix is treated as corruption rather than an allocation.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 30;

const CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (ISO-HDLC) of `bytes`. `crc32(b"123456789") == 0xCBF43926`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

/// Outcome of decoding the frame at the front of a byte buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameStatus<'a> {
    /// A whole frame with a valid checksum; `consumed` bytes cover the
    /// header plus payload.
    Complete { payload: &'a [u8], consumed: usize },
    /// The buffer ends mid-frame — fewer than [`FRAME_HEADER_LEN`]
    /// bytes, or a declared length that runs past the end.
    Torn,
    /// The frame is fully present but its CRC (or a length prefix
    /// beyond [`MAX_FRAME_PAYLOAD`]) disagrees. `consumed` is the
    /// frame's declared extent, so a caller can classify a corrupt
    /// *final* frame as a torn tail instead.
    Corrupt { consumed: usize },
}

/// Encodes `payload` as one frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME_PAYLOAD, "frame payload too large");
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes the frame at the front of `buf`. Never panics on arbitrary
/// input — truncation at any byte offset yields `Torn` or `Corrupt`,
/// never an out-of-bounds read.
pub fn decode_frame(buf: &[u8]) -> FrameStatus<'_> {
    if buf.len() < FRAME_HEADER_LEN {
        return FrameStatus::Torn;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME_PAYLOAD {
        // An absurd length prefix cannot be trusted as an extent; treat
        // the frame as corrupt where it stands.
        return FrameStatus::Corrupt { consumed: FRAME_HEADER_LEN };
    }
    let expect = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let end = FRAME_HEADER_LEN + len;
    if buf.len() < end {
        return FrameStatus::Torn;
    }
    let payload = &buf[FRAME_HEADER_LEN..end];
    if crc32(payload) != expect {
        return FrameStatus::Corrupt { consumed: end };
    }
    FrameStatus::Complete { payload, consumed: end }
}

/// Sequential little-endian reader over a record payload. Every getter
/// returns `None` past the end instead of panicking, so record decoding
/// degrades to a parse error on truncated or hostile input.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(out)
    }

    pub fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }

    pub fn u16(&mut self) -> Option<u16> {
        self.bytes(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
    }

    pub fn u32(&mut self) -> Option<u32> {
        self.bytes(4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> Option<u64> {
        self.bytes(8).map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_iso_hdlc_check_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip() {
        for payload in [&b""[..], b"x", b"hello world", &[0u8; 1024]] {
            let frame = encode_frame(payload);
            assert_eq!(frame.len(), FRAME_HEADER_LEN + payload.len());
            match decode_frame(&frame) {
                FrameStatus::Complete { payload: got, consumed } => {
                    assert_eq!(got, payload);
                    assert_eq!(consumed, frame.len());
                }
                other => panic!("expected Complete, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_at_every_offset_is_torn_never_corrupt() {
        let frame = encode_frame(b"the quick brown fox");
        for cut in 0..frame.len() {
            assert_eq!(decode_frame(&frame[..cut]), FrameStatus::Torn, "cut at {cut}");
        }
    }

    #[test]
    fn payload_bit_flips_are_corrupt_with_the_full_extent() {
        let payload = b"payload under test";
        let mut frame = encode_frame(payload);
        frame[FRAME_HEADER_LEN + 3] ^= 0x40;
        assert_eq!(decode_frame(&frame), FrameStatus::Corrupt { consumed: frame.len() });
    }

    #[test]
    fn absurd_length_prefixes_are_corrupt_not_allocations() {
        let mut frame = encode_frame(b"ok");
        frame[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_frame(&frame), FrameStatus::Corrupt { consumed: FRAME_HEADER_LEN });
    }

    #[test]
    fn byte_reader_refuses_to_run_past_the_end() {
        let mut r = ByteReader::new(&[1, 0, 0, 0, 0, 0, 0, 0, 7]);
        assert_eq!(r.u64(), Some(1));
        assert_eq!(r.u16(), None, "2 bytes requested, 1 remains");
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u8(), None);
    }
}
