//! Strongly-typed identifiers.
//!
//! Every entity that crosses a crate boundary (tables, columns, queries,
//! indexes, templates) is referred to by a small copyable id. Using newtypes
//! instead of bare `usize` prevents the classic bug of indexing a table vector
//! with a column id, at zero runtime cost.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index, suitable for indexing dense vectors.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense vector index.
            ///
            /// # Panics
            /// Panics if `idx` does not fit in `u32`.
            #[inline]
            pub fn from_index(idx: usize) -> Self {
                Self(u32::try_from(idx).expect("id overflow"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(idx: usize) -> Self {
                Self::from_index(idx)
            }
        }
    };
}

define_id!(
    /// Identifies a table within a [`Catalog`](https://docs.rs/isum-catalog).
    TableId,
    "t"
);
define_id!(
    /// Identifies a column *within its table* (position in the table's column
    /// list, not a global id). Pair with a [`TableId`] for a global reference.
    ColumnId,
    "c"
);
define_id!(
    /// Identifies a query within a workload.
    QueryId,
    "q"
);
define_id!(
    /// Identifies an index produced by candidate generation or an advisor.
    IndexId,
    "i"
);
define_id!(
    /// Identifies a query template (queries identical up to parameter
    /// bindings share a template, Sec 1 of the paper).
    TemplateId,
    "tpl"
);

/// A globally unique column reference: a table together with one of its
/// columns. This is the feature key used throughout ISUM's featurization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalColumnId {
    /// Owning table.
    pub table: TableId,
    /// Column within `table`.
    pub column: ColumnId,
}

impl GlobalColumnId {
    /// Convenience constructor.
    #[inline]
    pub fn new(table: TableId, column: ColumnId) -> Self {
        Self { table, column }
    }
}

impl fmt::Display for GlobalColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_through_index() {
        let id = TableId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(TableId::from(7usize), TableId(7));
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(TableId(3).to_string(), "t3");
        assert_eq!(ColumnId(0).to_string(), "c0");
        assert_eq!(QueryId(12).to_string(), "q12");
        assert_eq!(TemplateId(5).to_string(), "tpl5");
        assert_eq!(GlobalColumnId::new(TableId(1), ColumnId(2)).to_string(), "t1.c2");
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(QueryId(1) < QueryId(2));
        let a = GlobalColumnId::new(TableId(0), ColumnId(9));
        let b = GlobalColumnId::new(TableId(1), ColumnId(0));
        assert!(a < b);
    }

    #[test]
    #[should_panic(expected = "id overflow")]
    fn id_overflow_panics() {
        let _ = TableId::from_index(usize::MAX);
    }
}
