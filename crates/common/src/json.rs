//! A small, dependency-free JSON value: parser, writer, and accessors.
//!
//! The workspace needs JSON in three places — the CLI's schema documents,
//! the experiment harness's persisted result tables, and the telemetry
//! snapshot reports — none of which need serde-style derive machinery.
//! Objects preserve insertion order so reports render deterministically.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integer from float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document.
    ///
    /// # Errors
    /// Returns a message naming the byte offset of the first syntax error,
    /// including trailing garbage after the document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integral payload, if this is a whole number `>= 0`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(fields) => write_seq(out, indent, depth, fields.len(), '{', '}', |out, i| {
                write_str(out, &fields[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                fields[i].1.write(out, indent, depth + 1);
            }),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

/// Convenience constructor for an object from `(key, value)` pairs.
pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Self {
        Json::Arr(items)
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional fallback.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at offset {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => {
                if self.eat("null") {
                    Ok(Json::Null)
                } else {
                    self.err("invalid literal")
                }
            }
            Some(b't') => {
                if self.eat("true") {
                    Ok(Json::Bool(true))
                } else {
                    self.err("invalid literal")
                }
            }
            Some(b'f') => {
                if self.eat("false") {
                    Ok(Json::Bool(false))
                } else {
                    self.err("invalid literal")
                }
            }
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => self.err("unexpected character"),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.pos += 1; // consume '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return self.err("expected object key");
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return self.err("expected `:`");
            }
            self.pos += 1;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                // Surrogate halves and bad hex degrade to
                                // the replacement character; schema docs
                                // never rely on astral-plane escapes.
                                None => {
                                    out.push('\u{fffd}');
                                    self.pos += 4;
                                }
                            }
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Json::Num).or_else(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].get("b").unwrap().as_str(),
            Some("x")
        );
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("not json").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn roundtrips_compact_and_pretty() {
        let src = r#"{"name":"t \"x\"","rows":100,"cols":[1,2.5,true,null]}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(Json::parse(&v.to_compact()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_pretty()).unwrap(), v);
        assert_eq!(v.to_compact(), src);
    }

    #[test]
    fn integer_rendering_is_exact() {
        assert_eq!(Json::Num(100.0).to_compact(), "100");
        assert_eq!(Json::Num(0.5).to_compact(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn accessors_type_check() {
        let v = Json::parse(r#"{"n": 3, "f": 3.5, "neg": -1}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("neg").unwrap().as_u64(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(3.5));
        assert_eq!(v.as_object().unwrap().len(), 3);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
    }
}
