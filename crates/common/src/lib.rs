//! Shared utilities for the ISUM reproduction.
//!
//! This crate contains the foundation types used by every other crate in the
//! workspace: strongly-typed identifiers ([`ids`]), the workspace error type
//! ([`error`]), deterministic random number generation with skewed samplers
//! ([`rng`]), and the statistical helpers used by the evaluation harness
//! ([`stats`]).

pub mod error;
pub mod ids;
pub mod rng;
pub mod stats;

pub use error::{Error, Result};
pub use ids::{ColumnId, GlobalColumnId, IndexId, QueryId, TableId, TemplateId};
