//! Shared utilities for the ISUM reproduction.
//!
//! This crate contains the foundation types used by every other crate in the
//! workspace: strongly-typed identifiers ([`ids`]), the workspace error type
//! ([`mod@error`]), deterministic random number generation with skewed samplers
//! ([`rng`]), the statistical helpers used by the evaluation harness
//! ([`stats`]), a dependency-free JSON value ([`json`]), and the
//! workload-compression telemetry layer ([`telemetry`]) every other crate
//! reports spans and counters through, and the structured tracing layer
//! ([`trace`]) that attributes individual events to requests and workers, and
//! the CRC32 record framing ([`framing`]) shared by the server's
//! write-ahead log and its tests.

pub mod bits;
pub mod error;
pub mod framing;
pub mod ids;
pub mod json;
pub mod rng;
pub mod stage;
pub mod stats;
pub mod telemetry;
pub mod trace;

pub use bits::{hex_bits, unhex_bits};
pub use error::{Error, ErrorClass, IsumError, IsumResult, Result};
pub use ids::{ColumnId, GlobalColumnId, IndexId, QueryId, TableId, TemplateId};
pub use json::Json;
pub use stage::{Stage, StageClock};
