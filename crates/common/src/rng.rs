//! Deterministic random number generation.
//!
//! Every stochastic component in the workspace (workload generators, sampling
//! baselines, property tests) draws from a [`DetRng`] seeded explicitly, so
//! experiments are reproducible run-to-run. The module also provides a
//! [`Zipf`] sampler used by the DSB- and Real-M-shaped workload generators to
//! produce the skewed value and template-frequency distributions the paper
//! attributes to those workloads.

/// Deterministic RNG used across the workspace.
///
/// A self-contained xoshiro256** generator seeded through SplitMix64 (the
/// reference seeding procedure), so the workspace carries no external RNG
/// dependency. It can only be constructed from an explicit seed, making
/// accidental use of entropy-based seeding impossible.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state, per the
        // xoshiro authors' recommendation (never leaves the state all-zero).
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { state: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit output (xoshiro256**).
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s2n = s2 ^ s0;
        let mut s3n = s3 ^ s1;
        let s1n = s1 ^ s2n;
        let s0n = s0 ^ s3n;
        s2n ^= t;
        s3n = s3n.rotate_left(45);
        self.state = [s0n, s1n, s2n, s3n];
        result
    }

    /// Uniform integer in `[0, bound)` over a `u64` bound, without modulo
    /// bias (Lemire-style rejection on the widening multiply).
    fn below_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = (self.next_u64() as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Derives an independent child generator; used to give each query
    /// template its own stream so that adding templates does not perturb
    /// the bindings of existing ones.
    pub fn fork(&mut self, salt: u64) -> Self {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::seeded(s)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        self.below_u64(bound as u64) as usize
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn range_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi as i128 - lo as i128) as u128 + 1;
        if span > u64::MAX as u128 {
            // Full-width range: any u64 reinterpreted is uniform.
            return self.next_u64() as i64;
        }
        let off = self.below_u64(span as u64);
        (lo as i128 + off as i128) as i64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits scaled into [0, 1), the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (floyd's algorithm would be
    /// fancier; a partial shuffle is simple and `n` is always small here).
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

/// Zipfian sampler over ranks `0..n` with exponent `theta`.
///
/// Uses the cumulative-probability inversion method with a precomputed CDF;
/// `theta = 0` degenerates to the uniform distribution and larger values
/// concentrate probability mass on low ranks.
///
/// ```
/// use isum_common::rng::{DetRng, Zipf};
/// let z = Zipf::new(100, 1.0);
/// let mut rng = DetRng::seeded(1);
/// assert!(z.pmf(0) > z.pmf(50));
/// let r = z.sample(&mut rng);
/// assert!(r < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with skew `theta >= 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative/not finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        assert!(theta >= 0.0 && theta.is_finite(), "bad Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the tail.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the domain has a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most likely.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.unit();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("finite")) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i,
        }
    }

    /// Probability mass of a rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seeded(7);
        let mut b = DetRng::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn forked_streams_diverge() {
        let mut root = DetRng::seeded(7);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let va: Vec<_> = (0..16).map(|_| a.below(1 << 30)).collect();
        let vb: Vec<_> = (0..16).map(|_| b.below(1 << 30)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut rng = DetRng::seeded(3);
        let got = rng.sample_indices(50, 20);
        assert_eq!(got.len(), 20);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(got.iter().all(|&i| i < 50));
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(100, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
        let mut rng = DetRng::seeded(11);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > 2_000, "rank 0 should dominate, got {}", counts[0]);
    }

    #[test]
    fn zipf_cdf_terminates_at_one() {
        let z = Zipf::new(10, 2.5);
        let total: f64 = (0..10).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::seeded(5);
        let mut v: Vec<usize> = (0..32).collect();
        rng.shuffle(&mut v);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..32).collect::<Vec<_>>());
    }
}
