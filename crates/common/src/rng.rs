//! Deterministic random number generation.
//!
//! Every stochastic component in the workspace (workload generators, sampling
//! baselines, property tests) draws from a [`DetRng`] seeded explicitly, so
//! experiments are reproducible run-to-run. The module also provides a
//! [`Zipf`] sampler used by the DSB- and Real-M-shaped workload generators to
//! produce the skewed value and template-frequency distributions the paper
//! attributes to those workloads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG used across the workspace.
///
/// A thin wrapper over [`StdRng`] that can only be constructed from an
/// explicit seed, making accidental use of entropy-based seeding impossible.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        Self { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derives an independent child generator; used to give each query
    /// template its own stream so that adding templates does not perturb
    /// the bindings of existing ones.
    pub fn fork(&mut self, salt: u64) -> Self {
        let s = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::seeded(s)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        self.inner.gen_range(0..bound)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn range_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (floyd's algorithm would be
    /// fancier; a partial shuffle is simple and `n` is always small here).
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.inner.gen_range(i..n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

/// Zipfian sampler over ranks `0..n` with exponent `theta`.
///
/// Uses the cumulative-probability inversion method with a precomputed CDF;
/// `theta = 0` degenerates to the uniform distribution and larger values
/// concentrate probability mass on low ranks.
///
/// ```
/// use isum_common::rng::{DetRng, Zipf};
/// let z = Zipf::new(100, 1.0);
/// let mut rng = DetRng::seeded(1);
/// assert!(z.pmf(0) > z.pmf(50));
/// let r = z.sample(&mut rng);
/// assert!(r < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with skew `theta >= 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative/not finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        assert!(theta >= 0.0 && theta.is_finite(), "bad Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the tail.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the domain has a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most likely.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.unit();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("finite")) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i,
        }
    }

    /// Probability mass of a rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seeded(7);
        let mut b = DetRng::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn forked_streams_diverge() {
        let mut root = DetRng::seeded(7);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let va: Vec<_> = (0..16).map(|_| a.below(1 << 30)).collect();
        let vb: Vec<_> = (0..16).map(|_| b.below(1 << 30)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut rng = DetRng::seeded(3);
        let got = rng.sample_indices(50, 20);
        assert_eq!(got.len(), 20);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(got.iter().all(|&i| i < 50));
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(100, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
        let mut rng = DetRng::seeded(11);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > 2_000, "rank 0 should dominate, got {}", counts[0]);
    }

    #[test]
    fn zipf_cdf_terminates_at_one() {
        let z = Zipf::new(10, 2.5);
        let total: f64 = (0..10).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::seeded(5);
        let mut v: Vec<usize> = (0..32).collect();
        rng.shuffle(&mut v);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..32).collect::<Vec<_>>());
    }
}
