//! Per-request pipeline timeline: a fixed stage vocabulary and a
//! lock-free [`StageClock`] that attributes a request's wall-clock time
//! to named pipeline stages (DESIGN.md §16).
//!
//! The clock is strictly *annotation*: stamps never feed any data-path
//! decision, so enabling attribution cannot perturb results — the same
//! contract the tracing layer holds. Stamping is a handful of relaxed
//! atomic operations with saturating arithmetic throughout, so arbitrary
//! interleavings (including cross-thread misuse) can skew attribution
//! but never panic, wrap, or produce a negative duration.
//!
//! Two accounting primitives compose:
//!
//! * [`StageClock::stamp`] advances a single *mark* and charges the time
//!   since the previous mark to the named stage — consecutive stamps
//!   partition elapsed wall-clock time, so the stage sum equals the
//!   origin-to-last-stamp span.
//! * [`StageClock::shift`] re-attributes time already charged to one
//!   stage onto a sub-stage (the WAL append stamp covers the fsync; the
//!   measured fsync duration is then carved out into its own stage).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The fixed pipeline stages, in wire order. The enum is closed on
/// purpose: a bounded vocabulary keeps the Prometheus label space and
/// the `Server-Timing` header schema stable across versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Stage {
    /// Reading the request head and body off the socket.
    Recv = 0,
    /// Building the parsed request (query decode, header scan).
    Parse = 1,
    /// Waiting in an ingest queue for a sequencer to pick the job up.
    Queue = 2,
    /// Sequencer admission: ordering checks, fault rolls, batch split.
    Sequence = 3,
    /// Appending the WAL record (fsync excluded — see [`Stage::Fsync`]).
    WalAppend = 4,
    /// The WAL record's fsync, carved out of the append span.
    Fsync = 5,
    /// Applying statements to the engine (or rendering a summary).
    Apply = 6,
    /// A compaction (snapshot + WAL truncation) this request triggered.
    Checkpoint = 7,
    /// From the last pipeline stage to the response write.
    Respond = 8,
}

/// Every stage, in the order they appear on the wire.
pub const STAGES: [Stage; 9] = [
    Stage::Recv,
    Stage::Parse,
    Stage::Queue,
    Stage::Sequence,
    Stage::WalAppend,
    Stage::Fsync,
    Stage::Apply,
    Stage::Checkpoint,
    Stage::Respond,
];

impl Stage {
    /// The wire name (`Server-Timing` entry, Prometheus `stage` label).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Recv => "recv",
            Stage::Parse => "parse",
            Stage::Queue => "queue",
            Stage::Sequence => "sequence",
            Stage::WalAppend => "wal_append",
            Stage::Fsync => "fsync",
            Stage::Apply => "apply",
            Stage::Checkpoint => "checkpoint",
            Stage::Respond => "respond",
        }
    }

    /// The stage a wire name denotes, if any (the loadgen correlator
    /// maps `Server-Timing` entries back through this).
    pub fn from_name(name: &str) -> Option<Stage> {
        STAGES.iter().copied().find(|s| s.as_str() == name)
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A per-request stage timeline. Cheap to create (one `Instant`), cheap
/// to stamp (relaxed atomics), and safely shareable across the threads a
/// request passes through (`Arc<StageClock>` rides in the queue job).
#[derive(Debug)]
pub struct StageClock {
    origin: Instant,
    /// Nanoseconds-from-origin of the most recent stamp.
    mark_ns: AtomicU64,
    /// Bitmask of stages that have recorded anything — distinguishing a
    /// zero-duration stage from an absent one.
    seen: AtomicU32,
    ns: [AtomicU64; STAGES.len()],
}

impl StageClock {
    /// A fresh clock; the origin (and first mark) is "now".
    pub fn new() -> StageClock {
        StageClock {
            origin: Instant::now(),
            mark_ns: AtomicU64::new(0),
            seen: AtomicU32::new(0),
            ns: Default::default(),
        }
    }

    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Charges the time since the previous mark to `stage` and advances
    /// the mark — consecutive stamps partition elapsed wall-clock time.
    /// Returns the duration charged.
    pub fn stamp(&self, stage: Stage) -> Duration {
        let now = self.now_ns();
        let prev = self.mark_ns.swap(now, Ordering::Relaxed);
        let delta = now.saturating_sub(prev);
        self.ns[stage as usize].fetch_add(delta, Ordering::Relaxed);
        self.seen.fetch_or(1 << stage as usize, Ordering::Relaxed);
        Duration::from_nanos(delta)
    }

    /// Charges an externally measured duration to `stage` without
    /// touching the mark (for work timed on another thread).
    pub fn record(&self, stage: Stage, d: Duration) {
        self.ns[stage as usize].fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        self.seen.fetch_or(1 << stage as usize, Ordering::Relaxed);
    }

    /// Re-attributes up to `d` of the time charged to `from` onto `to`
    /// (never more than `from` currently holds, so the stage sum is
    /// preserved exactly).
    pub fn shift(&self, from: Stage, to: Stage, d: Duration) {
        if from == to {
            return;
        }
        let want = d.as_nanos() as u64;
        let cell = &self.ns[from as usize];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let moved = cur.min(want);
            match cell.compare_exchange_weak(cur, cur - moved, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.ns[to as usize].fetch_add(moved, Ordering::Relaxed);
                    self.seen.fetch_or(1 << to as usize, Ordering::Relaxed);
                    return;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// The duration charged to `stage`, or `None` if it never recorded.
    pub fn get(&self, stage: Stage) -> Option<Duration> {
        if self.seen.load(Ordering::Relaxed) & (1 << stage as usize) == 0 {
            return None;
        }
        Some(Duration::from_nanos(self.ns[stage as usize].load(Ordering::Relaxed)))
    }

    /// The sum of every recorded stage — by construction the value the
    /// `total` entry of [`StageClock::server_timing`] reports, so
    /// per-stage attribution always sums to the reported total.
    pub fn total(&self) -> Duration {
        let seen = self.seen.load(Ordering::Relaxed);
        let ns: u64 = (0..STAGES.len())
            .filter(|i| seen & (1 << i) != 0)
            .map(|i| self.ns[i].load(Ordering::Relaxed))
            .sum();
        Duration::from_nanos(ns)
    }

    /// Renders the `Server-Timing` header value: one `name;dur=<ms>`
    /// entry per recorded stage in pipeline order, then `total;dur=`
    /// (the exact stage sum). Durations are milliseconds with
    /// microsecond precision.
    pub fn server_timing(&self) -> String {
        let mut out = String::new();
        let mut total_ns = 0u64;
        let seen = self.seen.load(Ordering::Relaxed);
        for stage in STAGES {
            if seen & (1 << stage as usize) == 0 {
                continue;
            }
            let ns = self.ns[stage as usize].load(Ordering::Relaxed);
            total_ns += ns;
            if !out.is_empty() {
                out.push_str(", ");
            }
            out.push_str(stage.as_str());
            out.push_str(&format!(";dur={:.3}", ns as f64 / 1e6));
        }
        if !out.is_empty() {
            out.push_str(", ");
        }
        out.push_str(&format!("total;dur={:.3}", total_ns as f64 / 1e6));
        out
    }
}

impl Default for StageClock {
    fn default() -> Self {
        StageClock::new()
    }
}

/// Parses a `Server-Timing` header value into `(name, milliseconds)`
/// pairs, in header order. Entries without a parseable `dur=` parameter
/// are skipped — the parser is the lenient half of
/// [`StageClock::server_timing`] and tolerates foreign entries.
pub fn parse_server_timing(value: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for entry in value.split(',') {
        let mut parts = entry.trim().split(';');
        let Some(name) = parts.next().map(str::trim) else { continue };
        if name.is_empty() {
            continue;
        }
        let dur = parts
            .filter_map(|p| p.trim().strip_prefix("dur="))
            .find_map(|v| v.trim().parse::<f64>().ok());
        if let Some(ms) = dur {
            if ms.is_finite() && ms >= 0.0 {
                out.push((name.to_string(), ms));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_partition_elapsed_time() {
        let clock = StageClock::new();
        let a = clock.stamp(Stage::Recv);
        std::thread::sleep(Duration::from_millis(2));
        let b = clock.stamp(Stage::Parse);
        assert!(b >= Duration::from_millis(2), "stamp charges the inter-mark gap");
        assert_eq!(clock.get(Stage::Recv), Some(a));
        assert_eq!(clock.get(Stage::Parse), Some(b));
        assert_eq!(clock.total(), a + b, "total is the stage sum");
    }

    #[test]
    fn double_stamp_accumulates() {
        let clock = StageClock::new();
        let first = clock.stamp(Stage::Apply);
        let second = clock.stamp(Stage::Apply);
        assert_eq!(clock.get(Stage::Apply), Some(first + second));
    }

    #[test]
    fn missing_stage_is_absent_not_zero() {
        let clock = StageClock::new();
        clock.stamp(Stage::Recv);
        assert_eq!(clock.get(Stage::Fsync), None, "never-stamped stage reads as absent");
        assert!(!clock.server_timing().contains("fsync"), "absent stages stay off the wire");
        // A genuinely zero-duration record is present, not absent.
        clock.record(Stage::Fsync, Duration::ZERO);
        assert_eq!(clock.get(Stage::Fsync), Some(Duration::ZERO));
        assert!(clock.server_timing().contains("fsync;dur=0.000"));
    }

    #[test]
    fn shift_carves_a_substage_and_preserves_the_sum() {
        let clock = StageClock::new();
        clock.record(Stage::WalAppend, Duration::from_millis(10));
        clock.shift(Stage::WalAppend, Stage::Fsync, Duration::from_millis(4));
        assert_eq!(clock.get(Stage::WalAppend), Some(Duration::from_millis(6)));
        assert_eq!(clock.get(Stage::Fsync), Some(Duration::from_millis(4)));
        assert_eq!(clock.total(), Duration::from_millis(10), "shift preserves the total");
        // Shifting more than the source holds moves only what is there.
        clock.shift(Stage::WalAppend, Stage::Fsync, Duration::from_secs(1));
        assert_eq!(clock.get(Stage::WalAppend), Some(Duration::ZERO));
        assert_eq!(clock.get(Stage::Fsync), Some(Duration::from_millis(10)));
        assert_eq!(clock.total(), Duration::from_millis(10));
    }

    #[test]
    fn server_timing_round_trips_through_the_parser() {
        let clock = StageClock::new();
        clock.record(Stage::Queue, Duration::from_micros(1500));
        clock.record(Stage::Apply, Duration::from_micros(250));
        clock.stamp(Stage::Respond);
        let header = clock.server_timing();
        let parsed = parse_server_timing(&header);
        assert_eq!(parsed.last().map(|(n, _)| n.as_str()), Some("total"));
        let total = parsed.last().map(|(_, ms)| *ms).unwrap();
        let sum: f64 = parsed.iter().filter(|(n, _)| n != "total").map(|(_, ms)| ms).sum();
        assert!((sum - total).abs() < 1e-6, "stages sum to the total: {header}");
        assert!(parsed.iter().any(|(n, ms)| n == "queue" && (*ms - 1.5).abs() < 1e-9), "{header}");
        // Stage order on the wire follows the pipeline order.
        let names: Vec<&str> = parsed.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["queue", "apply", "respond", "total"]);
    }

    #[test]
    fn parser_tolerates_foreign_and_malformed_entries() {
        let parsed = parse_server_timing("cdn;dur=abc, edge;desc=\"x\";dur=2.5, ;dur=1, db");
        assert_eq!(parsed, vec![("edge".to_string(), 2.5)]);
        assert!(parse_server_timing("").is_empty());
    }

    #[test]
    fn stage_names_round_trip() {
        for stage in STAGES {
            assert_eq!(Stage::from_name(stage.as_str()), Some(stage));
        }
        assert_eq!(Stage::from_name("nonsense"), None);
    }
}
