//! Statistical helpers used by featurization and the evaluation harness.
//!
//! The paper reports Pearson correlations between estimated and actual
//! improvements (Figs 5–8, Table 3); [`pearson`] and [`spearman`] implement
//! those measurements. [`min_max_normalize`] implements the feature-weight
//! normalization of Sec 4.2.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; `0.0` for fewer than two points.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `0.0` when either sample is degenerate (length < 2 or zero
/// variance), which is the convention the harness wants when an estimator
/// produces a constant signal.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson over mismatched lengths");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= f64::EPSILON || vy <= f64::EPSILON {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Spearman rank correlation (Pearson over average ranks, handling ties).
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "spearman over mismatched lengths");
    pearson(&ranks(xs), &ranks(ys))
}

/// Average ranks (1-based) with ties sharing the mean of their positions.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite values"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = avg;
        }
        i = j + 1;
    }
    out
}

/// Min–max normalization per Sec 4.2 of the paper:
/// `w̄ = w / (max(w) - min(w))`.
///
/// When all weights are equal (range zero) the paper's formula divides by
/// zero; we fall back to dividing by the (positive) maximum so every weight
/// maps to `1.0`, and to all-zeros when every weight is zero.
pub fn min_max_normalize(ws: &[f64]) -> Vec<f64> {
    if ws.is_empty() {
        return Vec::new();
    }
    let max = ws.iter().cloned().fold(f64::MIN, f64::max);
    let min = ws.iter().cloned().fold(f64::MAX, f64::min);
    let range = max - min;
    let denom = if range > f64::EPSILON {
        range
    } else if max > f64::EPSILON {
        max
    } else {
        return vec![0.0; ws.len()];
    };
    ws.iter().map(|w| w / denom).collect()
}

/// Percentile (nearest-rank) of a sample; `p` in `\[0, 100\]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank]
}

/// Geometric mean of strictly positive samples; `0.0` if empty.
pub fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let yneg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &yneg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_is_zero() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[2.0, 3.0, 4.0]), 0.0);
    }

    #[test]
    fn spearman_is_rank_based() {
        // Monotone but non-linear: spearman = 1, pearson < 1.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 4.0, 9.0, 16.0, 1000.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y) < 1.0);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn min_max_matches_paper_formula() {
        // w / (max - min)
        let out = min_max_normalize(&[1.0, 3.0, 5.0]);
        assert_eq!(out, vec![0.25, 0.75, 1.25]);
    }

    #[test]
    fn min_max_handles_constant_and_zero() {
        assert_eq!(min_max_normalize(&[2.0, 2.0]), vec![1.0, 1.0]);
        assert_eq!(min_max_normalize(&[0.0, 0.0]), vec![0.0, 0.0]);
        assert!(min_max_normalize(&[]).is_empty());
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
    }

    #[test]
    fn geo_mean_basic() {
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geo_mean(&[]), 0.0);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }
}
