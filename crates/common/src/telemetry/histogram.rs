//! Lock-free latency histograms with monotonic power-of-two buckets.
//!
//! Bucket `i` covers `[2^i, 2^(i+1))` nanoseconds (bucket 0 additionally
//! absorbs zero), so 64 buckets span the full `u64` range with bounded
//! relative error: any reported quantile is within 2× of the true value,
//! which is the precision regime latency reporting needs. Recording is a
//! single relaxed `fetch_add` per bucket plus sum/count/min/max updates —
//! no locks, no allocation.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 64;

/// A latency histogram over nanosecond values.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Index of the bucket covering `v`: `floor(log2(v))`, with 0 mapped to
/// bucket 0.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i`.
pub(crate) fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// Exclusive upper bound of bucket `i` (saturating at `u64::MAX`).
pub(crate) fn bucket_hi(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (nanoseconds by convention).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`].
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Clears all state.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy with quantile readout.
    pub fn snap(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        // Re-derive the count from the bucket copy so quantiles are
        // internally consistent even if writers race the snapshot.
        let count: u64 = buckets.iter().sum();
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Frozen histogram state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Recorded value count.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket counts; bucket `i` covers `[2^i, 2^(i+1))` ns.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate for `q` in `[0, 1]`.
    ///
    /// Walks the cumulative bucket counts to the bucket containing the
    /// q-th ranked value and interpolates linearly inside it, clamped to
    /// the observed `[min, max]` so estimates never leave the recorded
    /// range. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank in [1, count] of the target value.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = bucket_lo(i);
                let hi = bucket_hi(i);
                // Position of the rank inside this bucket, in (0, 1].
                let within = (rank - seen) as f64 / c as f64;
                let est = lo as f64 + within * (hi - lo) as f64;
                return (est as u64).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn records_track_count_sum_min_max() {
        let h = Histogram::new();
        for v in [5u64, 10, 100, 1000] {
            h.record(v);
        }
        let s = h.snap();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1115);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 278.75).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snap();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min, 0);
    }

    #[test]
    fn quantiles_stay_within_observed_range() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snap();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let est = s.quantile(q);
            assert!((1..=1000).contains(&est), "q={q} est={est}");
        }
        // Median of 1..=1000 is ~500; log2 buckets bound error to 2x.
        let p50 = s.quantile(0.5);
        assert!((250..=1000).contains(&p50), "p50={p50}");
    }

    #[test]
    fn quantiles_at_bucket_boundaries_are_exact() {
        // Every value sits exactly on a bucket lower bound (a power of
        // two). The min/max clamp must make the degenerate cases exact
        // rather than smeared across the bucket width.
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(1024);
        }
        let s = h.snap();
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 1024, "single-valued histogram, q={q}");
        }

        // Two boundary values one bucket apart: every estimate must stay
        // inside the observed [min, max] (the clamp) and within the
        // documented 2x of its true value.
        let h = Histogram::new();
        h.record(64);
        h.record(128);
        let s = h.snap();
        for q in [0.0, 0.5, 1.0] {
            let est = s.quantile(q);
            assert!((64..=128).contains(&est), "q={q} est={est}");
        }
        assert_eq!(s.quantile(1.0), 128, "max clamps the top");

        // Rank arithmetic at the boundary between buckets: 10 values in
        // bucket 5 (32..64) and 10 in bucket 6 (64..128). q=0.5 is rank
        // 10, the last value of the low bucket — interpolation may reach
        // the bucket's exclusive hi (true value 32, ≤2x error) but never
        // past the observed max, and ranks just past the boundary must
        // land in the high bucket.
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(32);
            h.record(64);
        }
        let s = h.snap();
        let p50 = s.quantile(0.5);
        assert!((32..=64).contains(&p50), "p50 within 2x of 32, got {p50}");
        assert!(s.quantile(0.51) >= 64, "rank 11 falls in bucket 6");
        assert_eq!(s.quantile(1.0), 64, "max clamps the top");
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(7);
        h.reset();
        let s = h.snap();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0);
        assert!(s.buckets.iter().all(|&b| b == 0));
    }
}
