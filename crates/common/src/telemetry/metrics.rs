//! Thread-safe scalar metrics: monotonic counters and last-value gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// Counters are plain relaxed atomics: increments from any thread, reads
/// may momentarily lag concurrent writers but never lose updates (verified
/// by the concurrent-increment test in the `telemetry` test suite).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Self { value: AtomicU64::new(0) }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (snapshot epochs; not for hot paths).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value gauge (for example the what-if cache's entry count).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Self { value: AtomicI64::new(0) }
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_exact_under_concurrent_increments() {
        use std::sync::Arc;
        let c = Arc::new(Counter::new());
        let threads = 8u64;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        // Mix inc() and add() so both entry points race.
                        if (t + i) % 2 == 0 {
                            c.inc();
                        } else {
                            c.add(1);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("incrementer thread");
        }
        assert_eq!(c.get(), threads * per_thread, "no lost updates");
    }

    #[test]
    fn gauge_overwrites() {
        let g = Gauge::new();
        g.set(7);
        g.set(-3);
        assert_eq!(g.get(), -3);
        g.reset();
        assert_eq!(g.get(), 0);
    }
}
