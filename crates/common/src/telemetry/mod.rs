//! Workload-compression telemetry: counters, gauges, latency histograms,
//! hierarchical spans, and a JSON-serializable snapshot registry.
//!
//! ISUM's claims are efficiency claims — the paper's Fig 2 attributes
//! 70–80% of tuning time to optimizer calls, Sec 7 reports per-phase
//! compression-time breakdowns, and Figs 13–14 plot scalability — so every
//! layer of this reproduction reports *where time and optimizer calls go*
//! through this module. The design constraints, in order:
//!
//! 1. **Zero new dependencies.** Everything here is `std` only; snapshots
//!    serialize through [`crate::json`].
//! 2. **Cheap when disabled.** The global [`enabled`] flag is a single
//!    relaxed atomic load; every instrumentation site branches on it
//!    before touching the registry, allocating, or reading the clock. The
//!    disabled hot path is branch-only (verified by an allocation-counting
//!    test in `tests/disabled_path.rs`).
//! 3. **Lock-free when enabled, on the hot path.** Counters, gauges, and
//!    histogram buckets are plain atomics. The registry's mutex is taken
//!    only to intern a metric name the first time a call site sees it;
//!    call sites cache the returned `Arc` in a per-site `OnceLock` (see
//!    the [`count!`](crate::count) macro), so steady-state increments
//!    never lock.
//!
//! # Naming scheme
//!
//! Metric names are dot-separated `layer.component.metric` (for example
//! `optimizer.whatif.calls`); span paths are slash-separated hierarchies
//! built from the nesting at runtime (for example
//! `compress/isum/select`). See README.md § Observability for the full
//! vocabulary.
//!
//! # Example
//!
//! ```
//! use isum_common::telemetry;
//!
//! telemetry::set_enabled(true);
//! telemetry::reset();
//! {
//!     let _outer = telemetry::span("compress");
//!     let _inner = telemetry::span("select");
//!     telemetry::counter("core.similarity.computations").add(3);
//! }
//! let snap = telemetry::snapshot();
//! assert_eq!(snap.counter("core.similarity.computations"), Some(3));
//! assert!(snap.span_total_ns("compress/select").unwrap() > 0);
//! telemetry::set_enabled(false);
//! ```

mod histogram;
mod metrics;
mod prometheus;
mod registry;
mod snapshot;
mod span;

pub use histogram::{Histogram, HistogramSnapshot};
pub use metrics::{Counter, Gauge};
pub use prometheus::{escape_label_value, labeled_sample};
pub use registry::{counter, gauge, histogram, registry, span_histogram, Registry};
pub use snapshot::{snapshot, Snapshot, SpanStat};
pub use span::{span, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when telemetry collection is on. A single relaxed load — this is
/// the only cost instrumentation sites pay when telemetry is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off. Off is the default; binaries turn it on in
/// response to `--stats` / `ISUM_TELEMETRY=1`.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enables telemetry when the `ISUM_TELEMETRY` environment variable is set
/// to anything other than `0` / `false` / empty. Returns the resulting
/// enabled state.
pub fn init_from_env() -> bool {
    if let Ok(v) = std::env::var("ISUM_TELEMETRY") {
        if !v.is_empty() && v != "0" && v != "false" {
            set_enabled(true);
        }
    }
    enabled()
}

/// Clears all recorded metrics and span statistics (the enabled flag is
/// left untouched). Used between experiment runs so each run's report
/// reflects only its own work.
pub fn reset() {
    registry().reset();
}

/// Increments a named global counter through a per-call-site cached handle;
/// free when telemetry is disabled (one relaxed load + branch).
///
/// ```
/// isum_common::count!("doc.example.hits");
/// isum_common::count!("doc.example.bytes", 128);
/// ```
#[macro_export]
macro_rules! count {
    ($name:expr) => {
        $crate::count!($name, 1u64)
    };
    ($name:expr, $n:expr) => {{
        if $crate::telemetry::enabled() {
            static SITE: std::sync::OnceLock<std::sync::Arc<$crate::telemetry::Counter>> =
                std::sync::OnceLock::new();
            SITE.get_or_init(|| $crate::telemetry::counter($name)).add($n as u64);
        }
    }};
}

/// Records a value into a named global histogram through a per-call-site
/// cached handle; free when telemetry is disabled. Unit-agnostic — use
/// [`record_ns!`](crate::record_ns) (and a `_ns` name suffix) for
/// durations.
#[macro_export]
macro_rules! record {
    ($name:expr, $value:expr) => {{
        if $crate::telemetry::enabled() {
            static SITE: std::sync::OnceLock<std::sync::Arc<$crate::telemetry::Histogram>> =
                std::sync::OnceLock::new();
            SITE.get_or_init(|| $crate::telemetry::histogram($name)).record($value as u64);
        }
    }};
}

/// Records a duration (in nanoseconds) into a named global histogram;
/// free when telemetry is disabled. Name the histogram with a `_ns`
/// suffix so readers know the unit.
#[macro_export]
macro_rules! record_ns {
    ($name:expr, $ns:expr) => {
        $crate::record!($name, $ns)
    };
}

/// Serializes tests that toggle the global enabled flag (one lock shared
/// by every test module in this crate).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_flag_toggles() {
        let _g = test_lock();
        let before = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(before);
    }
}
