//! Prometheus text exposition (format version 0.0.4) of a telemetry
//! [`Snapshot`], backing the daemon's `GET /metrics`.
//!
//! Internal dot-separated metric names (`optimizer.whatif.calls`) and
//! slash-separated span paths (`compress/isum/select`) are mapped onto the
//! Prometheus grammar by replacing every character outside `[a-zA-Z0-9_]`
//! with `_` and prefixing `isum_` (spans get `isum_span_` so the two
//! namespaces cannot collide). Histograms and spans render as cumulative
//! `_bucket{le="..."}` series using the registry's power-of-two bucket
//! bounds — quantiles read off them inherit the same documented 2×
//! resolution — plus the exact `_sum` and `_count`.

use std::fmt::Write as _;

use super::histogram::{bucket_hi, HistogramSnapshot};
use super::snapshot::Snapshot;

/// Maps an internal metric name or span path onto a valid Prometheus
/// metric name.
fn sanitize(prefix: &str, name: &str) -> String {
    let mut out = String::with_capacity(prefix.len() + name.len());
    out.push_str(prefix);
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' });
    }
    out
}

/// Escapes HELP text per the exposition format: `\` becomes `\\` and a
/// line feed becomes `\n` — anything else would truncate the comment line
/// or be misread as an escape by the scraper.
fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a label *value* per the exposition format: inside the double
/// quotes of `{label="value"}`, `\` becomes `\\`, `"` becomes `\"`, and a
/// line feed becomes `\n`. Label values (unlike metric names) may carry
/// arbitrary text — the daemon puts tenant names here — so an unescaped
/// quote or newline would let one tenant's name break the line-oriented
/// exposition for every scraper.
pub fn escape_label_value(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders one labeled sample line, `name{label="escaped"} value`, with
/// every label value escaped via [`escape_label_value`]. The metric name
/// and label names are expected to already be valid Prometheus
/// identifiers (the caller picks them; they are not attacker-supplied).
pub fn labeled_sample(
    name: &str,
    labels: &[(&str, &str)],
    value: impl std::fmt::Display,
) -> String {
    let mut out = String::new();
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
        }
        out.push('}');
    }
    let _ = writeln!(out, " {value}");
    out
}

/// Appends one histogram family: HELP/TYPE, cumulative buckets (only the
/// bounds that hold samples, plus the mandatory `+Inf`), `_sum`, `_count`.
fn push_histogram(out: &mut String, name: &str, help: &str, h: &HistogramSnapshot) {
    let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cumulative += c;
        // Bucket 63's upper bound is u64::MAX; +Inf already covers it.
        if i < 63 {
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", bucket_hi(i));
        }
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

impl Snapshot {
    /// Renders the snapshot in the Prometheus text exposition format.
    /// Every registered metric is emitted, including zero-valued ones —
    /// scrapers rely on series existing before the first increment.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let pname = sanitize("isum_", name);
            let help = escape_help(&format!("ISUM counter `{name}`."));
            let _ = writeln!(out, "# HELP {pname} {help}");
            let _ = writeln!(out, "# TYPE {pname} counter");
            let _ = writeln!(out, "{pname} {value}");
        }
        for (name, value) in &self.gauges {
            let pname = sanitize("isum_", name);
            let help = escape_help(&format!("ISUM gauge `{name}`."));
            let _ = writeln!(out, "# HELP {pname} {help}");
            let _ = writeln!(out, "# TYPE {pname} gauge");
            let _ = writeln!(out, "{pname} {value}");
        }
        for (name, hist) in &self.histograms {
            let pname = sanitize("isum_", name);
            let unit = if name.ends_with("_ns") { " (nanoseconds)" } else { "" };
            push_histogram(&mut out, &pname, &format!("ISUM histogram `{name}`{unit}."), hist);
        }
        for span in &self.spans {
            let pname = sanitize("isum_span_", &span.path);
            push_histogram(
                &mut out,
                &pname,
                &format!("ISUM span `{}` duration (nanoseconds).", span.path),
                &span.hist,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::snapshot::SpanStat;
    use super::super::Histogram;
    use super::*;

    fn snap_of(h: &Histogram) -> HistogramSnapshot {
        h.snap()
    }

    #[test]
    fn sanitizes_names_into_prometheus_grammar() {
        assert_eq!(sanitize("isum_", "optimizer.whatif.calls"), "isum_optimizer_whatif_calls");
        assert_eq!(
            sanitize("isum_span_", "compress/isum/select"),
            "isum_span_compress_isum_select"
        );
    }

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let h = Histogram::new();
        h.record(5);
        h.record(100);
        let snap = Snapshot {
            counters: vec![("server.requests".into(), 42)],
            gauges: vec![("server.queue.depth".into(), -1)],
            histograms: vec![("server.ingest_ns".into(), snap_of(&h))],
            spans: vec![SpanStat { path: "compress/select".into(), hist: snap_of(&h) }],
        };
        let text = snap.render_prometheus();
        assert!(text.contains("# TYPE isum_server_requests counter\nisum_server_requests 42\n"));
        assert!(text.contains("# TYPE isum_server_queue_depth gauge\nisum_server_queue_depth -1\n"));
        assert!(text.contains("# TYPE isum_server_ingest_ns histogram"));
        assert!(text.contains("isum_server_ingest_ns_sum 105"));
        assert!(text.contains("isum_server_ingest_ns_count 2"));
        assert!(text.contains("isum_server_ingest_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("# TYPE isum_span_compress_select histogram"));
        assert!(text.contains("isum_span_compress_select_count 2"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_capped_by_inf() {
        let h = Histogram::new();
        for v in [1u64, 1, 6, 6, 6, 1000] {
            h.record(v);
        }
        let snap = Snapshot { histograms: vec![("m".into(), snap_of(&h))], ..Snapshot::default() };
        let text = snap.render_prometheus();
        // 1,1 land in bucket 0 (le=2); 6,6,6 in bucket 2 (le=8); 1000 in
        // bucket 9 (le=1024). Cumulative counts must be monotone.
        assert!(text.contains("isum_m_bucket{le=\"2\"} 2\n"), "{text}");
        assert!(text.contains("isum_m_bucket{le=\"8\"} 5\n"), "{text}");
        assert!(text.contains("isum_m_bucket{le=\"1024\"} 6\n"), "{text}");
        assert!(text.contains("isum_m_bucket{le=\"+Inf\"} 6\n"), "{text}");
        assert!(text.contains("isum_m_sum 1020\n"), "{text}");
    }

    #[test]
    fn empty_snapshot_renders_empty_exposition() {
        assert!(Snapshot::default().render_prometheus().is_empty());
        // The drift family in particular is registered lazily: a registry
        // that never saw a drift sample exposes no isum_drift_* series at
        // all, rather than zero-valued placeholders.
        assert!(!Snapshot::default().render_prometheus().contains("isum_drift"));
    }

    #[test]
    fn negative_gauges_render_verbatim() {
        let snap = Snapshot {
            gauges: vec![("drift.score_ppm".into(), -1), ("lag".into(), i64::MIN)],
            ..Snapshot::default()
        };
        let text = snap.render_prometheus();
        assert!(text.contains("isum_drift_score_ppm -1\n"), "{text}");
        assert!(text.contains(&format!("isum_lag {}\n", i64::MIN)), "{text}");
    }

    #[test]
    fn help_text_escapes_backslash_and_newline() {
        assert_eq!(escape_help(r"a\b"), r"a\\b");
        assert_eq!(escape_help("a\nb"), "a\\nb");
        assert_eq!(escape_help("plain"), "plain");
        // A hostile internal name (sanitized in the metric name, raw in
        // the HELP text) must not break the line-oriented exposition.
        let snap = Snapshot {
            counters: vec![("evil\\name\nwith.newline".into(), 3)],
            ..Snapshot::default()
        };
        let text = snap.render_prometheus();
        assert!(
            text.contains(
                "# HELP isum_evil_name_with_newline ISUM counter `evil\\\\name\\nwith.newline`.\n"
            ),
            "{text}"
        );
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "help newline leaked into exposition: {line:?}"
            );
        }
    }

    #[test]
    fn label_values_escape_backslash_quote_and_newline() {
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(escape_label_value("plain-tenant_1"), "plain-tenant_1");
        // All three at once, in order.
        assert_eq!(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
    }

    #[test]
    fn labeled_samples_render_escaped_single_line() {
        assert_eq!(
            labeled_sample("isum_shard_observed", &[("tenant", "acme")], 7),
            "isum_shard_observed{tenant=\"acme\"} 7\n"
        );
        assert_eq!(labeled_sample("isum_up", &[], 1), "isum_up 1\n");
        assert_eq!(labeled_sample("m", &[("a", "x"), ("b", "y")], -3), "m{a=\"x\",b=\"y\"} -3\n");
        // A hostile tenant name (quote + newline + backslash) must stay on
        // one line and keep the quoting intact.
        let line = labeled_sample("isum_shard_observed", &[("tenant", "ev\"il\\x")], 1);
        assert_eq!(line, "isum_shard_observed{tenant=\"ev\\\"il\\\\x\"} 1\n");
        assert_eq!(line.matches('\n').count(), 1, "exactly the terminating newline");
    }

    #[test]
    fn drift_family_renders_gauges_histogram_and_counter() {
        let h = Histogram::new();
        h.record(120_000); // one batch score sample, in ppm
        let snap = Snapshot {
            counters: vec![("drift.alerts".into(), 1)],
            gauges: vec![("drift.score_ppm".into(), 120_000), ("drift.window_len".into(), 256)],
            histograms: vec![("drift.batch_score_ppm".into(), snap_of(&h))],
            ..Snapshot::default()
        };
        let text = snap.render_prometheus();
        assert!(text.contains("# TYPE isum_drift_alerts counter\nisum_drift_alerts 1\n"));
        assert!(text.contains("# TYPE isum_drift_score_ppm gauge\nisum_drift_score_ppm 120000\n"));
        assert!(text.contains("# TYPE isum_drift_window_len gauge\nisum_drift_window_len 256\n"));
        assert!(text.contains("# TYPE isum_drift_batch_score_ppm histogram"));
        assert!(text.contains("isum_drift_batch_score_ppm_count 1\n"));
        assert!(text.contains("isum_drift_batch_score_ppm_sum 120000\n"));
        // Family names are distinct, so no HELP/TYPE line is repeated.
        let mut type_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE")).collect();
        let before = type_lines.len();
        type_lines.dedup();
        assert_eq!(before, type_lines.len(), "duplicate TYPE lines:\n{text}");
    }

    #[test]
    fn every_line_is_help_type_or_sample() {
        let h = Histogram::new();
        h.record(7);
        let snap = Snapshot {
            counters: vec![("a.b".into(), 1)],
            histograms: vec![("c.d_ns".into(), snap_of(&h))],
            ..Snapshot::default()
        };
        for line in snap.render_prometheus().lines() {
            if let Some(rest) = line.strip_prefix("# ") {
                assert!(
                    rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                    "bad comment line: {line}"
                );
            } else {
                let (series, value) = line.rsplit_once(' ').expect("sample has value");
                assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
                let name = series.split('{').next().unwrap();
                assert!(
                    name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                    "bad metric name: {line}"
                );
            }
        }
    }
}
