//! The global metric registry: name → metric interning.
//!
//! The registry mutex is taken only when a call site interns a name for
//! the first time (or when a snapshot/reset walks the maps); steady-state
//! increments go straight to the interned atomics.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use super::histogram::Histogram;
use super::metrics::{Counter, Gauge};

/// Name-keyed metric storage. `BTreeMap` keeps snapshot output sorted and
/// deterministic without a post-pass.
#[derive(Debug, Default)]
pub(crate) struct Maps {
    pub counters: BTreeMap<String, Arc<Counter>>,
    pub gauges: BTreeMap<String, Arc<Gauge>>,
    pub histograms: BTreeMap<String, Arc<Histogram>>,
    /// Span-path → duration histogram, kept apart from plain histograms so
    /// reports can render the phase tree separately.
    pub spans: BTreeMap<String, Arc<Histogram>>,
}

/// The process-wide metric registry.
#[derive(Debug, Default)]
pub struct Registry {
    pub(crate) maps: Mutex<Maps>,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The global registry.
pub fn registry() -> &'static Registry {
    GLOBAL.get_or_init(Registry::default)
}

impl Registry {
    /// Interns (or retrieves) a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut maps = self.maps.lock().expect("registry poisoned");
        Arc::clone(maps.counters.entry(name.to_string()).or_default())
    }

    /// Interns (or retrieves) a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut maps = self.maps.lock().expect("registry poisoned");
        Arc::clone(maps.gauges.entry(name.to_string()).or_default())
    }

    /// Interns (or retrieves) a latency histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut maps = self.maps.lock().expect("registry poisoned");
        Arc::clone(maps.histograms.entry(name.to_string()).or_default())
    }

    /// Interns (or retrieves) the duration histogram of a span path.
    pub fn span_histogram(&self, path: &str) -> Arc<Histogram> {
        let mut maps = self.maps.lock().expect("registry poisoned");
        Arc::clone(maps.spans.entry(path.to_string()).or_default())
    }

    /// Zeroes every registered metric (names stay interned, so cached
    /// call-site handles remain valid across resets).
    pub fn reset(&self) {
        let maps = self.maps.lock().expect("registry poisoned");
        for c in maps.counters.values() {
            c.reset();
        }
        for g in maps.gauges.values() {
            g.reset();
        }
        for h in maps.histograms.values().chain(maps.spans.values()) {
            h.reset();
        }
    }
}

/// Interns a counter in the global registry.
pub fn counter(name: &str) -> Arc<Counter> {
    registry().counter(name)
}

/// Interns a gauge in the global registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    registry().gauge(name)
}

/// Interns a histogram in the global registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    registry().histogram(name)
}

/// Interns a span-path histogram in the global registry.
pub fn span_histogram(path: &str) -> Arc<Histogram> {
    registry().span_histogram(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_returns_the_same_metric() {
        let r = Registry::default();
        let a = r.counter("x.same");
        let b = r.counter("x.same");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn reset_preserves_handles() {
        let r = Registry::default();
        let c = r.counter("x.reset");
        c.add(5);
        r.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(r.counter("x.reset").get(), 1, "handle still live after reset");
    }

    #[test]
    fn spans_and_histograms_are_separate_namespaces() {
        let r = Registry::default();
        r.histogram("t.h").record(1);
        r.span_histogram("t.h").record(2);
        assert_eq!(r.histogram("t.h").snap().sum, 1);
        assert_eq!(r.span_histogram("t.h").snap().sum, 2);
    }
}
