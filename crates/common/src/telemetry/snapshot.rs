//! Point-in-time telemetry snapshots: JSON serialization and a formatted
//! phase/counter table for terminal output.

use crate::json::Json;

use super::histogram::HistogramSnapshot;
use super::registry::registry;

/// Frozen statistics of one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Slash-separated hierarchical path, e.g. `compress/isum/select`.
    pub path: String,
    /// Underlying duration histogram.
    pub hist: HistogramSnapshot,
}

impl SpanStat {
    /// Total nanoseconds across all executions of this span path.
    pub fn total_ns(&self) -> u64 {
        self.hist.sum
    }

    /// Executions of this span path.
    pub fn count(&self) -> u64 {
        self.hist.count
    }

    /// Nesting depth (number of `/` separators).
    pub fn depth(&self) -> usize {
        self.path.matches('/').count()
    }
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, name-sorted.
    pub gauges: Vec<(String, i64)>,
    /// `(name, histogram)` latency histograms, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Span statistics, path-sorted (parents sort before children).
    pub spans: Vec<SpanStat>,
}

/// Takes a snapshot of the global registry.
pub fn snapshot() -> Snapshot {
    let maps = registry().maps.lock().expect("registry poisoned");
    Snapshot {
        counters: maps.counters.iter().map(|(n, c)| (n.clone(), c.get())).collect(),
        gauges: maps.gauges.iter().map(|(n, g)| (n.clone(), g.get())).collect(),
        histograms: maps.histograms.iter().map(|(n, h)| (n.clone(), h.snap())).collect(),
        spans: maps
            .spans
            .iter()
            .map(|(p, h)| SpanStat { path: p.clone(), hist: h.snap() })
            .collect(),
    }
}

impl Snapshot {
    /// Value of a counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Value of a gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram of a metric, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Statistics of a span path, if recorded.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Total nanoseconds of a span path, if recorded.
    pub fn span_total_ns(&self, path: &str) -> Option<u64> {
        self.span(path).map(SpanStat::total_ns)
    }

    /// Sum over every span path whose *leaf* name equals `leaf`,
    /// regardless of where it nests (e.g. `featurize` across every
    /// compressor invocation site).
    pub fn leaf_total_ns(&self, leaf: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.path == leaf || s.path.ends_with(&format!("/{leaf}")))
            .map(SpanStat::total_ns)
            .sum()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|(_, v)| *v == 0)
            && self.gauges.iter().all(|(_, v)| *v == 0)
            && self.histograms.iter().all(|(_, h)| h.count == 0)
            && self.spans.iter().all(|s| s.count() == 0)
    }

    /// Serializes to the JSON report schema (see README.md §
    /// Observability). Histogram values are unit-agnostic: span
    /// histograms hold nanoseconds, metric histograms hold whatever the
    /// recording site chose (the `_ns` name suffix convention marks
    /// latency histograms).
    ///
    /// ```json
    /// {
    ///   "counters": {"optimizer.whatif.calls": 123, ...},
    ///   "gauges": {"optimizer.whatif.cache_entries": 10, ...},
    ///   "histograms": {"optimizer.whatif.cost_ns":
    ///       {"count":1,"sum":2,"min":2,"max":2,
    ///        "mean":2.0,"p50":2,"p90":2,"p99":2}, ...},
    ///   "spans": {"compress/isum/select": {...same shape, in ns...}, ...}
    /// }
    /// ```
    pub fn to_json(&self) -> Json {
        let hist_json = |h: &HistogramSnapshot| {
            Json::Obj(vec![
                ("count".into(), Json::from(h.count)),
                ("sum".into(), Json::from(h.sum)),
                ("min".into(), Json::from(h.min)),
                ("max".into(), Json::from(h.max)),
                ("mean".into(), Json::Num(h.mean())),
                ("p50".into(), Json::from(h.quantile(0.5))),
                ("p90".into(), Json::from(h.quantile(0.9))),
                ("p99".into(), Json::from(h.quantile(0.99))),
            ])
        };
        Json::Obj(vec![
            (
                "counters".into(),
                Json::Obj(self.counters.iter().map(|(n, v)| (n.clone(), Json::from(*v))).collect()),
            ),
            (
                "gauges".into(),
                Json::Obj(
                    self.gauges.iter().map(|(n, v)| (n.clone(), Json::Num(*v as f64))).collect(),
                ),
            ),
            (
                "histograms".into(),
                Json::Obj(self.histograms.iter().map(|(n, h)| (n.clone(), hist_json(h))).collect()),
            ),
            (
                "spans".into(),
                Json::Obj(
                    self.spans.iter().map(|s| (s.path.clone(), hist_json(&s.hist))).collect(),
                ),
            ),
        ])
    }

    /// Renders the aligned phase/counter table the CLI prints under
    /// `--stats`. Span rows are indented by nesting depth; zero-valued
    /// metrics are skipped.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let active_spans: Vec<&SpanStat> = self.spans.iter().filter(|s| s.count() > 0).collect();
        if !active_spans.is_empty() {
            out.push_str("\n== telemetry: phases ==\n");
            let mut rows: Vec<(String, String, String, String)> =
                vec![("span".into(), "count".into(), "total".into(), "mean".into())];
            for s in &active_spans {
                let leaf = s.path.rsplit('/').next().unwrap_or(&s.path);
                rows.push((
                    format!("{}{leaf}", "  ".repeat(s.depth())),
                    s.count().to_string(),
                    fmt_ns(s.total_ns()),
                    fmt_ns((s.hist.mean()) as u64),
                ));
            }
            render_rows(&mut out, &rows);
        }
        let active_counters: Vec<_> = self.counters.iter().filter(|(_, v)| *v > 0).collect();
        let active_gauges: Vec<_> = self.gauges.iter().filter(|(_, v)| *v != 0).collect();
        if !active_counters.is_empty() || !active_gauges.is_empty() {
            out.push_str("\n== telemetry: counters ==\n");
            let mut rows: Vec<(String, String, String, String)> =
                vec![("counter".into(), "value".into(), String::new(), String::new())];
            for (n, v) in &active_counters {
                rows.push((n.clone(), v.to_string(), String::new(), String::new()));
            }
            for (n, v) in &active_gauges {
                rows.push((format!("{n} (gauge)"), v.to_string(), String::new(), String::new()));
            }
            render_rows(&mut out, &rows);
        }
        let active_hists: Vec<_> = self.histograms.iter().filter(|(_, h)| h.count > 0).collect();
        if !active_hists.is_empty() {
            out.push_str("\n== telemetry: distributions ==\n");
            let mut rows: Vec<(String, String, String, String)> =
                vec![("histogram".into(), "count".into(), "mean".into(), "p99".into())];
            for (n, h) in &active_hists {
                // The `_ns` suffix marks duration histograms; everything
                // else (e.g. per-round call counts) renders as raw values.
                let (mean, p99) = if n.ends_with("_ns") {
                    (fmt_ns(h.mean() as u64), fmt_ns(h.quantile(0.99)))
                } else {
                    (format!("{:.1}", h.mean()), h.quantile(0.99).to_string())
                };
                rows.push((n.clone(), h.count.to_string(), mean, p99));
            }
            render_rows(&mut out, &rows);
        }
        if out.is_empty() {
            out.push_str("\n== telemetry: no samples recorded ==\n");
        }
        out
    }
}

/// Human-scales a nanosecond quantity (`1.2ms`, `3.4s`, ...).
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn render_rows(out: &mut String, rows: &[(String, String, String, String)]) {
    let w0 = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let w1 = rows.iter().map(|r| r.1.len()).max().unwrap_or(0);
    let w2 = rows.iter().map(|r| r.2.len()).max().unwrap_or(0);
    let w3 = rows.iter().map(|r| r.3.len()).max().unwrap_or(0);
    for (a, b, c, d) in rows {
        let line = format!("{a:<w0$}  {b:>w1$}  {c:>w2$}  {d:>w3$}");
        out.push_str(line.trim_end());
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::super::{set_enabled, span, test_lock};
    use super::*;
    use crate::json::Json;

    #[test]
    fn snapshot_serializes_and_reparses() {
        let _g = test_lock();
        set_enabled(true);
        registry().counter("snap.test.counter").add(7);
        registry().gauge("snap.test.gauge").set(-2);
        registry().histogram("snap.test.hist").record(1500);
        {
            let _s = span("snap_test_span");
        }
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.counter("snap.test.counter"), Some(7));
        assert_eq!(snap.gauge("snap.test.gauge"), Some(-2));
        assert_eq!(snap.histogram("snap.test.hist").unwrap().count, 1);
        assert!(snap.span("snap_test_span").is_some());

        let json = snap.to_json().to_pretty();
        let parsed = Json::parse(&json).expect("snapshot JSON parses");
        assert_eq!(
            parsed.get("counters").unwrap().get("snap.test.counter").unwrap().as_u64(),
            Some(7)
        );
        let h = parsed.get("histograms").unwrap().get("snap.test.hist").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(h.get("sum").unwrap().as_u64(), Some(1500));
        assert!(parsed.get("spans").unwrap().get("snap_test_span").is_some());
    }

    #[test]
    fn table_renders_nonempty_sections() {
        let _g = test_lock();
        set_enabled(true);
        registry().counter("table.test.counter").add(3);
        {
            let _s = span("table_test_phase");
        }
        set_enabled(false);
        let snap = snapshot();
        let table = snap.render_table();
        assert!(table.contains("table.test.counter"), "{table}");
        assert!(table.contains("table_test_phase"), "{table}");
        assert!(table.contains("telemetry: phases"), "{table}");
    }

    #[test]
    fn leaf_totals_aggregate_across_parents() {
        let _g = test_lock();
        set_enabled(true);
        {
            let _a = span("leafagg_a");
            let _l = span("leafwork");
        }
        {
            let _b = span("leafagg_b");
            let _l = span("leafwork");
        }
        set_enabled(false);
        let snap = snapshot();
        let total = snap.leaf_total_ns("leafwork");
        let a = snap.span_total_ns("leafagg_a/leafwork").unwrap();
        let b = snap.span_total_ns("leafagg_b/leafwork").unwrap();
        assert_eq!(total, a + b);
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
