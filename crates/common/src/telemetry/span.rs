//! Hierarchical scoped timers.
//!
//! A [`span`] measures the wall time between its creation and drop and
//! records it under a slash-separated path reflecting the nesting of live
//! spans on the current thread: opening `"select"` inside `"compress"`
//! records under `compress/select`. Each path accumulates into its own
//! duration histogram, so phase breakdowns carry counts and quantiles,
//! not just totals.
//!
//! When telemetry is disabled the guard is fully inert: no clock read, no
//! allocation, no thread-local touch — construction and drop are each one
//! branch.

use std::cell::RefCell;
use std::time::Instant;

use super::{enabled, registry};

thread_local! {
    /// Stack of open span paths on this thread; the top is the parent of
    /// the next span opened.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Opens a scoped span named `name` under the innermost live span of this
/// thread. Dropping the guard records the elapsed time.
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None };
    }
    let path = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let path = match s.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        s.push(path.clone());
        path
    });
    SpanGuard { live: Some(LiveSpan { path, start: Instant::now() }) }
}

#[derive(Debug)]
struct LiveSpan {
    path: String,
    start: Instant,
}

/// RAII guard returned by [`span`]; records on drop.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; dropping it immediately records ~0ns"]
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl SpanGuard {
    /// The full slash-separated path of this span (`None` when telemetry
    /// was disabled at creation).
    pub fn path(&self) -> Option<&str> {
        self.live.as_ref().map(|l| l.path.as_str())
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        let elapsed = live.start.elapsed();
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop this span. Guards are dropped in reverse creation order
            // under normal scoping; tolerate out-of-order drops by
            // removing the matching entry wherever it sits.
            match s.iter().rposition(|p| *p == live.path) {
                Some(i) => {
                    s.remove(i);
                }
                None => debug_assert!(false, "span {} missing from stack", live.path),
            }
        });
        registry().span_histogram(&live.path).record_duration(elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::super::set_enabled;
    use super::*;

    /// Serializes tests that toggle the global enabled flag.
    fn with_enabled(f: impl FnOnce()) {
        let _g = super::super::test_lock();
        set_enabled(true);
        f();
        set_enabled(false);
    }

    #[test]
    fn nested_spans_build_paths() {
        with_enabled(|| {
            let outer = span("unit_outer");
            assert_eq!(outer.path(), Some("unit_outer"));
            let inner = span("unit_inner");
            assert_eq!(inner.path(), Some("unit_outer/unit_inner"));
            drop(inner);
            let sibling = span("unit_sib");
            assert_eq!(sibling.path(), Some("unit_outer/unit_sib"));
        });
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = super::super::test_lock();
        set_enabled(false);
        let g = span("unit_disabled");
        assert_eq!(g.path(), None);
        drop(g);
        // Nothing recorded under the bare name.
        assert_eq!(registry().span_histogram("unit_disabled").snap().count, 0);
    }

    #[test]
    fn child_span_time_never_exceeds_parent() {
        with_enabled(|| {
            {
                let _outer = span("unit_parent");
                {
                    let _inner = span("unit_child");
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                // Parent keeps running after the child closed.
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let parent = registry().span_histogram("unit_parent").snap();
            let child = registry().span_histogram("unit_parent/unit_child").snap();
            assert_eq!(parent.count, 1);
            assert_eq!(child.count, 1);
            assert!(
                child.sum <= parent.sum,
                "child {}ns exceeds parent {}ns",
                child.sum,
                parent.sum
            );
            assert!(parent.sum >= 3_000_000, "parent spans both sleeps");
        });
    }

    #[test]
    fn drop_records_duration() {
        with_enabled(|| {
            {
                let _g = span("unit_recorded");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let snap = registry().span_histogram("unit_recorded").snap();
            assert!(snap.count >= 1);
            assert!(snap.sum >= 1_000_000, "at least the 1ms sleep: {}", snap.sum);
        });
    }
}
