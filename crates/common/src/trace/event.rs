//! The structured event record and its JSONL wire form.

use crate::json::Json;

use super::Level;

/// One structured trace event.
///
/// Events are observational only: they carry wall-clock data (`unix_ms`)
/// and scheduling context (`thread_label`), but nothing downstream ever
/// reads them back into a computation — the determinism contract of
/// DESIGN.md §11.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Process-wide monotone sequence number (assignment order, not
    /// necessarily sink order under concurrency).
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Severity.
    pub level: Level,
    /// Dot-separated emitting component, e.g. `server.ingest`.
    pub target: String,
    /// Human-readable message.
    pub message: String,
    /// Structured `key=value` fields, in call-site order.
    pub fields: Vec<(String, String)>,
    /// Request being served when the event fired, if any (set by the
    /// daemon via [`super::with_request_id`]).
    pub request_id: Option<String>,
    /// Executor identity (`exec-3`, set by the worker pool) so events
    /// from inside `par_map` closures stay attributable at any thread
    /// count.
    pub thread_label: Option<String>,
}

impl Event {
    /// Renders the event as its JSON object form.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("seq".into(), Json::from(self.seq)),
            ("ts_ms".into(), Json::from(self.unix_ms)),
            ("level".into(), Json::from(self.level.as_str())),
            ("target".into(), Json::from(self.target.as_str())),
            ("msg".into(), Json::from(self.message.as_str())),
        ];
        if let Some(rid) = &self.request_id {
            fields.push(("request_id".into(), Json::from(rid.as_str())));
        }
        if let Some(label) = &self.thread_label {
            fields.push(("worker".into(), Json::from(label.as_str())));
        }
        if !self.fields.is_empty() {
            fields.push((
                "fields".into(),
                Json::Obj(
                    self.fields.iter().map(|(k, v)| (k.clone(), Json::from(v.as_str()))).collect(),
                ),
            ));
        }
        Json::Obj(fields)
    }

    /// One JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        self.to_json().to_compact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_round_trips_and_omits_empty_context() {
        let ev = Event {
            seq: 7,
            unix_ms: 1_700_000_000_123,
            level: Level::Warn,
            target: "server.ingest".into(),
            message: "queue full".into(),
            fields: vec![("depth".into(), "64".into())],
            request_id: Some("req-1".into()),
            thread_label: None,
        };
        let line = ev.to_jsonl();
        assert!(!line.contains('\n'), "JSONL events are single lines: {line}");
        let parsed = Json::parse(&line).expect("event line parses");
        assert_eq!(parsed.get("level").unwrap().as_str(), Some("warn"));
        assert_eq!(parsed.get("target").unwrap().as_str(), Some("server.ingest"));
        assert_eq!(parsed.get("request_id").unwrap().as_str(), Some("req-1"));
        assert_eq!(parsed.get("fields").unwrap().get("depth").unwrap().as_str(), Some("64"));
        assert!(parsed.get("worker").is_none(), "unset context keys are omitted");
    }
}
