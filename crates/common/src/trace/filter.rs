//! `ISUM_LOG` env-filter parsing and target matching.
//!
//! The grammar mirrors `env_logger`/`tracing_subscriber`:
//!
//! ```text
//! ISUM_LOG = directive (',' directive)*
//! directive = level                 -- new default for every target
//!           | target '=' level      -- override for one target subtree
//! level = "off" | "error" | "warn" | "info" | "debug" | "trace"
//! ```
//!
//! `trace` is accepted as an alias for `debug` (the finest level this
//! subsystem has). Targets are dot-separated component paths; a
//! directive's target matches an event target when it is equal to it or a
//! `.`-boundary prefix of it (`server` matches `server.ingest` but not
//! `serverless`). When several directives match, the most specific
//! (longest) target wins. Malformed directives are ignored individually —
//! a typo in one directive never silences the rest — and an unparseable
//! default falls back to [`Filter::DEFAULT_LEVEL`].

use super::Level;

/// Default sink level when `ISUM_LOG` is unset or unparseable: warnings
/// and errors reach stderr out of the box, matching the diagnostic
/// surface the pre-trace `eprintln!` sites had.
const DEFAULT_LEVEL: Option<Level> = Some(Level::Warn);

/// A parsed `ISUM_LOG` filter.
#[derive(Debug, Clone, PartialEq)]
pub struct Filter {
    /// Level for targets no directive matches (`None` = off).
    default: Option<Level>,
    /// `(target, level)` overrides; `None` silences the subtree.
    directives: Vec<(String, Option<Level>)>,
}

impl Default for Filter {
    fn default() -> Self {
        Filter { default: DEFAULT_LEVEL, directives: Vec::new() }
    }
}

/// Parses one level token of the `ISUM_LOG` grammar. The outer `None`
/// means the token is not a level at all; the inner `None` is an
/// explicit `off`. Public so wire endpoints (`/events?level=`) accept
/// exactly the vocabulary the env filter does.
pub fn parse_level(s: &str) -> Option<Option<Level>> {
    match s.trim().to_ascii_lowercase().as_str() {
        "off" | "none" => Some(None),
        "error" => Some(Some(Level::Error)),
        "warn" | "warning" => Some(Some(Level::Warn)),
        "info" => Some(Some(Level::Info)),
        "debug" | "trace" => Some(Some(Level::Debug)),
        _ => None,
    }
}

impl Filter {
    /// The default level used when `ISUM_LOG` is unset or its default
    /// directive is malformed.
    pub const DEFAULT_LEVEL: Option<Level> = DEFAULT_LEVEL;

    /// Parses an `ISUM_LOG` spec. Returns the filter plus every directive
    /// that was ignored as malformed (callers may report them; parsing
    /// itself never fails).
    pub fn parse(spec: &str) -> (Filter, Vec<String>) {
        let mut filter = Filter::default();
        let mut bad = Vec::new();
        for directive in spec.split(',') {
            let directive = directive.trim();
            if directive.is_empty() {
                continue;
            }
            match directive.split_once('=') {
                None => match parse_level(directive) {
                    Some(level) => filter.default = level,
                    None => bad.push(directive.to_string()),
                },
                Some((target, level)) => {
                    let target = target.trim();
                    match (target.is_empty(), parse_level(level)) {
                        (false, Some(level)) => {
                            filter.directives.push((target.to_string(), level));
                        }
                        _ => bad.push(directive.to_string()),
                    }
                }
            }
        }
        // Longest target first, so the first match is the most specific.
        filter.directives.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then(a.0.cmp(&b.0)));
        (filter, bad)
    }

    /// The level in force for `target`: the most specific matching
    /// directive, else the default.
    pub fn level_for(&self, target: &str) -> Option<Level> {
        for (prefix, level) in &self.directives {
            if target == prefix
                || (target.len() > prefix.len()
                    && target.starts_with(prefix.as_str())
                    && target.as_bytes()[prefix.len()] == b'.')
            {
                return *level;
            }
        }
        self.default
    }

    /// True when an event at `level` from `target` passes the filter.
    pub fn enabled(&self, target: &str, level: Level) -> bool {
        self.level_for(target).is_some_and(|max| level <= max)
    }

    /// The most verbose level any target can reach — the cheap global
    /// gate the event macros check before building anything.
    pub fn max_level(&self) -> Option<Level> {
        self.directives.iter().map(|(_, l)| *l).chain(std::iter::once(self.default)).flatten().max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_level_sets_the_default() {
        let (f, bad) = Filter::parse("debug");
        assert!(bad.is_empty());
        assert_eq!(f.level_for("anything"), Some(Level::Debug));
        assert!(f.enabled("core", Level::Debug));
    }

    #[test]
    fn per_target_directives_override_the_default() {
        let (f, bad) = Filter::parse("info,server=debug");
        assert!(bad.is_empty());
        assert!(f.enabled("server", Level::Debug));
        assert!(f.enabled("server.ingest", Level::Debug), "subtree inherits");
        assert!(!f.enabled("core", Level::Debug), "default stays info");
        assert!(f.enabled("core", Level::Info));
    }

    #[test]
    fn most_specific_target_wins() {
        let (f, bad) = Filter::parse("warn,server=error,server.ingest=debug");
        assert!(bad.is_empty());
        assert!(f.enabled("server.ingest", Level::Debug));
        assert!(f.enabled("server.ingest.batch", Level::Debug));
        assert!(!f.enabled("server", Level::Warn), "server subtree capped at error");
        assert!(f.enabled("server", Level::Error));
        assert!(f.enabled("optimizer", Level::Warn), "default still applies");
    }

    #[test]
    fn prefix_matching_respects_dot_boundaries() {
        let (f, _) = Filter::parse("off,server=debug");
        assert!(f.enabled("server.conn", Level::Debug));
        assert!(!f.enabled("serverless", Level::Error), "no substring matches");
    }

    #[test]
    fn bad_directives_fall_back_to_default() {
        let (f, bad) = Filter::parse("verbose,server=shout,=debug,server=debug");
        assert_eq!(bad, vec!["verbose", "server=shout", "=debug"]);
        assert_eq!(f.level_for("core"), Filter::DEFAULT_LEVEL, "bad default is ignored");
        assert!(f.enabled("server", Level::Debug), "good directives still apply");
    }

    #[test]
    fn off_silences_and_trace_aliases_debug() {
        let (f, bad) = Filter::parse("off,sql=trace");
        assert!(bad.is_empty());
        assert!(!f.enabled("core", Level::Error));
        assert!(f.enabled("sql.parser", Level::Debug));
        assert_eq!(f.max_level(), Some(Level::Debug));
        let (all_off, _) = Filter::parse("off");
        assert_eq!(all_off.max_level(), None);
    }

    #[test]
    fn empty_spec_is_the_default_filter() {
        let (f, bad) = Filter::parse("");
        assert!(bad.is_empty());
        assert_eq!(f, Filter::default());
        assert!(f.enabled("x", Level::Warn));
        assert!(!f.enabled("x", Level::Info));
    }
}
