//! Structured, leveled tracing for the whole stack (DESIGN.md §11).
//!
//! [`telemetry`](crate::telemetry) answers *how much* (aggregate
//! counters, histograms, span totals); this module answers *why this
//! one* — a stream of leveled, targeted events with `key=value` fields,
//! request-ID attribution, and worker labels, emitted through the
//! [`error!`](macro@crate::error), [`warn!`](crate::warn),
//! [`info!`](crate::info), and [`debug!`](crate::debug) macros.
//!
//! # Pipeline
//!
//! ```text
//! macro ──(one atomic load: level ≤ max?)──► build Event
//!     ├── ring capture (bounded ring, daemon `GET /events` tail)
//!     └── sink: ISUM_LOG target filter ──► JSONL on stderr / ISUM_LOG_FILE
//! ```
//!
//! # Configuration
//!
//! * `ISUM_LOG` — sink filter, e.g. `info,server=debug` (grammar in
//!   [`filter`]). Unset, the sink defaults to `warn`: warnings and errors
//!   reach stderr out of the box, every quieter call site is a single
//!   relaxed atomic load and branch.
//! * `ISUM_LOG_FILE` (or the CLI's `--log-file`) — redirect the JSONL
//!   sink from stderr to a file.
//! * The daemon additionally enables ring capture at `debug` so
//!   `GET /events` works without any environment setup.
//!
//! # Determinism contract
//!
//! Events carry wall-clock timestamps and scheduling context, but nothing
//! in the system ever reads an event back into a computation: with
//! `ISUM_LOG=debug` or unset, at 1 or 8 threads, every result artifact is
//! byte-identical (asserted by the CI observability job).

pub mod filter;

mod event;
mod ring;

pub use event::Event;
pub use filter::{parse_level, Filter};
pub use ring::Ring;

use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Event severity, ordered from most to least severe. The `u8` value is
/// a verbosity: a filter at level `L` passes events with `level <= L`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// The operation failed; data or a response was degraded or lost.
    Error = 1,
    /// Something unexpected that the system absorbed (skip, retry,
    /// fallback, quarantine).
    Warn = 2,
    /// High-level lifecycle: startup, shutdown, per-request outcomes.
    Info = 3,
    /// Per-phase and per-decision detail.
    Debug = 4,
}

impl Level {
    /// Lowercase name (`"warn"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where sink-approved events are written.
enum SinkTarget {
    Stderr,
    File(std::io::BufWriter<std::fs::File>),
}

/// Mutable trace configuration behind the state lock.
struct TraceState {
    filter: Filter,
    sink: SinkTarget,
    ring_level: Option<Level>,
}

/// Default ring capacity; override per-process with `ISUM_EVENTS_CAP`.
const DEFAULT_RING_CAPACITY: usize = 1024;

/// Must equal `Filter::default().max_level()` so the gate is correct
/// before any initialization runs (checked by a test below).
const DEFAULT_MAX_LEVEL: u8 = Level::Warn as u8;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(DEFAULT_MAX_LEVEL);
static EVENT_SEQ: AtomicU64 = AtomicU64::new(0);
static STATE: OnceLock<Mutex<TraceState>> = OnceLock::new();
static RING: OnceLock<Ring> = OnceLock::new();

fn state() -> MutexGuard<'static, TraceState> {
    STATE
        .get_or_init(|| {
            Mutex::new(TraceState {
                filter: Filter::default(),
                sink: SinkTarget::Stderr,
                ring_level: None,
            })
        })
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The global event ring (created on first use).
fn ring() -> &'static Ring {
    RING.get_or_init(|| {
        let cap = std::env::var("ISUM_EVENTS_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_RING_CAPACITY);
        Ring::new(cap)
    })
}

/// Recomputes the cheap global gate from the locked state.
fn recompute_max_level(st: &TraceState) {
    let sink = st.filter.max_level().map_or(0, |l| l as u8);
    let ring = st.ring_level.map_or(0, |l| l as u8);
    MAX_LEVEL.store(sink.max(ring), Ordering::Relaxed);
}

/// True when an event at `level` could reach any destination — the only
/// cost a call site pays when its level is filtered out (one relaxed
/// atomic load plus a compare).
#[inline(always)]
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Installs the sink filter from a spec string (the `ISUM_LOG` grammar).
/// Malformed directives are ignored individually and returned, and never
/// disable the filter as a whole.
pub fn set_filter_spec(spec: &str) -> Vec<String> {
    let (filter, bad) = Filter::parse(spec);
    let mut st = state();
    st.filter = filter;
    recompute_max_level(&st);
    bad
}

/// Redirects the JSONL sink to `path` (append mode, created if missing).
///
/// # Errors
/// Propagates the underlying open failure; the sink is left unchanged.
pub fn set_log_file(path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    state().sink = SinkTarget::File(std::io::BufWriter::new(file));
    Ok(())
}

/// Enables ring capture of every event at `level` or more severe,
/// independent of the sink filter. The daemon calls this at startup so
/// `GET /events` has a tail to serve without any environment setup.
pub fn enable_ring(level: Level) {
    let mut st = state();
    st.ring_level = Some(level);
    recompute_max_level(&st);
}

/// The most recent `n` captured events, oldest first (empty when ring
/// capture was never enabled).
pub fn ring_tail(n: usize) -> Vec<Event> {
    match RING.get() {
        Some(ring) => ring.tail(n),
        None => Vec::new(),
    }
}

/// Initializes the subsystem from the environment: `ISUM_LOG` (sink
/// filter) and `ISUM_LOG_FILE` (sink destination). Safe to call more than
/// once; malformed pieces degrade to defaults and are reported as a
/// `warn` event rather than an error.
pub fn init_from_env() {
    if let Ok(spec) = std::env::var("ISUM_LOG") {
        let bad = set_filter_spec(&spec);
        if !bad.is_empty() {
            crate::warn!(
                "trace",
                "ignoring malformed ISUM_LOG directive(s); using defaults for them",
                bad = bad.join(",")
            );
        }
    }
    if let Ok(path) = std::env::var("ISUM_LOG_FILE") {
        if !path.is_empty() {
            if let Err(e) = set_log_file(std::path::Path::new(&path)) {
                crate::warn!("trace", format!("cannot open ISUM_LOG_FILE `{path}`: {e}"));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Per-thread context: request IDs and executor labels.
// ---------------------------------------------------------------------

thread_local! {
    static REQUEST_ID: RefCell<Option<String>> = const { RefCell::new(None) };
    static THREAD_LABEL: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Restores the previous request ID when dropped.
pub struct RequestIdGuard {
    prev: Option<String>,
}

impl Drop for RequestIdGuard {
    fn drop(&mut self) {
        REQUEST_ID.with(|slot| *slot.borrow_mut() = self.prev.take());
    }
}

/// Stamps every event emitted on this thread with `id` until the guard
/// drops (nesting restores the outer ID).
pub fn with_request_id(id: &str) -> RequestIdGuard {
    let prev = REQUEST_ID.with(|slot| slot.borrow_mut().replace(id.to_string()));
    RequestIdGuard { prev }
}

/// The request ID currently stamped on this thread, if any.
pub fn current_request_id() -> Option<String> {
    REQUEST_ID.with(|slot| slot.borrow().clone())
}

/// Sets this thread's sticky executor label (e.g. `exec-3`); events
/// emitted on the thread carry it in their `worker` field. The worker
/// pool calls this once per worker thread so events from inside parallel
/// closures stay attributable at any thread count.
pub fn set_thread_label(label: &str) {
    THREAD_LABEL.with(|slot| *slot.borrow_mut() = Some(label.to_string()));
}

/// A process-unique request ID (`<run>-<n>`): a per-process random prefix
/// from the startup clock plus a monotone counter. Used by the daemon for
/// requests that did not supply an `X-Isum-Request-Id`.
pub fn next_request_id() -> String {
    static PREFIX: OnceLock<u64> = OnceLock::new();
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let prefix = PREFIX.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos() as u64);
        // SplitMix64 finalizer over clock ^ pid: distinct across restarts.
        let mut z = nanos ^ (u64::from(std::process::id()) << 32);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    });
    format!("{:08x}-{:x}", prefix & 0xffff_ffff, COUNTER.fetch_add(1, Ordering::Relaxed))
}

// ---------------------------------------------------------------------
// Emission.
// ---------------------------------------------------------------------

/// Builds and routes one event. Call sites go through the level macros,
/// which check [`enabled`] first; calling this directly skips that gate
/// but is otherwise equivalent.
pub fn emit(level: Level, target: &str, message: String, fields: Vec<(String, String)>) {
    let event = Event {
        seq: EVENT_SEQ.fetch_add(1, Ordering::Relaxed),
        unix_ms: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64),
        level,
        target: target.to_string(),
        message,
        fields,
        request_id: current_request_id(),
        thread_label: THREAD_LABEL.with(|slot| slot.borrow().clone()),
    };
    let to_ring = {
        let mut st = state();
        if st.filter.enabled(target, level) {
            let line = event.to_jsonl();
            match &mut st.sink {
                SinkTarget::Stderr => {
                    let stderr = std::io::stderr();
                    let mut w = stderr.lock();
                    let _ = writeln!(w, "{line}");
                }
                SinkTarget::File(f) => {
                    let _ = writeln!(f, "{line}");
                    let _ = f.flush();
                }
            }
        }
        st.ring_level.is_some_and(|cap| level <= cap)
    };
    if to_ring {
        ring().push(event);
    }
}

/// Emits a leveled event: `event!(level, target, message, key = value,
/// ...)`. Prefer the level shorthands [`error!`](macro@crate::error),
/// [`warn!`](crate::warn), [`info!`](crate::info),
/// [`debug!`](crate::debug).
#[macro_export]
macro_rules! event {
    ($lvl:expr, $target:expr, $msg:expr $(, $k:ident = $v:expr)* $(,)?) => {{
        let lvl = $lvl;
        if $crate::trace::enabled(lvl) {
            $crate::trace::emit(
                lvl,
                $target,
                ::std::string::ToString::to_string(&$msg),
                ::std::vec![$((
                    ::std::string::ToString::to_string(::core::stringify!($k)),
                    ::std::string::ToString::to_string(&$v),
                )),*],
            );
        }
    }};
}

/// `error!`-level [`event!`](crate::event): the operation failed; data or
/// a response was degraded or lost.
#[macro_export]
macro_rules! error {
    ($($t:tt)*) => { $crate::event!($crate::trace::Level::Error, $($t)*) };
}

/// `warn!`-level [`event!`](crate::event): something unexpected the
/// system absorbed (skip, retry, fallback, quarantine).
#[macro_export]
macro_rules! warn {
    ($($t:tt)*) => { $crate::event!($crate::trace::Level::Warn, $($t)*) };
}

/// `info!`-level [`event!`](crate::event): lifecycle and per-request
/// outcomes.
#[macro_export]
macro_rules! info {
    ($($t:tt)*) => { $crate::event!($crate::trace::Level::Info, $($t)*) };
}

/// `debug!`-level [`event!`](crate::event): per-phase and per-decision
/// detail.
#[macro_export]
macro_rules! debug {
    ($($t:tt)*) => { $crate::event!($crate::trace::Level::Debug, $($t)*) };
}

/// Serializes tests (within one binary) that mutate the global trace
/// configuration. Public so integration tests can share it; not part of
/// the stable API.
#[doc(hidden)]
pub fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Restores default configuration (default filter, stderr sink, ring
/// capture off) — for tests.
#[doc(hidden)]
pub fn reset_for_tests() {
    let mut st = state();
    st.filter = Filter::default();
    st.sink = SinkTarget::Stderr;
    st.ring_level = None;
    recompute_max_level(&st);
    if let Some(ring) = RING.get() {
        ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_gate_matches_default_filter() {
        assert_eq!(Some(DEFAULT_MAX_LEVEL), Filter::default().max_level().map(|l| l as u8));
    }

    #[test]
    fn level_ordering_is_severity_to_verbosity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!(Level::Debug.as_str(), "debug");
    }

    #[test]
    fn request_id_guard_nests_and_restores() {
        let _g = test_lock();
        assert_eq!(current_request_id(), None);
        {
            let _outer = with_request_id("outer");
            assert_eq!(current_request_id().as_deref(), Some("outer"));
            {
                let _inner = with_request_id("inner");
                assert_eq!(current_request_id().as_deref(), Some("inner"));
            }
            assert_eq!(current_request_id().as_deref(), Some("outer"));
        }
        assert_eq!(current_request_id(), None);
    }

    #[test]
    fn generated_request_ids_are_unique() {
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, b);
        assert!(a.contains('-'));
    }

    #[test]
    fn filter_spec_controls_the_gate() {
        let _g = test_lock();
        reset_for_tests();
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Debug));
        let bad = set_filter_spec("debug");
        assert!(bad.is_empty());
        assert!(enabled(Level::Debug));
        let bad = set_filter_spec("off");
        assert!(bad.is_empty());
        assert!(!enabled(Level::Error));
        reset_for_tests();
    }

    #[test]
    fn ring_capture_collects_events_without_sink() {
        let _g = test_lock();
        reset_for_tests();
        set_filter_spec("off");
        enable_ring(Level::Info);
        crate::info!("trace.test", "captured", n = 1);
        crate::debug!("trace.test", "too verbose for the ring");
        let tail = ring_tail(16);
        assert!(tail.iter().any(|e| e.message == "captured" && e.target == "trace.test"));
        assert!(!tail.iter().any(|e| e.message.contains("too verbose")));
        reset_for_tests();
    }
}
