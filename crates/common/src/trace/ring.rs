//! A bounded ring buffer of recent events backing the daemon's
//! `GET /events` tail.
//!
//! Writers claim a slot with one lock-free `fetch_add` on the cursor and
//! take only that slot's lock to store the event, so concurrent emitters
//! from different workers never serialize on a shared lock (two writers
//! contend only when the ring has fully wrapped between them). Readers
//! snapshot the tail by walking the last `n` slots; an event being
//! overwritten mid-read is simply skipped for that snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use super::event::Event;

/// A bounded, append-only ring of events.
#[derive(Debug)]
pub struct Ring {
    slots: Vec<Mutex<Option<Event>>>,
    /// Total events ever pushed; `cursor % slots.len()` is the next slot.
    cursor: AtomicU64,
}

impl Ring {
    /// A ring holding the most recent `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Ring {
        let capacity = capacity.max(1);
        Ring { slots: (0..capacity).map(|_| Mutex::new(None)).collect(), cursor: AtomicU64::new(0) }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events pushed over the ring's lifetime (not the retained
    /// count).
    pub fn pushed(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Appends one event, evicting the oldest once full.
    pub fn push(&self, event: Event) {
        let at = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = (at % self.slots.len() as u64) as usize;
        *self.slots[slot].lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(event);
    }

    /// The most recent `n` events in push order (oldest first). Returns
    /// fewer when the ring holds fewer.
    pub fn tail(&self, n: usize) -> Vec<Event> {
        let end = self.cursor.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let span = n.min(self.slots.len()) as u64;
        let start = end.saturating_sub(span.min(end));
        let mut out = Vec::with_capacity((end - start) as usize);
        for at in start..end {
            let slot = (at % cap) as usize;
            let guard = self.slots[slot].lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(ev) = guard.as_ref() {
                out.push(ev.clone());
            }
        }
        // A wrap racing this read can leave a newer event in an "older"
        // slot; keep the tail monotone by sequence number.
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Clears the ring (tests and between-run resets).
    pub fn clear(&self) {
        for slot in &self.slots {
            *slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Level;

    fn ev(seq: u64) -> Event {
        Event {
            seq,
            unix_ms: 0,
            level: Level::Info,
            target: "test".into(),
            message: format!("event {seq}"),
            fields: Vec::new(),
            request_id: None,
            thread_label: None,
        }
    }

    #[test]
    fn tail_returns_most_recent_in_order() {
        let ring = Ring::new(4);
        for i in 0..10 {
            ring.push(ev(i));
        }
        let tail = ring.tail(3);
        let seqs: Vec<u64> = tail.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
        assert_eq!(ring.tail(100).len(), 4, "bounded by capacity");
        assert_eq!(ring.pushed(), 10);
    }

    #[test]
    fn tail_of_partial_ring_is_everything() {
        let ring = Ring::new(8);
        ring.push(ev(0));
        ring.push(ev(1));
        assert_eq!(ring.tail(8).len(), 2);
        ring.clear();
        assert!(ring.tail(8).is_empty());
    }

    #[test]
    fn concurrent_pushes_never_lose_the_ring() {
        let ring = std::sync::Arc::new(Ring::new(64));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        ring.push(ev(t * 1000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.pushed(), 800);
        assert_eq!(ring.tail(64).len(), 64, "full ring retains exactly capacity");
    }
}
