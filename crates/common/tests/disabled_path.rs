//! Proves the disabled telemetry hot path is branch-only.
//!
//! Lives in its own integration-test binary so the counting allocator and
//! the global enabled flag are not shared with unrelated tests. The single
//! test keeps the binary single-threaded during measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use isum_common::telemetry;

/// System allocator that counts `alloc` calls.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn disabled_instrumentation_never_allocates() {
    telemetry::set_enabled(false);
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        let _g = telemetry::span("disabled.span");
        isum_common::count!("disabled.counter");
        isum_common::count!("disabled.counter", i);
        isum_common::record!("disabled.hist", i);
        isum_common::record_ns!("disabled.hist_ns", i);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled telemetry must not allocate (span/count!/record! are branch-only)"
    );
    // Nothing was interned either: the registry never saw these names.
    let snap = telemetry::snapshot();
    assert_eq!(snap.counter("disabled.counter"), None);
    assert_eq!(snap.histogram("disabled.hist"), None);
    assert!(snap.span_total_ns("disabled.span").is_none());
}
