//! Property tests for [`HistogramSnapshot::quantile`]: for any recorded
//! value set, estimates must be monotone in `q` and never leave the
//! observed `[min, max]` range (the invariants the reporting layer and
//! the Prometheus exposition depend on).

use isum_common::telemetry::Histogram;
use proptest::prelude::*;

/// Values spanning several orders of magnitude, including the zero and
/// near-`u64::MAX` buckets, so the walk crosses sparse bucket patterns.
fn value_strategy() -> impl Strategy<Value = u64> {
    (0u32..63).prop_map(|shift| 1u64 << shift)
}

proptest! {
    #[test]
    fn quantile_is_monotone_and_bounded(
        exact in prop::collection::vec(0u64..2_000_000, 1..200),
        wide in prop::collection::vec(value_strategy(), 0..40),
        qs in prop::collection::vec(0.0f64..1.0, 2..20),
    ) {
        let h = Histogram::new();
        let mut min = u64::MAX;
        let mut max = 0u64;
        for &v in exact.iter().chain(wide.iter()) {
            h.record(v);
            min = min.min(v);
            max = max.max(v);
        }
        let snap = h.snap();

        let mut qs = qs;
        qs.push(0.0);
        qs.push(1.0);
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());

        let mut prev = None;
        for &q in &qs {
            let est = snap.quantile(q);
            prop_assert!(
                est >= min && est <= max,
                "q={q} est={est} outside observed [{min}, {max}]"
            );
            if let Some((pq, pe)) = prev {
                prop_assert!(
                    est >= pe,
                    "quantile not monotone: q={pq} -> {pe}, q={q} -> {est}"
                );
            }
            prev = Some((q, est));
        }
        prop_assert_eq!(snap.quantile(1.0), max, "q=1 is the observed max");
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero(q in 0.0f64..1.0) {
        let snap = Histogram::new().snap();
        prop_assert_eq!(snap.quantile(q), 0);
    }

    #[test]
    fn single_value_histogram_is_exact_at_every_q(
        v in 0u64..u64::MAX,
        q in 0.0f64..1.0,
        n in 1u64..50,
    ) {
        let h = Histogram::new();
        for _ in 0..n {
            h.record(v);
        }
        prop_assert_eq!(h.snap().quantile(q), v);
    }
}
