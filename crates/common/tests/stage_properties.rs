//! Property tests for [`StageClock`]: arbitrary interleavings of stamp,
//! record, and shift operations must never panic, never produce a
//! negative or absent-but-rendered stage, and must always render a
//! `Server-Timing` header whose per-stage entries sum (exactly, modulo
//! float formatting) to its `total` entry — the invariant the loadgen
//! attribution and the acceptance gate depend on.

use std::time::Duration;

use isum_common::stage::{parse_server_timing, StageClock, STAGES};
use proptest::prelude::*;

/// One clock operation, drawn over the full stage vocabulary.
#[derive(Debug, Clone)]
enum Op {
    Stamp(usize),
    Record(usize, u64),
    Shift(usize, usize, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // A discriminant plus the widest operand tuple stands in for a
    // one-of combinator: unused operands are simply ignored per kind.
    (0usize..3, 0..STAGES.len(), 0..STAGES.len(), 0u64..5_000_000_000).prop_map(
        |(kind, a, b, ns)| match kind {
            0 => Op::Stamp(a),
            1 => Op::Record(a, ns),
            _ => Op::Shift(a, b, ns),
        },
    )
}

proptest! {
    #[test]
    fn arbitrary_interleavings_render_valid_server_timing(
        ops in prop::collection::vec(op_strategy(), 0..60),
    ) {
        let clock = StageClock::new();
        for op in &ops {
            match *op {
                Op::Stamp(s) => {
                    clock.stamp(STAGES[s]);
                }
                Op::Record(s, ns) => clock.record(STAGES[s], Duration::from_nanos(ns)),
                Op::Shift(a, b, ns) => clock.shift(STAGES[a], STAGES[b], Duration::from_nanos(ns)),
            }
        }
        let header = clock.server_timing();
        let parsed = parse_server_timing(&header);
        // The header always parses, ends in `total`, and every entry is a
        // known stage name with a finite non-negative duration.
        prop_assert!(!parsed.is_empty(), "at least the total entry renders: {header}");
        let (last_name, total) = parsed.last().unwrap();
        prop_assert_eq!(last_name.as_str(), "total", "{}", header);
        for (name, ms) in &parsed[..parsed.len() - 1] {
            prop_assert!(
                STAGES.iter().any(|s| s.as_str() == name),
                "unknown stage `{}` in {}", name, header
            );
            prop_assert!(ms.is_finite() && *ms >= 0.0, "{header}");
        }
        // Entries sum to the total within float-formatting tolerance.
        let sum: f64 = parsed[..parsed.len() - 1].iter().map(|(_, ms)| ms).sum();
        let eps = 1e-3 * (parsed.len() as f64);
        prop_assert!((sum - total).abs() <= eps, "sum {sum} != total {total}: {header}");
        // The exact-nanosecond invariant holds on the clock itself.
        let stage_ns: u128 =
            STAGES.iter().filter_map(|&s| clock.get(s)).map(|d| d.as_nanos()).sum();
        prop_assert_eq!(stage_ns, clock.total().as_nanos());
    }

    #[test]
    fn durations_are_monotone_under_accumulation(
        stage in 0..STAGES.len(),
        chunks in prop::collection::vec(0u64..1_000_000_000, 1..20),
    ) {
        let clock = StageClock::new();
        let mut expected = 0u64;
        for ns in chunks {
            clock.record(STAGES[stage], Duration::from_nanos(ns));
            expected += ns;
            prop_assert_eq!(
                clock.get(STAGES[stage]),
                Some(Duration::from_nanos(expected)),
                "accumulation is exact and monotone"
            );
        }
    }
}
