//! The all-pairs greedy algorithm (Algorithms 1–2 of the paper).
//!
//! Each iteration scans every remaining query, computing its conditional
//! benefit against every other query — `O(k·n²)` similarity evaluations.
//! Quality-optimal among the greedy variants (Fig 11) but too slow for
//! large workloads; the summary-features algorithm ([`crate::summary`])
//! is the paper's linear-time answer.

use crate::benefit::conditional_benefit;
use crate::features::FeatureVec;
use crate::update::{apply_update, reset_if_exhausted, UpdateStrategy};

/// Outcome of a greedy selection run.
#[derive(Debug, Clone, Default)]
pub struct Selection {
    /// Selected query indices, in selection order.
    pub order: Vec<usize>,
    /// Conditional benefit of each pick at the time it was made (used by
    /// the "selection benefit" weighting ablation, Fig 14).
    pub benefits: Vec<f64>,
}

/// Runs the all-pairs greedy selection of `k` queries (Algorithm 2 with
/// Algorithm 1 as the inner step). `features`/`utilities` are consumed as
/// working state; pass clones if the caller needs them again.
pub fn select_all_pairs(
    mut features: Vec<FeatureVec>,
    original: &[FeatureVec],
    mut utilities: Vec<f64>,
    k: usize,
    strategy: UpdateStrategy,
) -> Selection {
    let n = features.len();
    let k = k.min(n);
    isum_common::count!("core.select.candidates", n as u64);
    let mut selected = vec![false; n];
    let mut out = Selection::default();

    while out.order.len() < k {
        isum_common::count!("core.select.iterations");
        // Algorithm 1: find the max-conditional-benefit query, skipping
        // queries whose features are fully covered (all-zero). Benefits
        // are independent pure computations, so they fan out over the
        // pool; the argmax below stays a sequential index-order scan, so
        // the pick (first strict maximum) is identical to the sequential
        // algorithm at any thread count.
        let benefits = isum_exec::par_map_indexed(&features, |i, f| {
            if selected[i] || f.all_zero() {
                None
            } else {
                Some(conditional_benefit(i, &features, &utilities, &selected))
            }
        });
        let mut best: Option<(usize, f64)> = None;
        for (i, b) in benefits.into_iter().enumerate() {
            let Some(b) = b else { continue };
            if best.is_none_or(|(_, bb)| b > bb) {
                best = Some((i, b));
            }
        }
        let Some((pick, benefit)) = best else {
            // Everyone zero: reset (Alg 2 line 12) and retry, or stop if a
            // reset cannot help (all selected).
            if reset_if_exhausted(&mut features, original, &selected) {
                continue;
            }
            break;
        };
        selected[pick] = true;
        out.order.push(pick);
        out.benefits.push(benefit);
        let chosen = features[pick].clone();
        apply_update(strategy, &chosen, &mut features, &mut utilities, &selected);
        reset_if_exhausted(&mut features, original, &selected);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_common::{ColumnId, GlobalColumnId, TableId};

    fn vec_of(entries: &[(u32, f64)]) -> FeatureVec {
        FeatureVec::from_entries(
            entries
                .iter()
                .map(|&(c, w)| (GlobalColumnId::new(TableId(0), ColumnId(c)), w))
                .collect(),
        )
    }

    /// Three clusters of queries; utilities favour cluster A's first query.
    fn clustered() -> (Vec<FeatureVec>, Vec<f64>) {
        let features = vec![
            vec_of(&[(0, 1.0), (1, 0.8)]), // A0, high utility
            vec_of(&[(0, 0.9), (1, 0.9)]), // A1 (near-duplicate of A0)
            vec_of(&[(5, 1.0)]),           // B0
            vec_of(&[(5, 0.8), (6, 0.4)]), // B1
            vec_of(&[(9, 1.0)]),           // C0, tiny utility
        ];
        let utilities = vec![0.4, 0.3, 0.12, 0.12, 0.06];
        (features, utilities)
    }

    #[test]
    fn first_pick_maximizes_benefit() {
        let (f, u) = clustered();
        let sel = select_all_pairs(f.clone(), &f, u, 1, UpdateStrategy::ZeroFeatures);
        assert_eq!(sel.order, vec![0], "high-utility, high-influence query first");
        assert_eq!(sel.benefits.len(), 1);
        assert!(sel.benefits[0] > 0.4, "benefit exceeds bare utility");
    }

    #[test]
    fn updates_avoid_redundant_picks() {
        let (f, u) = clustered();
        // With updates, the second pick should come from cluster B, not the
        // near-duplicate A1.
        let sel = select_all_pairs(f.clone(), &f, u.clone(), 2, UpdateStrategy::ZeroFeatures);
        assert_eq!(sel.order[0], 0);
        assert!(
            sel.order[1] == 2 || sel.order[1] == 3,
            "expected a cluster-B query, got {:?}",
            sel.order
        );
        // Without updates, the duplicate wins (it has the 2nd-highest
        // benefit in the frozen state).
        let sel_no = select_all_pairs(f.clone(), &f, u, 2, UpdateStrategy::NoUpdate);
        assert_eq!(sel_no.order[1], 1, "no-update greedily re-picks the duplicate cluster");
    }

    #[test]
    fn benefits_are_recorded_in_pick_order() {
        let (f, u) = clustered();
        let sel = select_all_pairs(f.clone(), &f, u, 3, UpdateStrategy::ZeroFeatures);
        assert_eq!(sel.order.len(), 3);
        assert_eq!(sel.benefits.len(), 3);
        // Greedy benefits are non-increasing under ZeroFeatures updates on
        // this disjoint-cluster input.
        assert!(sel.benefits[0] >= sel.benefits[1]);
    }

    #[test]
    fn k_larger_than_n_selects_everything() {
        let (f, u) = clustered();
        let sel = select_all_pairs(f.clone(), &f, u, 99, UpdateStrategy::ZeroFeatures);
        assert_eq!(sel.order.len(), 5);
        let mut sorted = sel.order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5, "no repeats");
    }

    #[test]
    fn reset_allows_selection_past_coverage() {
        // Two identical queries: after picking one, the other's features
        // zero out; the reset must still allow it to be picked.
        let f = vec![vec_of(&[(0, 1.0)]), vec_of(&[(0, 1.0)])];
        let u = vec![0.6, 0.4];
        let sel = select_all_pairs(f.clone(), &f, u, 2, UpdateStrategy::ZeroFeatures);
        assert_eq!(sel.order.len(), 2);
    }

    #[test]
    fn empty_workload_selects_nothing() {
        let sel = select_all_pairs(Vec::new(), &[], Vec::new(), 3, UpdateStrategy::ZeroFeatures);
        assert!(sel.order.is_empty());
    }

    #[test]
    fn zero_feature_queries_are_skipped() {
        let f = vec![vec_of(&[(0, 0.0)]), vec_of(&[(1, 1.0)])];
        let u = vec![0.9, 0.1];
        let sel = select_all_pairs(f.clone(), &f, u, 1, UpdateStrategy::ZeroFeatures);
        assert_eq!(sel.order, vec![1], "all-zero query cannot be picked first");
    }
}
