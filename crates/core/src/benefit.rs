//! Influence and benefit (Defs 3–4 and 10 of the paper).

use crate::features::FeatureVec;
use crate::similarity::weighted_jaccard;

/// Influence of query `i` on query `j`:
/// `F_qi(qj) = S(qi, qj) × U(qj)` (Def 3).
pub fn influence(fi: &FeatureVec, fj: &FeatureVec, uj: f64) -> f64 {
    weighted_jaccard(fi, fj) * uj
}

/// Benefit of selecting query `i` alone (Def 4 / conditional benefit
/// Def 10 when features and utilities have been updated):
/// `B(qi) = U(qi) + Σ_{j≠i} F_qi(qj)`.
///
/// `features[j]`/`utilities[j]` are the *current* (possibly updated)
/// values; `selected[j]` marks queries already in the compressed workload,
/// which do not receive influence (two selected queries are both tuned).
pub fn conditional_benefit(
    i: usize,
    features: &[FeatureVec],
    utilities: &[f64],
    selected: &[bool],
) -> f64 {
    let mut b = utilities[i];
    for j in 0..features.len() {
        if j != i && !selected[j] {
            b += influence(&features[i], &features[j], utilities[j]);
        }
    }
    b
}

/// Sum of a query's similarities with every other query — the raw
/// "similarity with the workload" signal of Fig 6b.
pub fn similarity_with_workload(i: usize, features: &[FeatureVec]) -> f64 {
    (0..features.len())
        .filter(|&j| j != i)
        .map(|j| weighted_jaccard(&features[i], &features[j]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_common::{ColumnId, GlobalColumnId, TableId};

    fn vec_of(entries: &[(u32, f64)]) -> FeatureVec {
        FeatureVec::from_entries(
            entries
                .iter()
                .map(|&(c, w)| (GlobalColumnId::new(TableId(0), ColumnId(c)), w))
                .collect(),
        )
    }

    #[test]
    fn influence_scales_with_similarity_and_utility() {
        let a = vec_of(&[(0, 1.0)]);
        let b = vec_of(&[(0, 1.0), (1, 1.0)]);
        // S(a, b) = 1/2.
        assert!((influence(&a, &b, 0.4) - 0.2).abs() < 1e-12);
        assert_eq!(influence(&a, &vec_of(&[(5, 1.0)]), 0.4), 0.0);
    }

    #[test]
    fn benefit_adds_utility_and_influences() {
        let features =
            vec![vec_of(&[(0, 1.0)]), vec_of(&[(0, 1.0), (1, 1.0)]), vec_of(&[(9, 1.0)])];
        let utilities = vec![0.5, 0.3, 0.2];
        let selected = vec![false, false, false];
        // B(0) = 0.5 + S(0,1)*0.3 + S(0,2)*0.2 = 0.5 + 0.5*0.3 + 0 = 0.65
        let b0 = conditional_benefit(0, &features, &utilities, &selected);
        assert!((b0 - 0.65).abs() < 1e-12);
        // Similar neighbour with lower utility has lower benefit:
        // B(1) = 0.3 + 0.5*0.5 = 0.55.
        let b1 = conditional_benefit(1, &features, &utilities, &selected);
        assert!((b1 - 0.55).abs() < 1e-12);
        assert!(b1 < b0);
    }

    #[test]
    fn selected_queries_receive_no_influence() {
        let features = vec![vec_of(&[(0, 1.0)]), vec_of(&[(0, 1.0)])];
        let utilities = vec![0.5, 0.5];
        let none = conditional_benefit(0, &features, &utilities, &[false, false]);
        let other_selected = conditional_benefit(0, &features, &utilities, &[false, true]);
        assert!((none - 1.0).abs() < 1e-12);
        assert!((other_selected - 0.5).abs() < 1e-12);
    }

    #[test]
    fn similarity_with_workload_sums_pairwise() {
        let features =
            vec![vec_of(&[(0, 1.0)]), vec_of(&[(0, 1.0)]), vec_of(&[(0, 1.0), (1, 1.0)])];
        let s = similarity_with_workload(0, &features);
        assert!((s - 1.5).abs() < 1e-12);
    }
}
