//! The compressor contract shared by ISUM and all baselines.

use isum_common::Result;
use isum_workload::{CompressedWorkload, Workload};

/// A workload compression algorithm: selects `k` weighted queries from a
/// workload (Problem 1 of the paper).
///
/// `Send + Sync` is part of the contract: the experiments harness
/// evaluates independent methods concurrently on the [`isum_exec`] pool,
/// so a compressor must not hold thread-affine state (interior
/// mutability, if any, must be synchronized).
pub trait Compressor: Send + Sync {
    /// Display name used in experiment reports (e.g. "ISUM", "GSUM").
    fn name(&self) -> String;

    /// Selects `k` queries with weights.
    ///
    /// # Errors
    /// `InvalidConfig` when `k == 0` or the workload is empty. `k ≥ n`
    /// returns all queries (with weights still computed).
    fn compress(&self, workload: &Workload, k: usize) -> Result<CompressedWorkload>;
}

/// Validates common preconditions; shared by all implementations.
pub fn validate(workload: &Workload, k: usize) -> Result<()> {
    if k == 0 {
        return Err(isum_common::Error::InvalidConfig("k must be positive".into()));
    }
    if workload.is_empty() {
        return Err(isum_common::Error::InvalidConfig("empty workload".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_catalog::CatalogBuilder;

    #[test]
    fn validate_rejects_bad_inputs() {
        let catalog = CatalogBuilder::new().table("t", 10).col_key("a").finish().unwrap().build();
        let w = Workload::from_sql(catalog, &["SELECT a FROM t"]).unwrap();
        assert!(validate(&w, 0).is_err());
        assert!(validate(&w, 1).is_ok());
        let empty = Workload::from_sql(
            CatalogBuilder::new().table("t", 1).col_key("a").finish().unwrap().build(),
            &Vec::<String>::new(),
        )
        .unwrap();
        assert!(validate(&empty, 1).is_err());
    }
}
