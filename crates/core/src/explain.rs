//! Summary-quality introspection: per-member attribution and coverage.
//!
//! A compressed workload is only useful if it *represents* the input, but
//! the pipeline never reported how well. This module re-derives, from the
//! same feature vectors and utilities the selection ran on, (a) which
//! input templates each summary member stands in for — mirroring the
//! Algorithm 4 template-frequency and template-utility maps of
//! [`crate::weighting`] — and (b) a coverage gauge: the weighted Jaccard
//! between the summary features (Alg 3's `V = Σ U(q)·q`) of the selected
//! subset and of the whole workload, which is GSUM's coverage objective
//! evaluated on ISUM's linear summary form.
//!
//! Everything here is **observation-only**: inputs are taken by shared
//! reference, nothing feeds back into selection or weighting, and calling
//! [`explain_selection`] cannot perturb a compression result.

use std::collections::HashMap;

use isum_common::{QueryId, TemplateId};
use isum_workload::Workload;

use crate::features::{FeatureVec, Featurizer, WorkloadFeatures};
use crate::similarity::weighted_jaccard;
use crate::summary::summary_features;
use crate::utility::{utilities, UtilityMode};

/// Attribution for one member of a compressed workload: the template it
/// belongs to and how much of the workload that template accounts for.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberAttribution {
    /// The selected query.
    pub query: QueryId,
    /// Its normalized weight in the compressed workload.
    pub weight: f64,
    /// Template of the selected query.
    pub template: TemplateId,
    /// Input queries sharing that template (instances it stands in for).
    pub instances: usize,
    /// Selected queries sharing that template (Alg 4's `freq`).
    pub selected_instances: usize,
    /// Share of total normalized utility held by the template's instances.
    pub utility_share: f64,
}

/// Quality gauges plus per-member attribution for one selection.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryExplanation {
    /// Summary size (number of members).
    pub k: usize,
    /// Input workload size the summary was selected from.
    pub observed: usize,
    /// Distinct templates in the input workload.
    pub templates: usize,
    /// Weighted Jaccard between the summary features of the selected
    /// subset and of the full workload, in `[0, 1]`.
    pub coverage: f64,
    /// Input queries whose template has at least one selected instance.
    pub represented: usize,
    /// One entry per summary member, aligned with the selection order.
    pub members: Vec<MemberAttribution>,
}

impl SummaryExplanation {
    /// Fraction of input queries represented by a selected template.
    pub fn represented_fraction(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            self.represented as f64 / self.observed as f64
        }
    }
}

/// Coverage of a selected subset: weighted Jaccard between the summary
/// features of the selection and of the entire workload. `1.0` means the
/// selection's aggregate feature mass matches the workload's exactly
/// (e.g. `k = n`); `0.0` means no overlap (or an all-zero utility input).
pub fn selection_coverage(selected: &[QueryId], features: &[FeatureVec], utilities: &[f64]) -> f64 {
    let sel_features: Vec<FeatureVec> =
        selected.iter().map(|q| features[q.index()].clone()).collect();
    let sel_utilities: Vec<f64> = selected.iter().map(|q| utilities[q.index()]).collect();
    weighted_jaccard(
        &summary_features(&sel_features, &sel_utilities),
        &summary_features(features, utilities),
    )
}

/// [`selection_coverage`] computed from scratch under the default
/// rule-based featurization and the paper's default utility, regardless
/// of which compressor produced `selected`. The experiments harness uses
/// this to report one coverage gauge that is comparable across methods
/// (ISUM, GSUM, random, ...) in the same figure.
pub fn workload_coverage(workload: &Workload, selected: &[QueryId]) -> f64 {
    let wf = WorkloadFeatures::build(workload, &Featurizer::default());
    let u = utilities(workload, UtilityMode::CostTimesSelectivity);
    selection_coverage(selected, &wf.original, &u)
}

/// Derives attribution and coverage for a finished selection.
///
/// `entries` are the compressed workload's `(query, weight)` pairs;
/// `template_of`, `features`, and `utilities` describe every input query
/// (aligned by index) exactly as the weighting stage saw them. The
/// template maps mirror Algorithm 4: `selected_instances` is its `freq`,
/// and `utility_share` sums the normalized utilities of *all* instances
/// of a selected template, not just the selected ones.
pub fn explain_selection(
    entries: &[(QueryId, f64)],
    template_of: &[TemplateId],
    features: &[FeatureVec],
    utilities: &[f64],
) -> SummaryExplanation {
    let mut freq: HashMap<TemplateId, usize> = HashMap::new();
    for (q, _) in entries {
        *freq.entry(template_of[q.index()]).or_insert(0) += 1;
    }
    let mut instances: HashMap<TemplateId, usize> = HashMap::new();
    let mut utility_share: HashMap<TemplateId, f64> = HashMap::new();
    let mut distinct: HashMap<TemplateId, ()> = HashMap::new();
    let mut represented = 0usize;
    for (i, &t) in template_of.iter().enumerate() {
        distinct.entry(t).or_insert(());
        if freq.contains_key(&t) {
            represented += 1;
            *instances.entry(t).or_insert(0) += 1;
            *utility_share.entry(t).or_insert(0.0) += utilities[i];
        }
    }
    let selected: Vec<QueryId> = entries.iter().map(|(q, _)| *q).collect();
    let members = entries
        .iter()
        .map(|&(query, weight)| {
            let template = template_of[query.index()];
            MemberAttribution {
                query,
                weight,
                template,
                instances: instances[&template],
                selected_instances: freq[&template],
                utility_share: utility_share[&template],
            }
        })
        .collect();
    SummaryExplanation {
        k: entries.len(),
        observed: template_of.len(),
        templates: distinct.len(),
        coverage: selection_coverage(&selected, features, utilities),
        represented,
        members,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_common::{ColumnId, GlobalColumnId, TableId};

    fn gid(c: u32) -> GlobalColumnId {
        GlobalColumnId::new(TableId(0), ColumnId(c))
    }

    fn fv(entries: &[(u32, f64)]) -> FeatureVec {
        FeatureVec::from_entries(entries.iter().map(|&(c, w)| (gid(c), w)).collect())
    }

    #[test]
    fn attribution_mirrors_template_maps() {
        // Queries 0,1,3 share template 0; query 2 is template 1 (unselected
        // template 2 on query 4).
        let template_of: Vec<TemplateId> =
            [0, 0, 1, 0, 2].iter().map(|&t| TemplateId::from_index(t)).collect();
        let features = vec![
            fv(&[(0, 1.0)]),
            fv(&[(0, 0.9)]),
            fv(&[(1, 1.0)]),
            fv(&[(0, 0.8)]),
            fv(&[(2, 0.5)]),
        ];
        let utilities = vec![0.3, 0.25, 0.2, 0.15, 0.1];
        let entries = vec![(QueryId::from_index(0), 0.7), (QueryId::from_index(2), 0.3)];
        let e = explain_selection(&entries, &template_of, &features, &utilities);
        assert_eq!(e.k, 2);
        assert_eq!(e.observed, 5);
        assert_eq!(e.templates, 3);
        assert_eq!(e.represented, 4, "templates 0 and 1 cover queries 0,1,2,3");
        assert!((e.represented_fraction() - 0.8).abs() < 1e-12);
        let m0 = &e.members[0];
        assert_eq!(m0.instances, 3);
        assert_eq!(m0.selected_instances, 1);
        assert!((m0.utility_share - 0.7).abs() < 1e-12, "0.3 + 0.25 + 0.15");
        let m1 = &e.members[1];
        assert_eq!(m1.instances, 1);
        assert!((m1.utility_share - 0.2).abs() < 1e-12);
        assert!(e.coverage > 0.0 && e.coverage < 1.0);
    }

    #[test]
    fn full_selection_has_full_coverage() {
        let template_of: Vec<TemplateId> = (0..3).map(TemplateId::from_index).collect();
        let features = vec![fv(&[(0, 1.0)]), fv(&[(1, 0.5)]), fv(&[(2, 0.25)])];
        let utilities = vec![0.5, 0.3, 0.2];
        let entries: Vec<(QueryId, f64)> =
            (0..3).map(|i| (QueryId::from_index(i), 1.0 / 3.0)).collect();
        let e = explain_selection(&entries, &template_of, &features, &utilities);
        assert!((e.coverage - 1.0).abs() < 1e-12);
        assert_eq!(e.represented, 3);
        assert_eq!(e.templates, 3);
    }

    #[test]
    fn zero_utility_input_yields_zero_coverage_not_nan() {
        let template_of = vec![TemplateId::from_index(0), TemplateId::from_index(1)];
        let features = vec![fv(&[(0, 1.0)]), fv(&[(1, 1.0)])];
        let utilities = vec![0.0, 0.0];
        let entries = vec![(QueryId::from_index(0), 1.0)];
        let e = explain_selection(&entries, &template_of, &features, &utilities);
        assert_eq!(e.coverage, 0.0);
        assert!((e.members[0].utility_share - 0.0).abs() < 1e-12);
    }
}
