//! Query featurization (Sec 4.2 of the paper).
//!
//! A query's features are its indexable columns; feature values are weights
//! reflecting how important each column is for index selection. Two schemes
//! are implemented:
//!
//! * **Rule-based** (default ISUM): `w(c) = d(t,c)/d(t) × w_table(t)` where
//!   `d(t)` counts the candidate indexes Table 1's rules generate for table
//!   `t` and `d(t,c)` those containing `c`.
//! * **Stats-based** (ISUM-S): `w(c) = (1 − s(c)) × w_table(t)` where `s`
//!   is predicate selectivity for filter/join columns and density for
//!   group-by/order-by columns.
//!
//! Weights are min–max normalized per query. Vectors are sparse, sorted by
//! feature id, so similarity computations are merge joins without hashing.

use isum_catalog::Catalog;
use isum_common::stats::min_max_normalize;
use isum_common::GlobalColumnId;
use isum_workload::{indexable_columns, IndexableColumn, Workload};

/// Weighting scheme for feature values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightScheme {
    /// Count-of-candidate-indexes weighting (the paper's default ISUM).
    #[default]
    RuleBased,
    /// Selectivity/density weighting (ISUM-S).
    StatsBased,
}

/// A sparse feature vector: `(feature, weight)` sorted by feature id.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureVec {
    entries: Vec<(GlobalColumnId, f64)>,
}

impl FeatureVec {
    /// Builds a vector from unsorted entries (sorts, merges duplicates by
    /// keeping the maximum weight).
    pub fn from_entries(mut entries: Vec<(GlobalColumnId, f64)>) -> Self {
        entries.sort_by_key(|(g, _)| *g);
        let mut merged: Vec<(GlobalColumnId, f64)> = Vec::with_capacity(entries.len());
        for (g, w) in entries {
            match merged.last_mut() {
                Some((pg, pw)) if *pg == g => *pw = pw.max(w),
                _ => merged.push((g, w)),
            }
        }
        Self { entries: merged }
    }

    /// Entries sorted by feature id.
    pub fn entries(&self) -> &[(GlobalColumnId, f64)] {
        &self.entries
    }

    /// Weight of a feature (0 when absent).
    pub fn get(&self, g: GlobalColumnId) -> f64 {
        self.entries.binary_search_by_key(&g, |(k, _)| *k).map(|i| self.entries[i].1).unwrap_or(0.0)
    }

    /// Number of stored (possibly zero-valued) features.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no features are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when every stored weight is zero (the "covered" state of
    /// Algorithm 2 line 4).
    pub fn all_zero(&self) -> bool {
        self.entries.iter().all(|(_, w)| *w <= 0.0)
    }

    /// Sum of weights.
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|(_, w)| w).sum()
    }

    /// Subtracts a scalar from every *positive* weight, clamping at zero —
    /// the "reduce the weights by S(qi,qj)" update option of Sec 4.3.
    pub fn subtract_scalar(&mut self, s: f64) {
        for (_, w) in &mut self.entries {
            if *w > 0.0 {
                *w = (*w - s).max(0.0);
            }
        }
    }

    /// Zeroes every feature that is positive in `other` — the "set covered
    /// columns to zero" update option of Sec 4.3.
    pub fn zero_where_present(&mut self, other: &FeatureVec) {
        let mut i = 0;
        let mut j = 0;
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if other.entries[j].1 > 0.0 {
                        self.entries[i].1 = 0.0;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    /// Accumulates `weight × other` into `self` (used to build summary
    /// features; grows the vector as needed).
    pub fn add_scaled(&mut self, other: &FeatureVec, weight: f64) {
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let mut i = 0;
        let mut j = 0;
        while i < self.entries.len() || j < other.entries.len() {
            let take_self = j >= other.entries.len()
                || (i < self.entries.len() && self.entries[i].0 <= other.entries[j].0);
            let take_other = i >= self.entries.len()
                || (j < other.entries.len() && other.entries[j].0 <= self.entries[i].0);
            match (take_self, take_other) {
                (true, true) => {
                    merged
                        .push((self.entries[i].0, self.entries[i].1 + weight * other.entries[j].1));
                    i += 1;
                    j += 1;
                }
                (true, false) => {
                    merged.push(self.entries[i]);
                    i += 1;
                }
                (false, true) => {
                    merged.push((other.entries[j].0, weight * other.entries[j].1));
                    j += 1;
                }
                (false, false) => unreachable!("one side must advance"),
            }
        }
        self.entries = merged;
    }
}

/// Builds feature vectors for queries.
#[derive(Debug, Clone, Copy)]
pub struct Featurizer {
    /// Weighting scheme.
    pub scheme: WeightScheme,
    /// Include the `w_table` factor (false reproduces ISUM-NoTable,
    /// Fig 10).
    pub use_table_weight: bool,
}

impl Default for Featurizer {
    fn default() -> Self {
        Self { scheme: WeightScheme::RuleBased, use_table_weight: true }
    }
}

impl Featurizer {
    /// Featurizes one query from its indexable columns.
    pub fn features(&self, cols: &[IndexableColumn], catalog: &Catalog) -> FeatureVec {
        if cols.is_empty() {
            return FeatureVec::default();
        }
        // w_table: table rows normalized over the referenced tables.
        let mut tables: Vec<(isum_common::TableId, u64)> = Vec::new();
        for c in cols {
            if !tables.iter().any(|(t, _)| *t == c.gid.table) {
                tables.push((c.gid.table, c.table_rows));
            }
        }
        let total_rows: u64 = tables.iter().map(|(_, r)| r).sum();
        let table_weight = |t: isum_common::TableId| -> f64 {
            if !self.use_table_weight || total_rows == 0 {
                1.0
            } else {
                // Every queried table was collected above; an unknown id
                // (impossible today) degrades to the neutral weight rather
                // than panicking (no-panic contract, DESIGN.md §9).
                match tables.iter().find(|(tt, _)| *tt == t) {
                    Some(&(_, rows)) => rows as f64 / total_rows as f64,
                    None => 1.0,
                }
            }
        };
        let raw: Vec<f64> = match self.scheme {
            WeightScheme::StatsBased => cols
                .iter()
                .map(|c| {
                    // Selectivity for filter/join columns, density for
                    // grouping/ordering-only columns (Sec 4.2).
                    let s = if c.positions.filter || c.positions.join {
                        c.selectivity
                    } else {
                        c.density
                    };
                    (1.0 - s).max(0.0) * table_weight(c.gid.table)
                })
                .collect(),
            WeightScheme::RuleBased => rule_based_weights(cols, &|t| table_weight(t)),
        };
        let _ = catalog;
        let norm = min_max_normalize(&raw);
        FeatureVec::from_entries(cols.iter().map(|c| c.gid).zip(norm).collect())
    }
}

/// Rule-based weights: for each table, enumerate the candidate key-sets the
/// Table-1 rules generate from this query's columns and weight each column
/// by the fraction of candidates containing it.
fn rule_based_weights(
    cols: &[IndexableColumn],
    table_weight: &dyn Fn(isum_common::TableId) -> f64,
) -> Vec<f64> {
    let mut weights = vec![0.0; cols.len()];
    let mut tables: Vec<isum_common::TableId> = cols.iter().map(|c| c.gid.table).collect();
    tables.sort_unstable();
    tables.dedup();
    for t in tables {
        let idx: Vec<usize> = (0..cols.len()).filter(|&i| cols[i].gid.table == t).collect();
        let sel: Vec<usize> =
            idx.iter().copied().filter(|&i| cols[i].positions.filter && cols[i].sargable).collect();
        let join: Vec<usize> = idx.iter().copied().filter(|&i| cols[i].positions.join).collect();
        let group: Vec<usize> =
            idx.iter().copied().filter(|&i| cols[i].positions.group_by).collect();
        let order: Vec<usize> =
            idx.iter().copied().filter(|&i| cols[i].positions.order_by).collect();
        // Weak columns (non-sargable filters) participate in no rule but
        // still get a small floor weight below.
        let mut candidates: Vec<Vec<usize>> = Vec::new();
        // R1: one candidate per selection column.
        for &s in &sel {
            candidates.push(vec![s]);
        }
        // R2: one per join column.
        for &j in &join {
            candidates.push(vec![j]);
        }
        // R3 / R4: selection+join in both orders (sets are equal but they
        // are distinct candidates, doubling membership counts for both).
        if !sel.is_empty() && !join.is_empty() {
            let both: Vec<usize> = sel.iter().chain(&join).copied().collect();
            candidates.push(both.clone());
            candidates.push(both);
        }
        // R5 / R7: order-by leading.
        if !order.is_empty() {
            let tail: Vec<usize> = sel.iter().chain(&join).copied().collect();
            let full: Vec<usize> = order.iter().chain(&tail).copied().collect();
            candidates.push(full.clone());
            candidates.push(full);
        }
        // R6 / R8: group-by leading.
        if !group.is_empty() {
            let tail: Vec<usize> = sel.iter().chain(&join).copied().collect();
            let full: Vec<usize> = group.iter().chain(&tail).copied().collect();
            candidates.push(full.clone());
            candidates.push(full);
        }
        let d_t = candidates.len().max(1) as f64;
        let wt = table_weight(t);
        for &i in &idx {
            let d_tc = candidates.iter().filter(|cand| cand.contains(&i)).count() as f64;
            // Floor: a weak column appears in no candidate but remains a
            // (faint) feature so similarity still sees it.
            weights[i] = ((d_tc / d_t).max(0.02)) * wt;
        }
    }
    weights
}

/// Prepared per-workload feature state shared by the selection algorithms.
#[derive(Debug, Clone)]
pub struct WorkloadFeatures {
    /// Current (possibly updated) feature vectors, one per query.
    pub features: Vec<FeatureVec>,
    /// Pristine feature vectors (for the reset rule of Alg 2 line 12).
    pub original: Vec<FeatureVec>,
}

impl WorkloadFeatures {
    /// Featurizes every query of a workload. Queries are independent, so
    /// featurization fans out over the [`isum_exec`] pool; results are
    /// collected in query order, making the output identical to the
    /// sequential map.
    pub fn build(workload: &Workload, featurizer: &Featurizer) -> Self {
        let features: Vec<FeatureVec> = isum_exec::par_map(&workload.queries, |q| {
            let cols = indexable_columns(&q.bound, &workload.catalog);
            featurizer.features(&cols, &workload.catalog)
        });
        Self { original: features.clone(), features }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when there are no queries.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Restores every query's features to the pristine vectors.
    pub fn reset(&mut self) {
        self.features.clone_from(&self.original);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_catalog::CatalogBuilder;
    use isum_common::{ColumnId, TableId};
    use isum_sql::{parse, Binder};

    fn catalog() -> Catalog {
        CatalogBuilder::new()
            .table("big", 1_000_000)
            .col_key("b_key")
            .col_int("b_attr", 1000, 0, 1000)
            .col_int("b_other", 50, 0, 50)
            .finish()
            .unwrap()
            .table("small", 1000)
            .col_key("s_key")
            .col_int("s_attr", 100, 0, 100)
            .finish()
            .unwrap()
            .build()
    }

    fn featurize(sql: &str, f: &Featurizer) -> FeatureVec {
        let c = catalog();
        let b = Binder::new(&c).bind(&parse(sql).unwrap()).unwrap();
        let cols = indexable_columns(&b, &c);
        f.features(&cols, &c)
    }

    fn gid(t: u32, c: u32) -> GlobalColumnId {
        GlobalColumnId::new(TableId(t), ColumnId(c))
    }

    #[test]
    fn feature_vec_basics() {
        let v =
            FeatureVec::from_entries(vec![(gid(0, 2), 0.5), (gid(0, 1), 1.0), (gid(0, 2), 0.3)]);
        assert_eq!(v.len(), 2, "duplicates merged");
        assert_eq!(v.get(gid(0, 2)), 0.5, "max kept");
        assert_eq!(v.get(gid(0, 9)), 0.0);
        assert!((v.total() - 1.5).abs() < 1e-12);
        assert!(!v.all_zero());
    }

    #[test]
    fn subtract_and_zero_updates() {
        let mut v = FeatureVec::from_entries(vec![(gid(0, 0), 0.6), (gid(0, 1), 0.2)]);
        v.subtract_scalar(0.3);
        assert!((v.get(gid(0, 0)) - 0.3).abs() < 1e-12);
        assert_eq!(v.get(gid(0, 1)), 0.0);
        let other = FeatureVec::from_entries(vec![(gid(0, 0), 1.0)]);
        v.zero_where_present(&other);
        assert!(v.all_zero());
    }

    #[test]
    fn add_scaled_merges_sorted() {
        let mut v = FeatureVec::from_entries(vec![(gid(0, 0), 1.0), (gid(0, 2), 1.0)]);
        let o = FeatureVec::from_entries(vec![(gid(0, 1), 2.0), (gid(0, 2), 2.0)]);
        v.add_scaled(&o, 0.5);
        assert_eq!(v.get(gid(0, 0)), 1.0);
        assert_eq!(v.get(gid(0, 1)), 1.0);
        assert_eq!(v.get(gid(0, 2)), 2.0);
        // Entries stay sorted.
        let keys: Vec<_> = v.entries().iter().map(|(g, _)| *g).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn selective_columns_weigh_more_stats_based() {
        let f = Featurizer { scheme: WeightScheme::StatsBased, use_table_weight: false };
        // b_attr: eq on ndv 1000 → sel 0.001; b_other: eq on ndv 50 → 0.02.
        let v = featurize("SELECT b_key FROM big WHERE b_attr = 5 AND b_other = 3", &f);
        assert!(v.len() == 2);
        let attr = v.entries()[1].1.max(v.entries()[0].1);
        let other = v.entries()[1].1.min(v.entries()[0].1);
        assert!(attr >= other, "more selective column should not weigh less");
    }

    #[test]
    fn table_weight_scales_small_tables_down() {
        let with = Featurizer { scheme: WeightScheme::StatsBased, use_table_weight: true };
        let v = featurize(
            "SELECT b_key FROM big, small WHERE b_key = s_key AND b_attr = 5 AND s_attr = 2",
            &with,
        );
        // small has 1/1000 of big's rows: its filter column weight must be
        // far below big's.
        let s_attr = v.get(gid(1, 1));
        let b_attr = v.get(gid(0, 1));
        assert!(s_attr < b_attr / 10.0, "s_attr={s_attr} b_attr={b_attr}");
        let without = Featurizer { scheme: WeightScheme::StatsBased, use_table_weight: false };
        let v2 = featurize(
            "SELECT b_key FROM big, small WHERE b_key = s_key AND b_attr = 5 AND s_attr = 2",
            &without,
        );
        assert!(v2.get(gid(1, 1)) > s_attr, "NoTable variant boosts small-table columns");
    }

    #[test]
    fn rule_based_weights_follow_candidate_membership() {
        let f = Featurizer::default();
        // b_attr is a selection column; b_key joins; selection+join combos
        // mean both appear in R3/R4, but order-by-only columns appear in
        // fewer candidates.
        let v = featurize(
            "SELECT b_attr FROM big, small WHERE b_key = s_key AND b_attr = 5 ORDER BY b_other",
            &f,
        );
        let w_sel = v.get(gid(0, 1));
        let w_order = v.get(gid(0, 2));
        assert!(
            w_sel > w_order,
            "selection column in more candidates than order-by: {w_sel} vs {w_order}"
        );
    }

    #[test]
    fn normalization_tops_out_near_one() {
        let f = Featurizer::default();
        let v = featurize("SELECT b_key FROM big WHERE b_attr = 5 AND b_other > 10", &f);
        let max = v.entries().iter().map(|(_, w)| *w).fold(0.0, f64::max);
        assert!(max > 0.9, "min-max normalized max ≈ 1, got {max}");
    }

    #[test]
    fn workload_features_reset_restores() {
        let c = catalog();
        let w = isum_workload::Workload::from_sql(
            c,
            &["SELECT b_key FROM big WHERE b_attr = 1", "SELECT s_key FROM small WHERE s_attr = 2"],
        )
        .unwrap();
        let mut wf = WorkloadFeatures::build(&w, &Featurizer::default());
        assert_eq!(wf.len(), 2);
        let orig = wf.features[0].clone();
        wf.features[0].subtract_scalar(10.0);
        assert!(wf.features[0].all_zero());
        wf.reset();
        assert_eq!(wf.features[0], orig);
    }
}
