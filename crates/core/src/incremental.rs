//! Incremental workload compression (Sec 10 of the paper flags this as
//! future work: "ISUM requires pre-processing all the queries from the
//! input workload before it can select queries for tuning").
//!
//! [`IncrementalIsum`] removes the batch constraint: queries are *observed*
//! one at a time (featurization, utility bookkeeping, and template
//! interning happen per arrival, in O(features) each), and a compressed
//! workload can be requested at any point from the state accumulated so
//! far. Observing more queries never requires re-processing earlier ones —
//! the expensive part of preprocessing is incremental; only the final
//! greedy selection runs on demand.
//!
//! [`IncrementalIsum::select`] runs the *identical* pipeline as the batch
//! [`crate::Isum`]'s [`compress`](crate::Compressor::compress) — same
//! utilities, same greedy selection, same
//! Alg 4 + Alg 5 weighting — so for the same observed queries the streamed
//! result is bit-identical to the batch result (pinned by the
//! streaming/batch equivalence tests). The accumulated state also
//! serializes to a crash-safe [`snapshot`](IncrementalIsum::snapshot) and
//! [`restore`](IncrementalIsum::restore)s bit-exactly, which is how the
//! serving daemon (`crates/server`) survives a SIGKILL.

use isum_catalog::Catalog;
use isum_common::{hex_bits, unhex_bits, Json};
use isum_common::{ColumnId, GlobalColumnId, QueryId, Result, TableId, TemplateId};
use isum_sql::TemplateRegistry;
use isum_workload::{indexable_columns, QueryInfo, Workload};

use crate::allpairs;
use crate::allpairs::Selection;
use crate::features::{FeatureVec, Featurizer};
use crate::isum::{Algorithm, IsumConfig};
use crate::summary::select_summary;
use crate::utility::UtilityMode;
use crate::weighting::weigh_selected;
use isum_workload::CompressedWorkload;

/// Streaming ISUM: observe queries as they arrive, select any time.
#[derive(Debug)]
pub struct IncrementalIsum {
    config: IsumConfig,
    featurizer: Featurizer,
    features: Vec<FeatureVec>,
    /// Unnormalized Δ(q) per observed query.
    raw_reductions: Vec<f64>,
    costs: Vec<f64>,
    templates: TemplateRegistry,
    template_of: Vec<TemplateId>,
}

impl IncrementalIsum {
    /// Streaming compressor with the given configuration.
    pub fn new(config: IsumConfig) -> Self {
        Self {
            config,
            featurizer: Featurizer {
                scheme: config.scheme,
                use_table_weight: config.use_table_weight,
            },
            features: Vec::new(),
            raw_reductions: Vec::new(),
            costs: Vec::new(),
            templates: TemplateRegistry::new(),
            template_of: Vec::new(),
        }
    }

    /// The configuration this compressor was built with.
    pub fn config(&self) -> IsumConfig {
        self.config
    }

    /// Observes one query (with its cost already set). O(features of q).
    ///
    /// # Errors
    /// Propagates a parse error when `q.sql` no longer parses (a corrupted
    /// `QueryInfo`); the observer's state is unchanged in that case.
    pub fn observe(&mut self, q: &QueryInfo, catalog: &Catalog) -> Result<()> {
        let _s = isum_common::telemetry::span("incremental");
        // Template interning re-parses the SQL; do it first so a failure
        // leaves no partial state behind.
        let stmt = isum_sql::parse(&q.sql)?;
        isum_common::count!("core.incremental.observed");
        let cols = indexable_columns(&q.bound, catalog);
        self.features.push(self.featurizer.features(&cols, catalog));
        let delta = match self.config.utility {
            UtilityMode::CostOnly => q.cost,
            UtilityMode::CostTimesSelectivity => {
                (1.0 - q.bound.average_selectivity()).max(0.0) * q.cost
            }
        };
        self.raw_reductions.push(delta);
        self.costs.push(q.cost);
        let t = self.templates.intern(&stmt);
        self.template_of.push(t);
        Ok(())
    }

    /// Observes every query of a workload, in order.
    ///
    /// # Errors
    /// Propagates the first [`observe`](Self::observe) failure.
    pub fn observe_workload(&mut self, w: &Workload) -> Result<()> {
        for q in &w.queries {
            self.observe(q, &w.catalog)?;
        }
        Ok(())
    }

    /// Number of queries observed so far.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Selects `k` queries from everything observed so far, weighted with
    /// the configured strategy (by default Alg 4 template redistribution +
    /// Alg 5 recalibration — the same pipeline as the batch compressor, so
    /// streamed and batch results are bit-identical for the same input).
    ///
    /// # Errors
    /// `InvalidConfig` when `k == 0` or nothing has been observed.
    pub fn select(&self, k: usize) -> Result<CompressedWorkload> {
        if k == 0 {
            return Err(isum_common::Error::InvalidConfig("k must be positive".into()));
        }
        if self.is_empty() {
            return Err(isum_common::Error::InvalidConfig("no queries observed".into()));
        }
        let _s = isum_common::telemetry::span("incremental");
        let utilities = self.normalized_utilities();
        let selection: Selection = match self.config.algorithm {
            Algorithm::SummaryFeatures => select_summary(
                self.features.clone(),
                &self.features,
                utilities.clone(),
                k,
                self.config.update,
            ),
            Algorithm::AllPairs => allpairs::select_all_pairs(
                self.features.clone(),
                &self.features,
                utilities.clone(),
                k,
                self.config.update,
            ),
        };
        let weights = weigh_selected(
            self.config.weighting,
            &self.template_of,
            &selection,
            &self.features,
            &utilities,
        );
        let mut cw = CompressedWorkload {
            entries: selection
                .order
                .iter()
                .zip(weights)
                .map(|(&i, w)| (QueryId::from_index(i), w))
                .collect(),
        };
        cw.normalize_weights();
        Ok(cw)
    }

    /// Same normalization as `utility::utilities` on the batch path.
    fn normalized_utilities(&self) -> Vec<f64> {
        let total: f64 = self.raw_reductions.iter().sum();
        if total <= 0.0 {
            vec![0.0; self.len()]
        } else {
            self.raw_reductions.iter().map(|r| r / total).collect()
        }
    }

    /// Selects `k` queries and derives per-member attribution + coverage
    /// for the result. Observation-only: the underlying selection is
    /// exactly what [`select`](Self::select) returns, and this method
    /// takes `&self` — it cannot perturb future selections.
    ///
    /// # Errors
    /// Same failure modes as [`select`](Self::select).
    pub fn explain(&self, k: usize) -> Result<crate::SummaryExplanation> {
        let cw = self.select(k)?;
        let utilities = self.normalized_utilities();
        Ok(crate::explain::explain_selection(
            &cw.entries,
            &self.template_of,
            &self.features,
            &utilities,
        ))
    }

    /// Distinct templates observed so far.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// Fingerprint text of an observed template.
    pub fn template_fingerprint(&self, t: TemplateId) -> &str {
        self.templates.fingerprint_of(t)
    }

    /// Unnormalized utility mass (Δ) accumulated per template, indexed by
    /// [`TemplateId`]. The drift detector normalizes this into the
    /// "everything observed" distribution.
    pub fn template_mass(&self) -> Vec<f64> {
        let mut mass = vec![0.0; self.templates.len()];
        for (i, t) in self.template_of.iter().enumerate() {
            mass[t.index()] += self.raw_reductions[i];
        }
        mass
    }

    /// The `(template, unnormalized Δ)` pairs of observations number
    /// `from..len()`, in arrival order — how the serving drift window
    /// consumes new arrivals without re-reading earlier ones.
    pub fn observations_since(&self, from: usize) -> Vec<(TemplateId, f64)> {
        (from..self.len()).map(|i| (self.template_of[i], self.raw_reductions[i])).collect()
    }

    /// Exports this observer's contribution to a cross-shard merge: every
    /// observed query's `(Δ, features)` grouped by template fingerprint
    /// (the shard-independent template identity — local [`TemplateId`]s
    /// mean nothing to other shards). See [`crate::merge`] for how the
    /// partials fold deterministically.
    pub fn shard_partial(&self) -> crate::merge::ShardPartial {
        let mut grouped: Vec<(String, Vec<crate::merge::Contribution>)> = (0..self.templates.len())
            .map(|t| {
                (self.templates.fingerprint_of(TemplateId::from_index(t)).to_string(), Vec::new())
            })
            .collect();
        for i in 0..self.len() {
            grouped[self.template_of[i].index()].1.push(crate::merge::Contribution {
                delta: self.raw_reductions[i],
                entries: self.features[i].entries().to_vec(),
            });
        }
        crate::merge::ShardPartial { templates: grouped }
    }

    /// Serializes the observed state to JSON. Every `f64` is stored as its
    /// IEEE-754 bit pattern ([`isum_common::hex_bits`]), so
    /// [`restore`](Self::restore) rebuilds the state bit-exactly and a
    /// post-restore [`select`](Self::select) returns the same compressed
    /// workload as the original instance would have.
    pub fn snapshot(&self) -> Json {
        let queries: Vec<Json> = (0..self.len())
            .map(|i| {
                let feats: Vec<Json> = self.features[i]
                    .entries()
                    .iter()
                    .map(|(g, w)| {
                        Json::Arr(vec![
                            Json::from(g.table.index()),
                            Json::from(g.column.index()),
                            Json::from(hex_bits(*w)),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("features".into(), Json::Arr(feats)),
                    ("delta_bits".into(), Json::from(hex_bits(self.raw_reductions[i]))),
                    ("cost_bits".into(), Json::from(hex_bits(self.costs[i]))),
                    ("template".into(), Json::from(self.template_of[i].index())),
                ])
            })
            .collect();
        let fps: Vec<Json> = (0..self.templates.len())
            .map(|t| Json::from(self.templates.fingerprint_of(TemplateId::from_index(t))))
            .collect();
        Json::Obj(vec![
            ("version".into(), Json::from(1u64)),
            ("templates".into(), Json::Arr(fps)),
            ("queries".into(), Json::Arr(queries)),
        ])
    }

    /// Rebuilds an observer from a [`snapshot`](Self::snapshot).
    ///
    /// # Errors
    /// `Io` when the snapshot is structurally corrupt (missing fields, bad
    /// bit patterns, out-of-range template references).
    pub fn restore(config: IsumConfig, snapshot: &Json) -> Result<Self> {
        fn corrupt(what: &str) -> isum_common::Error {
            isum_common::Error::Io(format!("corrupt IncrementalIsum snapshot: {what}"))
        }
        let mut inc = Self::new(config);
        let fps = snapshot
            .get("templates")
            .and_then(Json::as_array)
            .ok_or_else(|| corrupt("missing `templates`"))?;
        for fp in fps {
            let fp = fp.as_str().ok_or_else(|| corrupt("non-string template fingerprint"))?;
            inc.templates.intern_fingerprint(fp.to_string());
        }
        let queries = snapshot
            .get("queries")
            .and_then(Json::as_array)
            .ok_or_else(|| corrupt("missing `queries`"))?;
        for q in queries {
            let feats = q
                .get("features")
                .and_then(Json::as_array)
                .ok_or_else(|| corrupt("missing `features`"))?;
            let mut entries = Vec::with_capacity(feats.len());
            for f in feats {
                let triple = f.as_array().ok_or_else(|| corrupt("non-array feature"))?;
                let [t, c, w] = triple else {
                    return Err(corrupt("feature is not [table, column, bits]"));
                };
                let gid = GlobalColumnId::new(
                    TableId::from_index(
                        t.as_u64().ok_or_else(|| corrupt("feature table id"))? as usize
                    ),
                    ColumnId::from_index(
                        c.as_u64().ok_or_else(|| corrupt("feature column id"))? as usize
                    ),
                );
                let w = w
                    .as_str()
                    .and_then(unhex_bits)
                    .ok_or_else(|| corrupt("feature weight bits"))?;
                entries.push((gid, w));
            }
            inc.features.push(FeatureVec::from_entries(entries));
            let bits = |key: &str| -> Result<f64> {
                q.get(key)
                    .and_then(Json::as_str)
                    .and_then(unhex_bits)
                    .ok_or_else(|| corrupt(&format!("`{key}`")))
            };
            inc.raw_reductions.push(bits("delta_bits")?);
            inc.costs.push(bits("cost_bits")?);
            let t = q
                .get("template")
                .and_then(Json::as_u64)
                .ok_or_else(|| corrupt("missing `template`"))? as usize;
            if t >= inc.templates.len() {
                return Err(corrupt("template index out of range"));
            }
            inc.template_of.push(TemplateId::from_index(t));
        }
        Ok(inc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Compressor;
    use isum_catalog::CatalogBuilder;

    fn workload() -> Workload {
        let catalog = CatalogBuilder::new()
            .table("t", 500_000)
            .col_key("a")
            .col_int("b", 5_000, 0, 5_000)
            .col_int("c", 100, 0, 100)
            .finish()
            .expect("fresh table")
            .build();
        let mut w = Workload::from_sql(
            catalog,
            &[
                "SELECT a FROM t WHERE b = 1",
                "SELECT a FROM t WHERE b = 2",
                "SELECT a FROM t WHERE c > 50 GROUP BY c",
                "SELECT a FROM t WHERE b = 3",
                "SELECT count(*) FROM t WHERE c = 9 GROUP BY c ORDER BY c",
            ],
        )
        .expect("queries bind");
        w.set_costs(&[500.0, 450.0, 300.0, 400.0, 250.0]);
        w
    }

    #[test]
    fn streaming_matches_batch_bit_identically() {
        let w = workload();
        let mut inc = IncrementalIsum::new(IsumConfig::isum());
        inc.observe_workload(&w).expect("observes");
        let streamed = inc.select(3).expect("valid state");
        let batch = crate::Isum::new().compress(&w, 3).expect("compresses");
        assert_eq!(streamed.ids(), batch.ids(), "same inputs, same greedy choices");
        for ((_, sw), (_, bw)) in streamed.entries.iter().zip(&batch.entries) {
            assert_eq!(sw.to_bits(), bw.to_bits(), "weights must be bit-identical");
        }
    }

    #[test]
    fn can_select_between_observations() {
        let w = workload();
        let mut inc = IncrementalIsum::new(IsumConfig::isum());
        inc.observe(&w.queries[0], &w.catalog).expect("observes");
        inc.observe(&w.queries[1], &w.catalog).expect("observes");
        let early = inc.select(1).expect("valid state");
        assert_eq!(early.len(), 1);
        inc.observe(&w.queries[2], &w.catalog).expect("observes");
        inc.observe(&w.queries[3], &w.catalog).expect("observes");
        inc.observe(&w.queries[4], &w.catalog).expect("observes");
        let late = inc.select(3).expect("valid state");
        assert_eq!(late.len(), 3);
        assert_eq!(inc.len(), 5);
        assert_eq!(inc.template_count(), 3);
    }

    #[test]
    fn rejects_empty_and_k_zero() {
        let inc = IncrementalIsum::new(IsumConfig::isum());
        assert!(inc.select(1).is_err());
        let w = workload();
        let mut inc = IncrementalIsum::new(IsumConfig::isum());
        inc.observe_workload(&w).expect("observes");
        assert!(inc.select(0).is_err());
    }

    #[test]
    fn corrupted_sql_is_an_error_not_a_panic() {
        let w = workload();
        let mut q = w.queries[0].clone();
        q.sql = "SELECT FROM".into();
        let mut inc = IncrementalIsum::new(IsumConfig::isum());
        assert!(inc.observe(&q, &w.catalog).is_err());
        assert!(inc.is_empty(), "failed observe leaves no partial state");
    }

    #[test]
    fn weights_are_normalized() {
        let w = workload();
        let mut inc = IncrementalIsum::new(IsumConfig::isum());
        inc.observe_workload(&w).expect("observes");
        let cw = inc.select(3).expect("valid state");
        let total: f64 = cw.entries.iter().map(|(_, wt)| wt).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn explain_matches_select_and_covers_everything_at_k_n() {
        let w = workload();
        let mut inc = IncrementalIsum::new(IsumConfig::isum());
        inc.observe_workload(&w).expect("observes");
        let cw = inc.select(3).expect("selects");
        let e = inc.explain(3).expect("explains");
        assert_eq!(e.k, 3);
        assert_eq!(e.observed, 5);
        assert_eq!(e.templates, 3);
        let member_ids: Vec<_> = e.members.iter().map(|m| m.query).collect();
        assert_eq!(member_ids, cw.ids(), "explain reports the same selection");
        for (m, (_, w)) in e.members.iter().zip(&cw.entries) {
            assert_eq!(m.weight.to_bits(), w.to_bits());
        }
        assert!(e.coverage > 0.0 && e.coverage <= 1.0);
        // Selecting everything covers everything.
        let full = inc.explain(5).expect("explains");
        assert!((full.coverage - 1.0).abs() < 1e-9);
        assert_eq!(full.represented, 5);
        // explain() took &self and perturbed nothing.
        let again = inc.select(3).expect("selects");
        assert_eq!(again, cw);
    }

    #[test]
    fn template_mass_and_observations_since_track_arrivals() {
        let w = workload();
        let mut inc = IncrementalIsum::new(IsumConfig::isum());
        inc.observe(&w.queries[0], &w.catalog).expect("observes");
        inc.observe(&w.queries[1], &w.catalog).expect("observes");
        let seen = inc.len();
        inc.observe(&w.queries[2], &w.catalog).expect("observes");
        let fresh = inc.observations_since(seen);
        assert_eq!(fresh.len(), 1);
        assert!(fresh[0].1 > 0.0, "cost-bearing query carries mass");
        let mass = inc.template_mass();
        assert_eq!(mass.len(), inc.template_count());
        let total: f64 = mass.iter().sum();
        let direct: f64 = (0..inc.len())
            .map(|i| inc.observations_since(i).first().map_or(0.0, |(_, m)| *m))
            .sum();
        assert!((total - direct).abs() < 1e-9);
        assert!(!inc.template_fingerprint(fresh[0].0).is_empty());
    }

    #[test]
    fn shard_partials_merge_like_a_single_observer() {
        let w = workload();
        let mut whole = IncrementalIsum::new(IsumConfig::isum());
        whole.observe_workload(&w).expect("observes");
        let mut a = IncrementalIsum::new(IsumConfig::isum());
        let mut b = IncrementalIsum::new(IsumConfig::isum());
        for (i, q) in w.queries.iter().enumerate() {
            let shard = if i % 2 == 0 { &mut a } else { &mut b };
            shard.observe(q, &w.catalog).expect("observes");
        }
        let merged_whole = crate::merge::merge_partials(&[whole.shard_partial()]);
        let merged_split = crate::merge::merge_partials(&[a.shard_partial(), b.shard_partial()]);
        assert_eq!(merged_split.observed, merged_whole.observed);
        assert_eq!(merged_split.templates.len(), merged_whole.templates.len());
        let bits = |m: &crate::merge::MergedWorkload| -> Vec<(isum_common::GlobalColumnId, u64)> {
            m.summary_features().entries().iter().map(|&(g, v)| (g, v.to_bits())).collect()
        };
        assert_eq!(
            bits(&merged_split),
            bits(&merged_whole),
            "split observers merge bit-identically"
        );
    }

    #[test]
    fn snapshot_restore_is_bit_exact() {
        let w = workload();
        let mut inc = IncrementalIsum::new(IsumConfig::isum());
        inc.observe_workload(&w).expect("observes");
        let snap = inc.snapshot();
        // Through a serialize/parse round trip, like the server checkpoint.
        let reparsed = Json::parse(&snap.to_pretty()).expect("snapshot is valid JSON");
        let back = IncrementalIsum::restore(IsumConfig::isum(), &reparsed).expect("restores");
        assert_eq!(back.len(), inc.len());
        assert_eq!(back.template_count(), inc.template_count());
        let a = inc.select(3).expect("selects");
        let b = back.select(3).expect("selects");
        assert_eq!(a.ids(), b.ids());
        for ((_, wa), (_, wb)) in a.entries.iter().zip(&b.entries) {
            assert_eq!(wa.to_bits(), wb.to_bits());
        }
    }

    #[test]
    fn restore_rejects_corrupt_snapshots() {
        let bad = Json::parse(r#"{"version": 1, "templates": ["fp"]}"#).expect("parses");
        assert!(IncrementalIsum::restore(IsumConfig::isum(), &bad).is_err());
        let bad = Json::parse(
            r#"{"version": 1, "templates": [], "queries":
               [{"features": [], "delta_bits": "xyz", "cost_bits": "0", "template": 0}]}"#,
        )
        .expect("parses");
        assert!(IncrementalIsum::restore(IsumConfig::isum(), &bad).is_err());
    }
}
