//! Incremental workload compression (Sec 10 of the paper flags this as
//! future work: "ISUM requires pre-processing all the queries from the
//! input workload before it can select queries for tuning").
//!
//! [`IncrementalIsum`] removes the batch constraint: queries are *observed*
//! one at a time (featurization, utility bookkeeping, and template
//! interning happen per arrival, in O(features) each), and a compressed
//! workload can be requested at any point from the state accumulated so
//! far. Observing more queries never requires re-processing earlier ones —
//! the expensive part of preprocessing is incremental; only the final
//! greedy selection runs on demand.

use isum_catalog::Catalog;
use isum_common::{QueryId, Result, TemplateId};
use isum_sql::TemplateRegistry;
use isum_workload::{indexable_columns, QueryInfo, Workload};

use crate::allpairs;
use crate::allpairs::Selection;
use crate::features::{FeatureVec, Featurizer};
use crate::isum::{Algorithm, IsumConfig};
use crate::summary::select_summary;
use crate::utility::UtilityMode;
use isum_workload::CompressedWorkload;

/// Streaming ISUM: observe queries as they arrive, select any time.
#[derive(Debug)]
pub struct IncrementalIsum {
    config: IsumConfig,
    featurizer: Featurizer,
    features: Vec<FeatureVec>,
    /// Unnormalized Δ(q) per observed query.
    raw_reductions: Vec<f64>,
    costs: Vec<f64>,
    templates: TemplateRegistry,
    template_of: Vec<TemplateId>,
}

impl IncrementalIsum {
    /// Streaming compressor with the given configuration.
    pub fn new(config: IsumConfig) -> Self {
        Self {
            config,
            featurizer: Featurizer {
                scheme: config.scheme,
                use_table_weight: config.use_table_weight,
            },
            features: Vec::new(),
            raw_reductions: Vec::new(),
            costs: Vec::new(),
            templates: TemplateRegistry::new(),
            template_of: Vec::new(),
        }
    }

    /// Observes one query (with its cost already set). O(features of q).
    pub fn observe(&mut self, q: &QueryInfo, catalog: &Catalog) {
        let _s = isum_common::telemetry::span("incremental");
        isum_common::count!("core.incremental.observed");
        let cols = indexable_columns(&q.bound, catalog);
        self.features.push(self.featurizer.features(&cols, catalog));
        let delta = match self.config.utility {
            UtilityMode::CostOnly => q.cost,
            UtilityMode::CostTimesSelectivity => {
                (1.0 - q.bound.average_selectivity()).max(0.0) * q.cost
            }
        };
        self.raw_reductions.push(delta);
        self.costs.push(q.cost);
        let stmt = isum_sql::parse(&q.sql).expect("previously parsed SQL re-parses");
        let t = self.templates.intern(&stmt);
        self.template_of.push(t);
    }

    /// Observes every query of a workload, in order.
    pub fn observe_workload(&mut self, w: &Workload) {
        for q in &w.queries {
            self.observe(q, &w.catalog);
        }
    }

    /// Number of queries observed so far.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Selects `k` queries from everything observed so far. Weights are the
    /// normalized selection benefits (the full recalibration of Alg 5 needs
    /// the closed workload, which streaming deliberately avoids).
    ///
    /// # Errors
    /// `InvalidConfig` when `k == 0` or nothing has been observed.
    pub fn select(&self, k: usize) -> Result<CompressedWorkload> {
        if k == 0 {
            return Err(isum_common::Error::InvalidConfig("k must be positive".into()));
        }
        if self.is_empty() {
            return Err(isum_common::Error::InvalidConfig("no queries observed".into()));
        }
        let _s = isum_common::telemetry::span("incremental");
        let total: f64 = self.raw_reductions.iter().sum();
        let utilities: Vec<f64> = if total > 0.0 {
            self.raw_reductions.iter().map(|r| r / total).collect()
        } else {
            vec![0.0; self.len()]
        };
        let selection: Selection = match self.config.algorithm {
            Algorithm::SummaryFeatures => select_summary(
                self.features.clone(),
                &self.features,
                utilities,
                k,
                self.config.update,
            ),
            Algorithm::AllPairs => allpairs::select_all_pairs(
                self.features.clone(),
                &self.features,
                utilities,
                k,
                self.config.update,
            ),
        };
        let mut cw = CompressedWorkload {
            entries: selection
                .order
                .iter()
                .zip(&selection.benefits)
                .map(|(&i, &b)| (QueryId::from_index(i), b.max(0.0)))
                .collect(),
        };
        cw.normalize_weights();
        Ok(cw)
    }

    /// Distinct templates observed so far.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_catalog::CatalogBuilder;

    fn workload() -> Workload {
        let catalog = CatalogBuilder::new()
            .table("t", 500_000)
            .col_key("a")
            .col_int("b", 5_000, 0, 5_000)
            .col_int("c", 100, 0, 100)
            .finish()
            .expect("fresh table")
            .build();
        let mut w = Workload::from_sql(
            catalog,
            &[
                "SELECT a FROM t WHERE b = 1",
                "SELECT a FROM t WHERE b = 2",
                "SELECT a FROM t WHERE c > 50 GROUP BY c",
                "SELECT a FROM t WHERE b = 3",
                "SELECT count(*) FROM t WHERE c = 9 GROUP BY c ORDER BY c",
            ],
        )
        .expect("queries bind");
        w.set_costs(&[500.0, 450.0, 300.0, 400.0, 250.0]);
        w
    }

    #[test]
    fn streaming_matches_batch_selection_order() {
        let w = workload();
        let mut inc = IncrementalIsum::new(IsumConfig::isum());
        inc.observe_workload(&w);
        let streamed = inc.select(3).expect("valid state");
        let batch = crate::Isum::new().select(&w, 3);
        assert_eq!(
            streamed.ids().iter().map(|i| i.index()).collect::<Vec<_>>(),
            batch.order,
            "same inputs, same greedy choices"
        );
    }

    #[test]
    fn can_select_between_observations() {
        let w = workload();
        let mut inc = IncrementalIsum::new(IsumConfig::isum());
        inc.observe(&w.queries[0], &w.catalog);
        inc.observe(&w.queries[1], &w.catalog);
        let early = inc.select(1).expect("valid state");
        assert_eq!(early.len(), 1);
        inc.observe(&w.queries[2], &w.catalog);
        inc.observe(&w.queries[3], &w.catalog);
        inc.observe(&w.queries[4], &w.catalog);
        let late = inc.select(3).expect("valid state");
        assert_eq!(late.len(), 3);
        assert_eq!(inc.len(), 5);
        assert_eq!(inc.template_count(), 3);
    }

    #[test]
    fn rejects_empty_and_k_zero() {
        let inc = IncrementalIsum::new(IsumConfig::isum());
        assert!(inc.select(1).is_err());
        let w = workload();
        let mut inc = IncrementalIsum::new(IsumConfig::isum());
        inc.observe_workload(&w);
        assert!(inc.select(0).is_err());
    }

    #[test]
    fn weights_are_normalized() {
        let w = workload();
        let mut inc = IncrementalIsum::new(IsumConfig::isum());
        inc.observe_workload(&w);
        let cw = inc.select(3).expect("valid state");
        let total: f64 = cw.entries.iter().map(|(_, wt)| wt).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
