//! The top-level ISUM compressor (Fig 4 of the paper).
//!
//! Pipeline: featurize queries and compute utilities (step 1), select `k`
//! queries greedily — via summary features (step 2 + 3, the linear
//! algorithm) or all-pairs comparisons — updating the remainder after each
//! pick (step 3B), then weigh the selected queries (step 4).

use isum_common::trace::{self, Level};
use isum_common::{telemetry, QueryId, Result};
use isum_workload::{CompressedWorkload, Workload};

use crate::allpairs::select_all_pairs;
use crate::compressor::{validate, Compressor};
use crate::features::{Featurizer, WeightScheme, WorkloadFeatures};
use crate::summary::select_summary;
use crate::update::UpdateStrategy;
use crate::utility::{utilities, UtilityMode};
use crate::weighting::{weigh_selected, WeightingStrategy};

/// Which greedy algorithm drives selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Linear-time summary-features greedy (Algorithm 3; the default).
    #[default]
    SummaryFeatures,
    /// Quadratic all-pairs greedy (Algorithms 1–2; the quality reference).
    AllPairs,
}

/// Full ISUM configuration. `IsumConfig::default()` reproduces the paper's
/// "ISUM" line; see the constructors for the named variants.
#[derive(Debug, Clone, Copy)]
pub struct IsumConfig {
    /// Feature weighting scheme (rule-based = ISUM, stats-based = ISUM-S).
    pub scheme: WeightScheme,
    /// Include table-size weighting (false = ISUM-NoTable, Fig 10).
    pub use_table_weight: bool,
    /// Utility estimator.
    pub utility: UtilityMode,
    /// Selection algorithm.
    pub algorithm: Algorithm,
    /// Post-selection update strategy.
    pub update: UpdateStrategy,
    /// Weighting strategy for the output.
    pub weighting: WeightingStrategy,
}

/// The ISUM workload compressor.
///
/// ```
/// use isum_core::{Compressor, Isum};
/// use isum_catalog::CatalogBuilder;
/// use isum_workload::Workload;
///
/// let catalog = CatalogBuilder::new()
///     .table("t", 100_000)
///     .col_key("id")
///     .col_int("grp", 100, 0, 100)
///     .finish()?
///     .build();
/// let mut w = Workload::from_sql(catalog, &[
///     "SELECT id FROM t WHERE grp = 1",
///     "SELECT id FROM t WHERE grp = 2",
///     "SELECT count(*) FROM t GROUP BY grp",
/// ])?;
/// w.set_costs(&[50.0, 45.0, 200.0]);
/// let compressed = Isum::new().compress(&w, 2)?;
/// assert_eq!(compressed.len(), 2);
/// # Ok::<(), isum_common::Error>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Isum {
    /// Configuration.
    pub config: IsumConfig,
}

impl IsumConfig {
    /// The paper's default ISUM (rule-based weights, summary features,
    /// zero-out updates, template weighting).
    pub fn isum() -> Self {
        Self {
            scheme: WeightScheme::RuleBased,
            use_table_weight: true,
            utility: UtilityMode::CostTimesSelectivity,
            algorithm: Algorithm::SummaryFeatures,
            update: UpdateStrategy::ZeroFeatures,
            weighting: WeightingStrategy::RecalibratedTemplate,
        }
    }

    /// ISUM-S: statistics-based feature weighting (Sec 8 baselines).
    pub fn isum_s() -> Self {
        Self { scheme: WeightScheme::StatsBased, ..Self::isum() }
    }

    /// ISUM-NoTable: stats-based weighting without the table-size factor
    /// (Fig 10).
    pub fn isum_no_table() -> Self {
        Self { scheme: WeightScheme::StatsBased, use_table_weight: false, ..Self::isum() }
    }

    /// All-pairs variant (Fig 11, Fig 13).
    pub fn all_pairs() -> Self {
        Self { algorithm: Algorithm::AllPairs, ..Self::isum() }
    }
}

impl Default for IsumConfig {
    fn default() -> Self {
        Self::isum()
    }
}

impl Isum {
    /// ISUM with the paper's default configuration.
    pub fn new() -> Self {
        Self { config: IsumConfig::isum() }
    }

    /// ISUM with a custom configuration.
    pub fn with_config(config: IsumConfig) -> Self {
        Self { config }
    }

    /// Runs selection only, returning indices and selection-time benefits
    /// (exposed for the experiment harness).
    pub fn select(&self, workload: &Workload, k: usize) -> crate::allpairs::Selection {
        let featurizer = Featurizer {
            scheme: self.config.scheme,
            use_table_weight: self.config.use_table_weight,
        };
        let (wf, u) = {
            let _s = telemetry::span("featurize");
            let wf = WorkloadFeatures::build(workload, &featurizer);
            let u = utilities(workload, self.config.utility);
            (wf, u)
        };
        let _s = telemetry::span("select");
        match self.config.algorithm {
            Algorithm::AllPairs => {
                select_all_pairs(wf.features, &wf.original, u, k, self.config.update)
            }
            Algorithm::SummaryFeatures => {
                select_summary(wf.features, &wf.original, u, k, self.config.update)
            }
        }
    }

    /// Compresses and derives attribution + coverage for the result
    /// (observation-only: the compression result is exactly what
    /// [`Compressor::compress`] returns for the same input).
    ///
    /// # Errors
    /// Same failure modes as [`Compressor::compress`].
    pub fn explain(&self, workload: &Workload, k: usize) -> Result<crate::SummaryExplanation> {
        let cw = self.compress(workload, k)?;
        let featurizer = Featurizer {
            scheme: self.config.scheme,
            use_table_weight: self.config.use_table_weight,
        };
        let wf = WorkloadFeatures::build(workload, &featurizer);
        let u = utilities(workload, self.config.utility);
        let templates: Vec<isum_common::TemplateId> =
            workload.queries.iter().map(|q| q.template).collect();
        Ok(crate::explain::explain_selection(&cw.entries, &templates, &wf.original, &u))
    }
}

impl Compressor for Isum {
    fn name(&self) -> String {
        let base = match (self.config.scheme, self.config.use_table_weight) {
            (WeightScheme::RuleBased, _) => "ISUM",
            (WeightScheme::StatsBased, true) => "ISUM-S",
            (WeightScheme::StatsBased, false) => "ISUM-NoTable",
        };
        match self.config.algorithm {
            Algorithm::SummaryFeatures => base.to_string(),
            Algorithm::AllPairs => format!("{base}(all-pairs)"),
        }
    }

    fn compress(&self, workload: &Workload, k: usize) -> Result<CompressedWorkload> {
        validate(workload, k)?;
        let _isum = telemetry::span("isum");
        // Per-phase events are debug-level; the clock is only read when
        // some sink or ring can actually receive them.
        let trace_on = trace::enabled(Level::Debug);
        let featurizer = Featurizer {
            scheme: self.config.scheme,
            use_table_weight: self.config.use_table_weight,
        };
        let t = trace_on.then(std::time::Instant::now);
        let (wf, u) = {
            let _s = telemetry::span("featurize");
            let wf = WorkloadFeatures::build(workload, &featurizer);
            let u = utilities(workload, self.config.utility);
            (wf, u)
        };
        if let Some(t) = t {
            isum_common::debug!(
                "core.isum",
                "featurize done",
                queries = workload.queries.len(),
                elapsed_us = t.elapsed().as_micros()
            );
        }
        let t = trace_on.then(std::time::Instant::now);
        let selection = {
            let _s = telemetry::span("select");
            match self.config.algorithm {
                Algorithm::AllPairs => select_all_pairs(
                    wf.features.clone(),
                    &wf.original,
                    u.clone(),
                    k,
                    self.config.update,
                ),
                Algorithm::SummaryFeatures => select_summary(
                    wf.features.clone(),
                    &wf.original,
                    u.clone(),
                    k,
                    self.config.update,
                ),
            }
        };
        if let Some(t) = t {
            isum_common::debug!(
                "core.isum",
                "select done",
                candidates = workload.queries.len(),
                selected = selection.order.len(),
                k = k,
                elapsed_us = t.elapsed().as_micros()
            );
        }
        let t = trace_on.then(std::time::Instant::now);
        let _w = telemetry::span("weight");
        let templates: Vec<isum_common::TemplateId> =
            workload.queries.iter().map(|q| q.template).collect();
        let weights =
            weigh_selected(self.config.weighting, &templates, &selection, &wf.original, &u);
        let mut cw = CompressedWorkload {
            entries: selection
                .order
                .iter()
                .zip(weights)
                .map(|(&i, w)| (QueryId::from_index(i), w))
                .collect(),
        };
        cw.normalize_weights();
        if let Some(t) = t {
            isum_common::debug!(
                "core.isum",
                "weight done",
                entries = cw.entries.len(),
                elapsed_us = t.elapsed().as_micros()
            );
        }
        Ok(cw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_catalog::CatalogBuilder;

    fn workload() -> Workload {
        let catalog = CatalogBuilder::new()
            .table("big", 1_000_000)
            .col_key("b_key")
            .col_int("b_attr", 10_000, 0, 10_000)
            .col_int("b_code", 50, 0, 50)
            .finish()
            .unwrap()
            .table("small", 1_000)
            .col_key("s_key")
            .col_int("s_attr", 100, 0, 100)
            .finish()
            .unwrap()
            .build();
        let mut w = Workload::from_sql(
            catalog,
            &[
                "SELECT b_key FROM big WHERE b_attr = 1",
                "SELECT b_key FROM big WHERE b_attr = 2",
                "SELECT b_key FROM big WHERE b_attr = 3",
                "SELECT b_key FROM big WHERE b_code = 4 GROUP BY b_code",
                "SELECT s_key FROM small WHERE s_attr = 5",
                "SELECT b_key FROM big, small WHERE b_key = s_key AND s_attr > 50",
            ],
        )
        .unwrap();
        w.set_costs(&[900.0, 850.0, 800.0, 700.0, 10.0, 500.0]);
        w
    }

    #[test]
    fn compresses_to_k_weighted_queries() {
        let w = workload();
        let cw = Isum::new().compress(&w, 3).unwrap();
        assert_eq!(cw.len(), 3);
        assert!((cw.entries.iter().map(|(_, w)| w).sum::<f64>() - 1.0).abs() < 1e-9);
        // The dominant template (b_attr = ?) must be represented.
        let ids = cw.ids();
        assert!(ids.iter().any(|id| id.index() <= 2), "{ids:?}");
    }

    #[test]
    fn first_pick_is_high_utility_high_influence() {
        let w = workload();
        let sel = Isum::new().select(&w, 1);
        // Queries 0-2 share a template and dominate cost; one of them wins.
        assert!(sel.order[0] <= 2, "got {:?}", sel.order);
    }

    #[test]
    fn all_pairs_and_summary_agree_on_small_input() {
        let w = workload();
        let a = Isum::with_config(IsumConfig::all_pairs()).compress(&w, 3).unwrap();
        let s = Isum::new().compress(&w, 3).unwrap();
        // Both should avoid picking two near-duplicate b_attr queries
        // before covering the b_code / join queries.
        let dup_a = a.ids().iter().filter(|id| id.index() <= 2).count();
        let dup_s = s.ids().iter().filter(|id| id.index() <= 2).count();
        assert!(dup_a <= 2 && dup_s <= 2, "a={:?} s={:?}", a.ids(), s.ids());
    }

    #[test]
    fn variants_have_distinct_names() {
        assert_eq!(Isum::new().name(), "ISUM");
        assert_eq!(Isum::with_config(IsumConfig::isum_s()).name(), "ISUM-S");
        assert_eq!(Isum::with_config(IsumConfig::isum_no_table()).name(), "ISUM-NoTable");
        assert_eq!(Isum::with_config(IsumConfig::all_pairs()).name(), "ISUM(all-pairs)");
    }

    #[test]
    fn k_of_zero_and_empty_workload_error() {
        let w = workload();
        assert!(Isum::new().compress(&w, 0).is_err());
    }

    #[test]
    fn k_at_least_n_selects_all() {
        let w = workload();
        let cw = Isum::new().compress(&w, 100).unwrap();
        assert_eq!(cw.len(), 6);
        let mut ids: Vec<usize> = cw.ids().iter().map(|i| i.index()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn explain_reports_the_compressed_selection() {
        let w = workload();
        let cw = Isum::new().compress(&w, 3).unwrap();
        let e = Isum::new().explain(&w, 3).unwrap();
        assert_eq!(e.k, 3);
        assert_eq!(e.observed, 6);
        let ids: Vec<_> = e.members.iter().map(|m| m.query).collect();
        assert_eq!(ids, cw.ids());
        for (m, (_, weight)) in e.members.iter().zip(&cw.entries) {
            assert_eq!(m.weight.to_bits(), weight.to_bits());
        }
        assert!(e.coverage > 0.0 && e.coverage <= 1.0);
        assert!(e.represented >= 3, "each member represents at least itself");
    }

    #[test]
    fn compression_is_deterministic() {
        let w = workload();
        let a = Isum::new().compress(&w, 3).unwrap();
        let b = Isum::new().compress(&w, 3).unwrap();
        assert_eq!(a, b);
    }
}
