//! ISUM: Index-based Workload Summarization (SIGMOD 2022).
//!
//! The paper's contribution: given a workload of `n` queries with their
//! optimizer-estimated costs, select `k` queries (and weights) whose tuning
//! yields nearly the improvement of tuning all `n`. The crate implements the
//! full method:
//!
//! * **Featurization** ([`features`]): each query becomes a sparse weight
//!   vector over its indexable columns, weighted rule-based (fraction of
//!   Table-1 candidate indexes containing the column × table size) or
//!   stats-based ((1 − selectivity/density) × table size), min–max
//!   normalized (Sec 4.2).
//! * **Utility** ([`utility`]): each query's share of the workload's
//!   estimated cost reduction, from cost alone or cost × (1 − avg
//!   selectivity) (Sec 4.1, Def 2).
//! * **Similarity & benefit** ([`similarity`], [`benefit`]): weighted
//!   Jaccard over feature vectors; benefit = utility + influence
//!   (Defs 3–4, 7–9).
//! * **Greedy selection**: the quadratic all-pairs algorithm
//!   ([`allpairs`], Algs 1–2) and the linear summary-features algorithm
//!   ([`summary`], Alg 3 + Theorem 3 bounds), with the update strategies of
//!   Sec 4.3 ([`update`]).
//! * **Weighting** ([`weighting`]): benefit re-calibration and
//!   template-based utility redistribution (Sec 7, Algs 4–5).
//!
//! [`Isum`] ties everything together behind the [`Compressor`] trait shared
//! with the baseline algorithms.

pub mod allpairs;
pub mod benefit;
pub mod compressor;
pub mod explain;
pub mod features;
pub mod incremental;
pub mod isum;
pub mod merge;
pub mod similarity;
pub mod summary;
pub mod update;
pub mod utility;
pub mod weighting;

pub use compressor::Compressor;
pub use explain::{
    explain_selection, selection_coverage, workload_coverage, MemberAttribution, SummaryExplanation,
};
pub use features::{FeatureVec, Featurizer, WeightScheme, WorkloadFeatures};
pub use incremental::IncrementalIsum;
pub use isum::{Algorithm, Isum, IsumConfig};
pub use merge::{
    merge_partials, Contribution, MergedPick, MergedTemplate, MergedWorkload, ShardPartial,
};
pub use update::UpdateStrategy;
pub use utility::UtilityMode;
pub use weighting::WeightingStrategy;
