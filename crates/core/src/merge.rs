//! Mergeable per-shard summary state and the deterministic cross-shard
//! merge (DESIGN.md §13).
//!
//! The summary feature vector of Alg 3 is *linear* in the observed
//! queries — `V = Σ_i Δ(q_i) · q_i` — so a sharded service can keep one
//! [`crate::IncrementalIsum`] per shard and still answer a global
//! `GET /summary`: each shard exports its per-query contributions grouped
//! by template fingerprint (a [`ShardPartial`]), and the router folds the
//! union into one [`MergedWorkload`].
//!
//! # Determinism contract
//!
//! Floating-point addition is not associative, so a naive fold would make
//! the merged summary depend on how queries happened to land on shards
//! and in what order they arrived. The merge therefore never trusts
//! arrival order: all contributions for a template are sorted into a
//! *canonical order* (by `Δ` under `total_cmp`, then lexicographically by
//! feature entries — see [`Contribution::canonical_cmp`]) before the fold.
//! Two deployments observing the same multiset of statements produce
//! bit-identical merged state **regardless of shard count, shard
//! assignment, or ingest interleaving** (pinned by the shard-partition
//! property tests). Shard-local `TemplateId`s/`QueryId`s are meaningless
//! across shards; the merge keys exclusively on template fingerprints and
//! [`GlobalColumnId`]s, which all shards share because they bind against
//! one catalog.
//!
//! Selection over the merged state runs at *template* granularity: each
//! merged template becomes a pseudo-query whose features are the
//! mass-weighted centroid `V_t / mass_t` and whose utility is its share
//! of the total Δ mass. Templates are indexed in fingerprint order and
//! [`select_summary`] picks the first strict maximum in index order, so
//! benefit ties break on the template fingerprint — stable across runs by
//! construction.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use isum_common::{GlobalColumnId, Result, TemplateId};

use crate::allpairs::{self, Selection};
use crate::features::FeatureVec;
use crate::isum::{Algorithm, IsumConfig};
use crate::summary::select_summary;
use crate::weighting::weigh_selected;

/// One observed query's contribution to its template's partial sum:
/// the unnormalized utility mass `Δ(q)` and the sparse feature entries.
#[derive(Debug, Clone, PartialEq)]
pub struct Contribution {
    /// Unnormalized Δ(q) — the query's raw utility mass.
    pub delta: f64,
    /// Sparse feature entries, sorted by [`GlobalColumnId`].
    pub entries: Vec<(GlobalColumnId, f64)>,
}

impl Contribution {
    /// The canonical total order the merge folds in: `Δ` first (under
    /// `total_cmp`, which orders every bit pattern), then the feature
    /// entries lexicographically by `(table, column, weight bits)`.
    /// Contributions that compare equal are numerically identical, so
    /// their relative order cannot affect the fold.
    pub fn canonical_cmp(&self, other: &Contribution) -> Ordering {
        self.delta.total_cmp(&other.delta).then_with(|| {
            let a = &self.entries;
            let b = &other.entries;
            for ((ga, wa), (gb, wb)) in a.iter().zip(b.iter()) {
                let ord = ga.cmp(gb).then_with(|| wa.total_cmp(wb));
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            a.len().cmp(&b.len())
        })
    }
}

/// Everything one shard contributes to the cross-shard merge: per-query
/// contributions grouped by template fingerprint. Extracted by
/// [`crate::IncrementalIsum::shard_partial`].
#[derive(Debug, Clone, Default)]
pub struct ShardPartial {
    /// `(fingerprint, contributions in shard arrival order)` — the merge
    /// re-sorts, so the order here carries no meaning.
    pub templates: Vec<(String, Vec<Contribution>)>,
}

impl ShardPartial {
    /// Total queries contributing across all templates.
    pub fn observed(&self) -> usize {
        self.templates.iter().map(|(_, c)| c.len()).sum()
    }
}

/// One template after the merge: its identity, instance count, folded
/// mass, and folded summary-feature contribution `V_t = Σ_q Δ(q) · q`.
#[derive(Debug, Clone)]
pub struct MergedTemplate {
    /// The template fingerprint (shard-independent identity).
    pub fingerprint: String,
    /// Observed instances across all shards.
    pub count: usize,
    /// Folded Δ mass (canonical order, bit-deterministic).
    pub mass: f64,
    /// Folded summary-feature contribution `Σ_q Δ(q) · q` over the
    /// template's instances (canonical order, bit-deterministic).
    pub features: FeatureVec,
}

/// The deterministic cross-shard merge of any number of shard partials.
#[derive(Debug, Clone, Default)]
pub struct MergedWorkload {
    /// Templates in fingerprint order — the index order every downstream
    /// tie-break resolves on.
    pub templates: Vec<MergedTemplate>,
    /// Total queries observed across all shards.
    pub observed: usize,
    /// Total Δ mass, folded over templates in fingerprint order.
    pub total_mass: f64,
}

/// One selected template and its normalized weight.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedPick {
    /// Index into [`MergedWorkload::templates`].
    pub template: usize,
    /// Normalized weight (the picks sum to 1).
    pub weight: f64,
}

/// Folds shard partials into one [`MergedWorkload`]. Order of `partials`
/// and order within each partial are irrelevant: contributions are
/// re-grouped by fingerprint and re-sorted canonically before any
/// floating-point fold, so the result is bit-identical for any shard
/// partitioning of the same observed multiset.
pub fn merge_partials(partials: &[ShardPartial]) -> MergedWorkload {
    let mut grouped: BTreeMap<&str, Vec<&Contribution>> = BTreeMap::new();
    for partial in partials {
        for (fp, contributions) in &partial.templates {
            grouped.entry(fp.as_str()).or_default().extend(contributions.iter());
        }
    }
    let mut templates = Vec::with_capacity(grouped.len());
    let mut observed = 0usize;
    let mut total_mass = 0.0f64;
    for (fp, mut contributions) in grouped {
        contributions.sort_by(|a, b| a.canonical_cmp(b));
        let mut mass = 0.0f64;
        let mut features = FeatureVec::default();
        for c in &contributions {
            mass += c.delta;
            if c.delta > 0.0 {
                features.add_scaled(&FeatureVec::from_entries(c.entries.clone()), c.delta);
            }
        }
        observed += contributions.len();
        total_mass += mass;
        templates.push(MergedTemplate {
            fingerprint: fp.to_string(),
            count: contributions.len(),
            mass,
            features,
        });
    }
    MergedWorkload { templates, observed, total_mass }
}

impl MergedWorkload {
    /// The global summary feature vector `V = Σ_t V_t`, folded over
    /// templates in fingerprint order. Bit-deterministic under shard
    /// repartitioning — the invariant the property tests pin.
    pub fn summary_features(&self) -> FeatureVec {
        let mut v = FeatureVec::default();
        for t in &self.templates {
            v.add_scaled(&t.features, 1.0);
        }
        v
    }

    /// Normalized per-template utilities (Δ mass share), aligned with
    /// [`MergedWorkload::templates`].
    pub fn utilities(&self) -> Vec<f64> {
        if self.total_mass <= 0.0 {
            vec![0.0; self.templates.len()]
        } else {
            self.templates.iter().map(|t| t.mass / self.total_mass).collect()
        }
    }

    /// Per-template pseudo-query features: the mass-weighted centroid
    /// `V_t / mass_t` (a zero-mass template keeps its — all-zero —
    /// folded vector).
    fn centroids(&self) -> Vec<FeatureVec> {
        self.templates
            .iter()
            .map(|t| {
                if t.mass > 0.0 {
                    let mut c = FeatureVec::default();
                    c.add_scaled(&t.features, 1.0 / t.mass);
                    c
                } else {
                    t.features.clone()
                }
            })
            .collect()
    }

    /// Selects `k` representative templates with the configured greedy
    /// algorithm and weighting, at template granularity. Templates are
    /// indexed in fingerprint order and the greedy argmax takes the first
    /// strict maximum in index order, so ties break deterministically on
    /// the fingerprint.
    ///
    /// # Errors
    /// `InvalidConfig` when `k == 0` or the merge saw no templates.
    pub fn select(&self, k: usize, config: IsumConfig) -> Result<Vec<MergedPick>> {
        if k == 0 {
            return Err(isum_common::Error::InvalidConfig("k must be positive".into()));
        }
        if self.templates.is_empty() {
            return Err(isum_common::Error::InvalidConfig("no queries observed".into()));
        }
        let features = self.centroids();
        let utilities = self.utilities();
        let selection: Selection = match config.algorithm {
            Algorithm::SummaryFeatures => {
                select_summary(features.clone(), &features, utilities.clone(), k, config.update)
            }
            Algorithm::AllPairs => allpairs::select_all_pairs(
                features.clone(),
                &features,
                utilities.clone(),
                k,
                config.update,
            ),
        };
        // Each pseudo-query is its own template, so Alg 4's template
        // redistribution degenerates to the identity map — correct here,
        // because the per-instance spreading already happened in the fold.
        let identity: Vec<TemplateId> =
            (0..self.templates.len()).map(TemplateId::from_index).collect();
        let weights =
            weigh_selected(config.weighting, &identity, &selection, &features, &utilities);
        let total: f64 = weights.iter().sum();
        let weights: Vec<f64> =
            if total > 0.0 { weights.iter().map(|w| w / total).collect() } else { weights };
        Ok(selection
            .order
            .iter()
            .zip(weights)
            .map(|(&i, weight)| MergedPick { template: i, weight })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_common::{ColumnId, TableId};

    fn gid(c: u32) -> GlobalColumnId {
        GlobalColumnId::new(TableId(0), ColumnId(c))
    }

    fn contribution(delta: f64, entries: &[(u32, f64)]) -> Contribution {
        Contribution { delta, entries: entries.iter().map(|&(c, w)| (gid(c), w)).collect() }
    }

    /// A synthetic pool of contributions over three templates, with
    /// deliberately awkward magnitudes so float association error would
    /// show if the fold order varied.
    fn pool() -> Vec<(String, Contribution)> {
        let mut rng = isum_common::rng::DetRng::seeded(23);
        let mut out = Vec::new();
        for i in 0..60 {
            let fp = format!("template-{}", i % 3);
            let delta = (rng.unit() + 1e-9) * 10f64.powi(i % 7 - 3);
            let entries: Vec<(u32, f64)> =
                (0..(1 + i % 4)).map(|j| ((i % 5 + j) as u32, rng.unit())).collect();
            out.push((fp, contribution(delta, &entries)));
        }
        out
    }

    /// Partitions the pool into `n` shard partials by `assign`.
    fn partition(
        pool: &[(String, Contribution)],
        n: usize,
        assign: impl Fn(usize) -> usize,
    ) -> Vec<ShardPartial> {
        let mut shards: Vec<BTreeMap<String, Vec<Contribution>>> = vec![BTreeMap::new(); n];
        for (i, (fp, c)) in pool.iter().enumerate() {
            shards[assign(i) % n].entry(fp.clone()).or_default().push(c.clone());
        }
        shards.into_iter().map(|m| ShardPartial { templates: m.into_iter().collect() }).collect()
    }

    fn feature_bits(v: &FeatureVec) -> Vec<(GlobalColumnId, u64)> {
        v.entries().iter().map(|&(g, w)| (g, w.to_bits())).collect()
    }

    #[test]
    fn merge_is_shard_partition_invariant() {
        let pool = pool();
        let whole = merge_partials(&partition(&pool, 1, |_| 0));
        for n in [2usize, 3, 5] {
            for salt in 0..3usize {
                let parts = partition(&pool, n, |i| i.wrapping_mul(2654435761).wrapping_add(salt));
                let merged = merge_partials(&parts);
                assert_eq!(merged.observed, whole.observed);
                assert_eq!(merged.total_mass.to_bits(), whole.total_mass.to_bits());
                assert_eq!(
                    feature_bits(&merged.summary_features()),
                    feature_bits(&whole.summary_features()),
                    "n={n} salt={salt}: global V must be bit-identical"
                );
                for (a, b) in merged.templates.iter().zip(&whole.templates) {
                    assert_eq!(a.fingerprint, b.fingerprint);
                    assert_eq!(a.count, b.count);
                    assert_eq!(a.mass.to_bits(), b.mass.to_bits());
                    assert_eq!(feature_bits(&a.features), feature_bits(&b.features));
                }
            }
        }
    }

    #[test]
    fn merge_is_ingest_order_invariant() {
        let pool = pool();
        let forward = merge_partials(&partition(&pool, 2, |i| i));
        let mut reversed = pool.clone();
        reversed.reverse();
        let backward = merge_partials(&partition(&reversed, 2, |i| i + 1));
        assert_eq!(
            feature_bits(&forward.summary_features()),
            feature_bits(&backward.summary_features())
        );
        let fa = forward.select(2, IsumConfig::isum()).unwrap();
        let fb = backward.select(2, IsumConfig::isum()).unwrap();
        assert_eq!(fa.len(), fb.len());
        for (a, b) in fa.iter().zip(&fb) {
            assert_eq!(a.template, b.template);
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
        }
    }

    #[test]
    fn select_breaks_ties_on_fingerprint_order() {
        // Two identical templates (same mass, same features): the greedy
        // benefit is tied, so the pick must be the fingerprint-smaller one.
        let c = contribution(1.0, &[(0, 1.0)]);
        let parts = vec![ShardPartial {
            templates: vec![
                ("zz-template".into(), vec![c.clone()]),
                ("aa-template".into(), vec![c.clone()]),
            ],
        }];
        let merged = merge_partials(&parts);
        assert_eq!(merged.templates[0].fingerprint, "aa-template");
        let picks = merged.select(1, IsumConfig::isum()).unwrap();
        assert_eq!(picks.len(), 1);
        assert_eq!(
            merged.templates[picks[0].template].fingerprint, "aa-template",
            "tie must break on fingerprint order"
        );
    }

    #[test]
    fn select_rejects_empty_and_k_zero() {
        let merged = merge_partials(&[]);
        assert!(merged.select(1, IsumConfig::isum()).is_err());
        let parts = vec![ShardPartial {
            templates: vec![("t".into(), vec![contribution(1.0, &[(0, 1.0)])])],
        }];
        assert!(merge_partials(&parts).select(0, IsumConfig::isum()).is_err());
    }

    #[test]
    fn weights_are_normalized_and_picks_unique() {
        let pool = pool();
        let merged = merge_partials(&partition(&pool, 3, |i| i));
        let picks = merged.select(3, IsumConfig::isum()).unwrap();
        assert_eq!(picks.len(), 3);
        let mut seen: Vec<usize> = picks.iter().map(|p| p.template).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 3, "no template picked twice");
        let total: f64 = picks.iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to 1, got {total}");
    }

    #[test]
    fn zero_mass_contributions_count_but_add_nothing() {
        let parts = vec![ShardPartial {
            templates: vec![(
                "t".into(),
                vec![contribution(0.0, &[(0, 1.0)]), contribution(2.0, &[(1, 1.0)])],
            )],
        }];
        let merged = merge_partials(&parts);
        assert_eq!(merged.observed, 2);
        assert_eq!(merged.templates[0].count, 2);
        assert_eq!(merged.templates[0].mass, 2.0);
        let v = merged.summary_features();
        assert_eq!(v.get(gid(0)), 0.0, "zero-Δ query contributes no feature mass");
        assert_eq!(v.get(gid(1)), 2.0);
    }
}
