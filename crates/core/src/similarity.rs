//! Similarity measures (Sec 4.2 of the paper).
//!
//! The production measure is the weighted Jaccard over feature vectors; the
//! plain (set) Jaccard is kept for the Fig 7 ablation.

use crate::features::FeatureVec;

/// Weighted Jaccard: `Σ min(a_c, b_c) / Σ max(a_c, b_c)`, 0 when either
/// vector is all-zero. This is the paper's `S(q_i, q_j)`.
///
/// ```
/// use isum_common::{ColumnId, GlobalColumnId, TableId};
/// use isum_core::features::FeatureVec;
/// use isum_core::similarity::weighted_jaccard;
///
/// let gid = |c| GlobalColumnId::new(TableId(0), ColumnId(c));
/// let a = FeatureVec::from_entries(vec![(gid(0), 0.8), (gid(1), 0.2)]);
/// let b = FeatureVec::from_entries(vec![(gid(0), 0.4), (gid(2), 0.6)]);
/// // min-sum 0.4 over max-sum 1.6:
/// assert!((weighted_jaccard(&a, &b) - 0.25).abs() < 1e-12);
/// ```
pub fn weighted_jaccard(a: &FeatureVec, b: &FeatureVec) -> f64 {
    isum_common::count!("core.similarity.computations");
    let mut min_sum = 0.0;
    let mut max_sum = 0.0;
    let ae = a.entries();
    let be = b.entries();
    let mut i = 0;
    let mut j = 0;
    while i < ae.len() || j < be.len() {
        let take_a = j >= be.len() || (i < ae.len() && ae[i].0 <= be[j].0);
        let take_b = i >= ae.len() || (j < be.len() && be[j].0 <= ae[i].0);
        match (take_a, take_b) {
            (true, true) => {
                min_sum += ae[i].1.min(be[j].1);
                max_sum += ae[i].1.max(be[j].1);
                i += 1;
                j += 1;
            }
            (true, false) => {
                max_sum += ae[i].1;
                i += 1;
            }
            (false, true) => {
                max_sum += be[j].1;
                j += 1;
            }
            (false, false) => unreachable!("one side must advance"),
        }
    }
    if max_sum <= 0.0 {
        0.0
    } else {
        min_sum / max_sum
    }
}

/// Plain (unweighted) Jaccard over the *sets* of features with positive
/// weight — the Fig 7b ablation.
pub fn set_jaccard(a: &FeatureVec, b: &FeatureVec) -> f64 {
    isum_common::count!("core.similarity.computations");
    let sa: Vec<_> = a.entries().iter().filter(|(_, w)| *w > 0.0).map(|(g, _)| *g).collect();
    let sb: Vec<_> = b.entries().iter().filter(|(_, w)| *w > 0.0).map(|(g, _)| *g).collect();
    jaccard_ids(&sa, &sb)
}

/// Jaccard over two sorted id slices (also used for the candidate-index
/// similarity ablation of Fig 7a, with hashed index identities).
pub fn jaccard_ids<T: Ord + Copy>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let mut inter = 0usize;
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_common::{ColumnId, GlobalColumnId, TableId};

    fn gid(c: u32) -> GlobalColumnId {
        GlobalColumnId::new(TableId(0), ColumnId(c))
    }

    fn vec_of(entries: &[(u32, f64)]) -> FeatureVec {
        FeatureVec::from_entries(entries.iter().map(|&(c, w)| (gid(c), w)).collect())
    }

    #[test]
    fn identical_vectors_have_similarity_one() {
        let v = vec_of(&[(0, 0.5), (1, 1.0)]);
        assert!((weighted_jaccard(&v, &v) - 1.0).abs() < 1e-12);
        assert!((set_jaccard(&v, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_vectors_have_similarity_zero() {
        let a = vec_of(&[(0, 1.0)]);
        let b = vec_of(&[(1, 1.0)]);
        assert_eq!(weighted_jaccard(&a, &b), 0.0);
        assert_eq!(set_jaccard(&a, &b), 0.0);
    }

    #[test]
    fn weighted_jaccard_matches_hand_computation() {
        let a = vec_of(&[(0, 0.8), (1, 0.2)]);
        let b = vec_of(&[(0, 0.4), (2, 0.6)]);
        // min: 0.4; max: 0.8 + 0.2 + 0.6 = 1.6
        assert!((weighted_jaccard(&a, &b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn weighted_jaccard_is_symmetric_and_bounded() {
        let a = vec_of(&[(0, 0.3), (3, 0.9), (7, 0.1)]);
        let b = vec_of(&[(0, 0.5), (2, 0.4)]);
        let ab = weighted_jaccard(&a, &b);
        let ba = weighted_jaccard(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn all_zero_vectors_yield_zero() {
        let z = vec_of(&[(0, 0.0)]);
        let v = vec_of(&[(0, 1.0)]);
        assert_eq!(weighted_jaccard(&z, &z), 0.0);
        assert_eq!(weighted_jaccard(&z, &v), 0.0);
        assert_eq!(set_jaccard(&z, &v), 0.0);
    }

    #[test]
    fn set_jaccard_ignores_weights() {
        let a = vec_of(&[(0, 0.9), (1, 0.1)]);
        let b = vec_of(&[(0, 0.1), (1, 0.9)]);
        assert!((set_jaccard(&a, &b) - 1.0).abs() < 1e-12);
        assert!(weighted_jaccard(&a, &b) < 1.0);
    }

    #[test]
    fn jaccard_ids_counts_overlap() {
        assert!((jaccard_ids(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard_ids::<u32>(&[], &[]), 0.0);
        assert_eq!(jaccard_ids(&[1], &[]), 0.0);
    }
}
