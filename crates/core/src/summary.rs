//! Workload summary features and the linear-time greedy algorithm
//! (Sec 6 of the paper: Def 11, Algorithm 3, Theorem 3).
//!
//! The summary feature vector `V` aggregates query features weighted by
//! utility: `V_c = Σ_i q_ic · U(q_i)`. A query's influence on the workload
//! is then approximated by a *single* similarity computation
//! `F_qs(V) = S(q_s, V)` instead of `n − 1` pairwise ones, giving the
//! `O(k·n)` algorithm. After every pick, queries are updated exactly as in
//! the all-pairs algorithm and the summary is *regenerated* (updating `V`
//! in place is noted by the paper to be more erroneous).

use crate::allpairs::Selection;
use crate::features::FeatureVec;
use crate::update::{apply_update, reset_if_exhausted, UpdateStrategy};

/// Builds the summary feature vector `V = Σ_i U(q_i) · q_i` (Def 11).
pub fn summary_features(features: &[FeatureVec], utilities: &[f64]) -> FeatureVec {
    let mut v = FeatureVec::default();
    for (f, &u) in features.iter().zip(utilities) {
        if u > 0.0 {
            v.add_scaled(f, u);
        }
    }
    v
}

/// Influence of query `i` approximated against a summary that *excludes*
/// `i` (Algorithm 3 lines 9–12): the query's own contribution is removed
/// and the remainder rescaled so the total utility mass is preserved.
pub fn influence_via_summary(
    i: usize,
    features: &[FeatureVec],
    utilities: &[f64],
    summary: &FeatureVec,
    total_utility: f64,
) -> f64 {
    let reduced = total_utility - utilities[i];
    if reduced <= f64::EPSILON {
        return 0.0;
    }
    let scale = total_utility / reduced;
    let u_i = utilities[i];
    // Fused single pass over the two sorted vectors: for each feature,
    // V'_c = max(0, summary_c − u_i·q_ic) · scale, then accumulate the
    // weighted-Jaccard min/max sums against q_ic. No allocations — this is
    // the inner loop of the linear-time algorithm.
    let fe = features[i].entries();
    let se = summary.entries();
    let mut min_sum = 0.0;
    let mut max_sum = 0.0;
    let mut a = 0;
    let mut b = 0;
    while a < fe.len() || b < se.len() {
        let take_f = b >= se.len() || (a < fe.len() && fe[a].0 <= se[b].0);
        let take_s = a >= fe.len() || (b < se.len() && se[b].0 <= fe[a].0);
        let (f_val, v_val) = match (take_f, take_s) {
            (true, true) => {
                let pair = (fe[a].1, ((se[b].1 - u_i * fe[a].1).max(0.0)) * scale);
                a += 1;
                b += 1;
                pair
            }
            (true, false) => {
                let pair = (fe[a].1, 0.0);
                a += 1;
                pair
            }
            (false, true) => {
                let pair = (0.0, (se[b].1.max(0.0)) * scale);
                b += 1;
                pair
            }
            (false, false) => unreachable!("one side must advance"),
        };
        min_sum += f_val.min(v_val);
        max_sum += f_val.max(v_val);
    }
    if max_sum <= 0.0 {
        0.0
    } else {
        min_sum / max_sum
    }
}

/// The linear-time greedy selection (Algorithm 3 inside the Algorithm 2
/// loop): per iteration one summary build plus one similarity per query.
pub fn select_summary(
    mut features: Vec<FeatureVec>,
    original: &[FeatureVec],
    mut utilities: Vec<f64>,
    k: usize,
    strategy: UpdateStrategy,
) -> Selection {
    let n = features.len();
    let k = k.min(n);
    isum_common::count!("core.select.candidates", n as u64);
    let mut selected = vec![false; n];
    let mut out = Selection::default();

    while out.order.len() < k {
        isum_common::count!("core.select.iterations");
        // Regenerate the summary over unselected queries.
        let (fs, us): (Vec<FeatureVec>, Vec<f64>) = features
            .iter()
            .zip(&utilities)
            .zip(&selected)
            .filter(|(_, &sel)| !sel)
            .map(|((f, &u), _)| (f.clone(), u))
            .unzip();
        let summary = summary_features(&fs, &us);
        let total_utility: f64 = us.iter().sum();

        // Indices of unselected queries align with fs/us by construction.
        let mut positions = vec![usize::MAX; n];
        let mut pos = 0;
        for (i, &sel) in selected.iter().enumerate() {
            if !sel {
                positions[i] = pos;
                pos += 1;
            }
        }
        // One independent similarity per query: fan out over the pool,
        // then run the argmax as a sequential index-order scan so the
        // pick (first strict maximum) matches the sequential algorithm
        // at any thread count.
        let benefits = isum_exec::par_map_indexed(&features, |i, f| {
            if selected[i] || f.all_zero() {
                None
            } else {
                let infl = influence_via_summary(positions[i], &fs, &us, &summary, total_utility);
                Some(utilities[i] + infl)
            }
        });
        let mut best: Option<(usize, f64)> = None;
        for (i, b) in benefits.into_iter().enumerate() {
            let Some(b) = b else { continue };
            if best.is_none_or(|(_, bb)| b > bb) {
                best = Some((i, b));
            }
        }
        let Some((pick, benefit)) = best else {
            if reset_if_exhausted(&mut features, original, &selected) {
                continue;
            }
            break;
        };
        selected[pick] = true;
        out.order.push(pick);
        out.benefits.push(benefit);
        let chosen = features[pick].clone();
        apply_update(strategy, &chosen, &mut features, &mut utilities, &selected);
        reset_if_exhausted(&mut features, original, &selected);
    }
    out
}

/// The two-sided bound of Theorem 3 on `F_qs(V) / F_qs(W)`:
/// `R/(n·U_L) ≤ F(V)/F(W) ≤ 1/(n·R·U_S)` where `R` is the smallest ratio
/// between any two values of the same feature, and `U_S`/`U_L` the extreme
/// utilities. Returns `(lower, upper)`; degenerate inputs give `(0, ∞)`.
pub fn theorem3_bounds(features: &[FeatureVec], utilities: &[f64]) -> (f64, f64) {
    let n = features.len() as f64;
    let us = utilities.iter().copied().filter(|u| *u > 0.0).fold(f64::INFINITY, f64::min);
    let ul = utilities.iter().copied().fold(0.0, f64::max);
    // R = min over columns of (min value / max value).
    let mut per_col: std::collections::HashMap<isum_common::GlobalColumnId, (f64, f64)> =
        std::collections::HashMap::new();
    for f in features {
        for &(g, w) in f.entries() {
            if w > 0.0 {
                let e = per_col.entry(g).or_insert((f64::INFINITY, 0.0));
                e.0 = e.0.min(w);
                e.1 = e.1.max(w);
            }
        }
    }
    let r = per_col
        .values()
        .map(|&(lo, hi)| if hi > 0.0 { lo / hi } else { 1.0 })
        .fold(f64::INFINITY, f64::min);
    if !r.is_finite() || n == 0.0 || ul <= 0.0 || !us.is_finite() {
        return (0.0, f64::INFINITY);
    }
    (r / (n * ul), 1.0 / (n * r * us))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benefit::influence;
    use isum_common::rng::DetRng;
    use isum_common::{ColumnId, GlobalColumnId, TableId};

    fn gid(c: u32) -> GlobalColumnId {
        GlobalColumnId::new(TableId(0), ColumnId(c))
    }

    fn vec_of(entries: &[(u32, f64)]) -> FeatureVec {
        FeatureVec::from_entries(entries.iter().map(|&(c, w)| (gid(c), w)).collect())
    }

    #[test]
    fn summary_is_utility_weighted_sum() {
        let features = vec![vec_of(&[(0, 1.0), (1, 0.5)]), vec_of(&[(1, 1.0)])];
        let utilities = vec![0.6, 0.4];
        let v = summary_features(&features, &utilities);
        assert!((v.get(gid(0)) - 0.6).abs() < 1e-12);
        assert!((v.get(gid(1)) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn summary_influence_tracks_true_influence() {
        // Random workload: F(V) should correlate with F(W) = Σ_j S(i,j)U(j).
        let mut rng = DetRng::seeded(11);
        let n = 40;
        let features: Vec<FeatureVec> = (0..n)
            .map(|_| {
                let m = 2 + rng.below(5);
                vec_of(
                    &(0..m)
                        .map(|_| (rng.below(12) as u32, 0.2 + rng.unit() * 0.8))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let raw: Vec<f64> = (0..n).map(|_| rng.unit() + 0.05).collect();
        let total: f64 = raw.iter().sum();
        let utilities: Vec<f64> = raw.iter().map(|r| r / total).collect();
        let v = summary_features(&features, &utilities);
        let tu: f64 = utilities.iter().sum();

        let approx: Vec<f64> =
            (0..n).map(|i| influence_via_summary(i, &features, &utilities, &v, tu)).collect();
        let exact: Vec<f64> = (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&j| j != i)
                    .map(|j| influence(&features[i], &features[j], utilities[j]))
                    .sum()
            })
            .collect();
        let corr = isum_common::stats::pearson(&approx, &exact);
        assert!(corr > 0.5, "summary influence should track exact influence, r={corr:.3}");
    }

    #[test]
    fn select_summary_matches_allpairs_on_disjoint_clusters() {
        // Disjoint clusters: both algorithms must pick one query per
        // cluster, highest-utility cluster first.
        let features = vec![
            vec_of(&[(0, 1.0)]),
            vec_of(&[(0, 1.0)]),
            vec_of(&[(5, 1.0)]),
            vec_of(&[(5, 1.0)]),
            vec_of(&[(9, 1.0)]),
        ];
        let utilities = vec![0.30, 0.25, 0.20, 0.15, 0.10];
        let sum = select_summary(
            features.clone(),
            &features,
            utilities.clone(),
            3,
            UpdateStrategy::ZeroFeatures,
        );
        let all = crate::allpairs::select_all_pairs(
            features.clone(),
            &features,
            utilities,
            3,
            UpdateStrategy::ZeroFeatures,
        );
        assert_eq!(sum.order, all.order, "summary {:?} vs all-pairs {:?}", sum.order, all.order);
        assert_eq!(sum.order, vec![0, 2, 4]);
    }

    #[test]
    fn select_summary_selects_k_without_repeats() {
        let mut rng = DetRng::seeded(3);
        let features: Vec<FeatureVec> = (0..30)
            .map(|_| {
                vec_of(&(0..3).map(|_| (rng.below(10) as u32, rng.unit())).collect::<Vec<_>>())
            })
            .collect();
        let utilities: Vec<f64> = (0..30).map(|_| rng.unit() / 30.0).collect();
        let sel = select_summary(
            features.clone(),
            &features,
            utilities,
            10,
            UpdateStrategy::ZeroFeatures,
        );
        assert_eq!(sel.order.len(), 10);
        let mut s = sel.order.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn theorem3_bounds_bracket_the_ratio() {
        let mut rng = DetRng::seeded(7);
        let n = 20;
        let features: Vec<FeatureVec> = (0..n)
            .map(|_| {
                vec_of(
                    &(0..4)
                        .map(|_| (rng.below(8) as u32, 0.3 + rng.unit() * 0.7))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let raw: Vec<f64> = (0..n).map(|_| 0.5 + rng.unit()).collect();
        let total: f64 = raw.iter().sum();
        let utilities: Vec<f64> = raw.iter().map(|r| r / total).collect();
        let (lo, hi) = theorem3_bounds(&features, &utilities);
        assert!(lo > 0.0 && hi.is_finite() && lo <= hi);
        let v = summary_features(&features, &utilities);
        let tu: f64 = utilities.iter().sum();
        for i in 0..n {
            let fv = influence_via_summary(i, &features, &utilities, &v, tu);
            let fw: f64 = (0..n)
                .filter(|&j| j != i)
                .map(|j| influence(&features[i], &features[j], utilities[j]))
                .sum();
            if fw > 1e-9 {
                let ratio = fv / fw;
                assert!(
                    ratio >= lo * 0.999 && ratio <= hi * 1.001,
                    "ratio {ratio} outside [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn degenerate_inputs_give_trivial_bounds() {
        let (lo, hi) = theorem3_bounds(&[], &[]);
        assert_eq!(lo, 0.0);
        assert_eq!(hi, f64::INFINITY);
    }
}
