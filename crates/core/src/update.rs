//! Post-selection update strategies (Sec 4.3 of the paper, ablated in
//! Fig 13).
//!
//! After a query is selected, the unselected queries' utilities and feature
//! vectors are updated so the next greedy pick accounts for what the
//! selected query already covers.

use crate::features::FeatureVec;
use crate::similarity::weighted_jaccard;

/// How state is updated after each greedy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateStrategy {
    /// No updates at all (Fig 13 "No Update").
    NoUpdate,
    /// Only discount utilities: `U(qj) ← U(qj) − U(qj)·S(qs, qj)`
    /// (Fig 13 "Utility Update").
    UtilityOnly,
    /// Utility update + subtract `S(qs, qj)` from `qj`'s feature weights
    /// (Fig 13 "Utility Update + Weight Subtract").
    SubtractWeights,
    /// Utility update + zero `qj`'s features present in `qs` — the paper's
    /// recommended option (Fig 13 "Utility Update + Feature Remove").
    #[default]
    ZeroFeatures,
}

/// Applies one selection's influence to every unselected query, mutating
/// `features`/`utilities` in place. `selected_features` must be the selected
/// query's feature vector *at selection time*.
pub fn apply_update(
    strategy: UpdateStrategy,
    selected_features: &FeatureVec,
    features: &mut [FeatureVec],
    utilities: &mut [f64],
    selected: &[bool],
) {
    if strategy == UpdateStrategy::NoUpdate {
        return;
    }
    for j in 0..features.len() {
        if selected[j] {
            continue;
        }
        let s = weighted_jaccard(selected_features, &features[j]);
        utilities[j] -= utilities[j] * s;
        match strategy {
            UpdateStrategy::SubtractWeights => features[j].subtract_scalar(s),
            UpdateStrategy::ZeroFeatures => features[j].zero_where_present(selected_features),
            UpdateStrategy::UtilityOnly | UpdateStrategy::NoUpdate => {}
        }
    }
}

/// Algorithm 2 line 12: when *every* unselected query has all-zero
/// features, restore their original vectors so large compressed workloads
/// can keep selecting. Returns true when a reset happened.
pub fn reset_if_exhausted(
    features: &mut [FeatureVec],
    original: &[FeatureVec],
    selected: &[bool],
) -> bool {
    let exhausted =
        features.iter().zip(selected).filter(|(_, &sel)| !sel).all(|(f, _)| f.all_zero());
    let any_unselected = selected.iter().any(|&s| !s);
    if exhausted && any_unselected {
        for j in 0..features.len() {
            if !selected[j] {
                features[j] = original[j].clone();
            }
        }
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_common::{ColumnId, GlobalColumnId, TableId};

    fn vec_of(entries: &[(u32, f64)]) -> FeatureVec {
        FeatureVec::from_entries(
            entries
                .iter()
                .map(|&(c, w)| (GlobalColumnId::new(TableId(0), ColumnId(c)), w))
                .collect(),
        )
    }

    fn setup() -> (Vec<FeatureVec>, Vec<f64>, Vec<bool>) {
        (
            vec![vec_of(&[(0, 1.0)]), vec_of(&[(0, 1.0), (1, 1.0)]), vec_of(&[(2, 1.0)])],
            vec![0.5, 0.3, 0.2],
            vec![true, false, false],
        )
    }

    #[test]
    fn no_update_changes_nothing() {
        let (mut f, mut u, sel) = setup();
        let snapshot = (f.clone(), u.clone());
        let chosen = f[0].clone();
        apply_update(UpdateStrategy::NoUpdate, &chosen, &mut f, &mut u, &sel);
        assert_eq!((f, u), snapshot);
    }

    #[test]
    fn utility_only_discounts_by_similarity() {
        let (mut f, mut u, sel) = setup();
        let chosen = f[0].clone();
        apply_update(UpdateStrategy::UtilityOnly, &chosen, &mut f, &mut u, &sel);
        // S(q0, q1) = 0.5 → U(q1) = 0.3 * 0.5 = 0.15; q2 disjoint → unchanged.
        assert!((u[1] - 0.15).abs() < 1e-12);
        assert!((u[2] - 0.2).abs() < 1e-12);
        // Features untouched.
        assert_eq!(f[1], vec_of(&[(0, 1.0), (1, 1.0)]));
    }

    #[test]
    fn zero_features_removes_covered_columns() {
        let (mut f, mut u, sel) = setup();
        let chosen = f[0].clone();
        apply_update(UpdateStrategy::ZeroFeatures, &chosen, &mut f, &mut u, &sel);
        assert_eq!(f[1].get(GlobalColumnId::new(TableId(0), ColumnId(0))), 0.0);
        assert_eq!(f[1].get(GlobalColumnId::new(TableId(0), ColumnId(1))), 1.0);
        assert_eq!(f[2], vec_of(&[(2, 1.0)]), "disjoint query untouched");
    }

    #[test]
    fn subtract_weights_reduces_gradually() {
        let (mut f, mut u, sel) = setup();
        let chosen = f[0].clone();
        apply_update(UpdateStrategy::SubtractWeights, &chosen, &mut f, &mut u, &sel);
        // S(q0,q1) = 0.5 subtracted from both of q1's weights.
        assert!((f[1].get(GlobalColumnId::new(TableId(0), ColumnId(0))) - 0.5).abs() < 1e-12);
        assert!((f[1].get(GlobalColumnId::new(TableId(0), ColumnId(1))) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn selected_queries_not_updated() {
        let (mut f, mut u, sel) = setup();
        let chosen = f[0].clone();
        apply_update(UpdateStrategy::ZeroFeatures, &chosen, &mut f, &mut u, &sel);
        assert_eq!(f[0], chosen, "selected query's own features untouched");
        assert!((u[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_fires_only_when_all_unselected_exhausted() {
        let original = vec![vec_of(&[(0, 1.0)]), vec_of(&[(1, 1.0)]), vec_of(&[(2, 1.0)])];
        let mut f = vec![vec_of(&[(0, 1.0)]), vec_of(&[(1, 0.0)]), vec_of(&[(2, 0.0)])];
        let sel = vec![true, false, false];
        assert!(reset_if_exhausted(&mut f, &original, &sel));
        assert_eq!(f[1], original[1]);
        assert_eq!(f[2], original[2]);
        assert_eq!(f[0], vec_of(&[(0, 1.0)]), "selected untouched");
        // Not exhausted → no reset.
        let mut f2 = vec![vec_of(&[(0, 1.0)]), vec_of(&[(1, 0.5)]), vec_of(&[(2, 0.0)])];
        assert!(!reset_if_exhausted(&mut f2, &original, &sel));
    }

    #[test]
    fn reset_noop_when_everything_selected() {
        let original = vec![vec_of(&[(0, 1.0)])];
        let mut f = vec![vec_of(&[(0, 0.0)])];
        assert!(!reset_if_exhausted(&mut f, &original, &[true]));
    }
}
