//! Query utility (Sec 4.1, Def 2 of the paper).
//!
//! `Δ(q)` estimates the reduction in a query's cost when all its indexes are
//! added; `U(q) = Δ(q) / Σ_j Δ(q_j)` is its share of the workload's total
//! potential. The paper supports two estimators: the cost alone (highly
//! correlated already, Fig 5a) and cost × (1 − average selectivity)
//! (Fig 5b); both are implemented.

use isum_workload::Workload;

/// Estimator for the potential cost reduction `Δ(q)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UtilityMode {
    /// `Δ(q) = C(q)` — used when statistics are unavailable.
    CostOnly,
    /// `Δ(q) = (1 − Sel(q)) × C(q)` with `Sel(q)` the average selectivity
    /// of the query's filter and join predicates (the paper's default).
    #[default]
    CostTimesSelectivity,
}

/// Raw reduction estimate `Δ(q)` for one query.
pub fn raw_reduction(workload: &Workload, idx: usize, mode: UtilityMode) -> f64 {
    let q = &workload.queries[idx];
    match mode {
        UtilityMode::CostOnly => q.cost,
        UtilityMode::CostTimesSelectivity => {
            (1.0 - q.bound.average_selectivity()).max(0.0) * q.cost
        }
    }
}

/// Normalized utilities `U(q_i)` for the whole workload (sums to 1 when any
/// reduction is positive; all zeros otherwise).
pub fn utilities(workload: &Workload, mode: UtilityMode) -> Vec<f64> {
    let raw: Vec<f64> = (0..workload.len()).map(|i| raw_reduction(workload, i, mode)).collect();
    let total: f64 = raw.iter().sum();
    if total <= 0.0 {
        return vec![0.0; raw.len()];
    }
    raw.into_iter().map(|r| r / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_catalog::CatalogBuilder;

    fn workload() -> Workload {
        let catalog = CatalogBuilder::new()
            .table("t", 100_000)
            .col_key("a")
            .col_int("b", 1000, 0, 1000)
            .finish()
            .unwrap()
            .build();
        let mut w = Workload::from_sql(
            catalog,
            &[
                "SELECT a FROM t WHERE b = 5",   // selective
                "SELECT a FROM t WHERE b > 100", // ~90% selectivity
                "SELECT a FROM t",               // no predicates
            ],
        )
        .unwrap();
        w.set_costs(&[100.0, 100.0, 100.0]);
        w
    }

    #[test]
    fn cost_only_equals_cost() {
        let w = workload();
        assert_eq!(raw_reduction(&w, 0, UtilityMode::CostOnly), 100.0);
        assert_eq!(raw_reduction(&w, 2, UtilityMode::CostOnly), 100.0);
    }

    #[test]
    fn selectivity_mode_rewards_selective_queries() {
        let w = workload();
        let selective = raw_reduction(&w, 0, UtilityMode::CostTimesSelectivity);
        let broad = raw_reduction(&w, 1, UtilityMode::CostTimesSelectivity);
        let none = raw_reduction(&w, 2, UtilityMode::CostTimesSelectivity);
        assert!(selective > broad, "{selective} vs {broad}");
        assert_eq!(none, 0.0, "no predicates → avg selectivity 1 → no potential");
    }

    #[test]
    fn utilities_normalize_to_one() {
        let w = workload();
        for mode in [UtilityMode::CostOnly, UtilityMode::CostTimesSelectivity] {
            let u = utilities(&w, mode);
            assert_eq!(u.len(), 3);
            assert!((u.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(u.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn zero_cost_workload_yields_zero_utilities() {
        let mut w = workload();
        w.set_costs(&[0.0, 0.0, 0.0]);
        let u = utilities(&w, UtilityMode::CostOnly);
        assert_eq!(u, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn utilities_proportional_to_cost_in_cost_mode() {
        let mut w = workload();
        w.set_costs(&[10.0, 30.0, 60.0]);
        let u = utilities(&w, UtilityMode::CostOnly);
        assert!((u[0] - 0.1).abs() < 1e-12);
        assert!((u[1] - 0.3).abs() < 1e-12);
        assert!((u[2] - 0.6).abs() < 1e-12);
    }
}
