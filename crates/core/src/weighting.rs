//! Weighing queries in the compressed workload (Sec 7, Algorithms 4–5,
//! ablated in Fig 14).
//!
//! The selected queries represent the input workload to varying degrees;
//! their weights tell the tuner how much each matters. The paper's full
//! method re-calibrates benefits *after* selection (benefits recorded
//! during greedy selection over-weight early picks) and redistributes
//! utility across query templates (indexes for one instance serve all
//! instances of its template).

use std::collections::HashMap;

use isum_common::TemplateId;

use crate::allpairs::Selection;
use crate::features::FeatureVec;
use crate::similarity::weighted_jaccard;
use crate::summary::summary_features;
use crate::update::{apply_update, UpdateStrategy};

/// Weighting strategy for the compressed workload (Fig 14's four variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightingStrategy {
    /// Uniform weights ("No Weighing").
    Uniform,
    /// Normalized conditional benefits recorded during selection
    /// ("Benefit (Selection)").
    SelectionBenefit,
    /// Re-calibrated benefits via Algorithm 5 ("Recalib. Benefit").
    Recalibrated,
    /// Algorithm 4 template-based utility redistribution + Algorithm 5
    /// ("Recalib. w/ Template Weighing") — the paper's recommendation.
    #[default]
    RecalibratedTemplate,
}

/// Computes the weight of every selected query (aligned with
/// `selection.order`). Weights are normalized to sum to 1.
///
/// `templates` gives the template id of every workload query (aligned with
/// `original_features`/`original_utilities`); taking the slice rather than
/// a `Workload` lets the streaming compressor — which never materializes a
/// closed workload — run the exact same Alg 4 + Alg 5 weighting as the
/// batch path, keeping the two bit-identical.
pub fn weigh_selected(
    strategy: WeightingStrategy,
    templates: &[TemplateId],
    selection: &Selection,
    original_features: &[FeatureVec],
    original_utilities: &[f64],
) -> Vec<f64> {
    let k = selection.order.len();
    if k == 0 {
        return Vec::new();
    }
    match strategy {
        WeightingStrategy::Uniform => vec![1.0 / k as f64; k],
        WeightingStrategy::SelectionBenefit => normalize(selection.benefits.clone()),
        WeightingStrategy::Recalibrated => {
            let utilities: Vec<f64> =
                selection.order.iter().map(|&i| original_utilities[i]).collect();
            let excluded = vec![false; templates.len()];
            recalibrate(
                selection,
                &utilities,
                original_features,
                original_utilities,
                &excluded,
                false,
            )
        }
        WeightingStrategy::RecalibratedTemplate => {
            // Algorithm 4: template-based utility computation.
            let mut freq: HashMap<TemplateId, usize> = HashMap::new();
            for &i in &selection.order {
                *freq.entry(templates[i]).or_insert(0) += 1;
            }
            let mut template_utility: HashMap<TemplateId, f64> = HashMap::new();
            for (i, &t) in templates.iter().enumerate() {
                if freq.contains_key(&t) {
                    *template_utility.entry(t).or_insert(0.0) += original_utilities[i];
                }
            }
            let utilities: Vec<f64> = selection
                .order
                .iter()
                .map(|&i| {
                    let t = templates[i];
                    template_utility[&t] / freq[&t] as f64
                })
                .collect();
            // W' = W minus queries whose template matches a selected one.
            let excluded: Vec<bool> = templates.iter().map(|t| freq.contains_key(t)).collect();
            recalibrate(
                selection,
                &utilities,
                original_features,
                original_utilities,
                &excluded,
                true,
            )
        }
    }
}

/// Algorithm 5: greedy re-weighing of the selected queries against a
/// summary of the *unselected* workload, updating the remainder after each
/// pick.
fn recalibrate(
    selection: &Selection,
    selected_utilities: &[f64],
    original_features: &[FeatureVec],
    original_utilities: &[f64],
    excluded: &[bool],
    template_mode: bool,
) -> Vec<f64> {
    let n = original_features.len();
    // Build the unselected pool W_u.
    let in_selection = {
        let mut v = vec![false; n];
        for &i in &selection.order {
            v[i] = true;
        }
        v
    };
    let mut pool_features: Vec<FeatureVec> = Vec::new();
    let mut pool_utilities: Vec<f64> = Vec::new();
    for i in 0..n {
        let drop = in_selection[i] || (template_mode && excluded[i]);
        if !drop {
            pool_features.push(original_features[i].clone());
            pool_utilities.push(original_utilities[i]);
        }
    }
    let pool_selected = vec![false; pool_features.len()];

    // Iteratively assign each selected query its re-calibrated benefit.
    let mut remaining: Vec<usize> = (0..selection.order.len()).collect();
    let mut weights = vec![0.0; selection.order.len()];
    while !remaining.is_empty() {
        let summary = summary_features(&pool_features, &pool_utilities);
        // `total_cmp` orders every f64 (no-panic contract, DESIGN.md §9);
        // benefits are finite in practice, where it agrees with `<`.
        let Some((pos, benefit)) = remaining
            .iter()
            .map(|&pos| {
                let qi = selection.order[pos];
                let b =
                    selected_utilities[pos] + weighted_jaccard(&original_features[qi], &summary);
                (pos, b)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
        else {
            break;
        };
        weights[pos] = benefit;
        remaining.retain(|&p| p != pos);
        // Update the pool with the chosen query's influence.
        let chosen = original_features[selection.order[pos]].clone();
        let mut pool_util_mut = pool_utilities.clone();
        apply_update(
            UpdateStrategy::ZeroFeatures,
            &chosen,
            &mut pool_features,
            &mut pool_util_mut,
            &pool_selected,
        );
        pool_utilities = pool_util_mut;
    }
    normalize(weights)
}

fn normalize(mut ws: Vec<f64>) -> Vec<f64> {
    let total: f64 = ws.iter().sum();
    if total > 0.0 {
        for w in &mut ws {
            *w /= total;
        }
    } else if !ws.is_empty() {
        let u = 1.0 / ws.len() as f64;
        ws.iter_mut().for_each(|w| *w = u);
    }
    ws
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{Featurizer, WorkloadFeatures};
    use crate::utility::{utilities, UtilityMode};
    use isum_catalog::CatalogBuilder;
    use isum_workload::Workload;

    fn workload() -> Workload {
        let catalog = CatalogBuilder::new()
            .table("t", 100_000)
            .col_key("a")
            .col_int("b", 1000, 0, 1000)
            .col_int("c", 100, 0, 100)
            .finish()
            .unwrap()
            .build();
        let mut w = Workload::from_sql(
            catalog,
            &[
                "SELECT a FROM t WHERE b = 1",
                "SELECT a FROM t WHERE b = 2",  // same template as #0
                "SELECT a FROM t WHERE b = 3",  // same template
                "SELECT a FROM t WHERE c > 50", // different template
            ],
        )
        .unwrap();
        w.set_costs(&[100.0, 90.0, 80.0, 50.0]);
        w
    }

    fn setup(w: &Workload) -> (Vec<TemplateId>, Vec<FeatureVec>, Vec<f64>, Selection) {
        let wf = WorkloadFeatures::build(w, &Featurizer::default());
        let u = utilities(w, UtilityMode::CostOnly);
        let selection = Selection { order: vec![0, 3], benefits: vec![0.9, 0.2] };
        let templates = w.queries.iter().map(|q| q.template).collect();
        (templates, wf.original, u, selection)
    }

    #[test]
    fn uniform_weights_are_equal() {
        let w = workload();
        let (t, f, u, sel) = setup(&w);
        let ws = weigh_selected(WeightingStrategy::Uniform, &t, &sel, &f, &u);
        assert_eq!(ws, vec![0.5, 0.5]);
    }

    #[test]
    fn selection_benefit_normalizes_recorded_benefits() {
        let w = workload();
        let (t, f, u, sel) = setup(&w);
        let ws = weigh_selected(WeightingStrategy::SelectionBenefit, &t, &sel, &f, &u);
        assert!((ws[0] - 0.9 / 1.1).abs() < 1e-9);
        assert!((ws[1] - 0.2 / 1.1).abs() < 1e-9);
    }

    #[test]
    fn all_strategies_normalize_to_one() {
        let w = workload();
        let (t, f, u, sel) = setup(&w);
        for s in [
            WeightingStrategy::Uniform,
            WeightingStrategy::SelectionBenefit,
            WeightingStrategy::Recalibrated,
            WeightingStrategy::RecalibratedTemplate,
        ] {
            let ws = weigh_selected(s, &t, &sel, &f, &u);
            assert_eq!(ws.len(), 2);
            assert!((ws.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{s:?}");
            assert!(ws.iter().all(|&x| x >= 0.0), "{s:?}");
        }
    }

    #[test]
    fn template_weighing_boosts_repeated_templates() {
        // Query 0's template has 3 instances carrying most of the cost;
        // query 3's template is unique and cheap. Template-based utility
        // must weigh query 0 well above query 3.
        let w = workload();
        let (t, f, u, sel) = setup(&w);
        let ws = weigh_selected(WeightingStrategy::RecalibratedTemplate, &t, &sel, &f, &u);
        assert!(ws[0] > ws[1] * 1.5, "template with 270 cost mass vs 50: {ws:?}");
    }

    #[test]
    fn empty_selection_empty_weights() {
        let w = workload();
        let (t, f, u, _) = setup(&w);
        let sel = Selection::default();
        let ws = weigh_selected(WeightingStrategy::RecalibratedTemplate, &t, &sel, &f, &u);
        assert!(ws.is_empty());
    }

    #[test]
    fn zero_benefits_fall_back_to_uniform() {
        let w = workload();
        let (t, f, _, _) = setup(&w);
        let sel = Selection { order: vec![0, 1], benefits: vec![0.0, 0.0] };
        let ws = weigh_selected(WeightingStrategy::SelectionBenefit, &t, &sel, &f, &[0.0; 4]);
        assert_eq!(ws, vec![0.5, 0.5]);
    }
}
