//! Property tests for the cross-shard merge (DESIGN.md §13): for any
//! pool of contributions and any assignment of them to shards, the
//! merged summary state must be bit-identical to merging the whole pool
//! in one shard. This is the determinism contract the sharded service's
//! `GET /summary` relies on — the unit tests in `merge.rs` pin a few
//! hand-built partitions, these pin arbitrary ones.

use std::collections::BTreeMap;

use isum_common::{ColumnId, GlobalColumnId, TableId};
use isum_core::{merge_partials, Contribution, IsumConfig, ShardPartial};
use proptest::prelude::*;

/// One generated contribution, in integer space so generation stays in
/// the shim's strategy surface; floats are derived deterministically.
/// `(template, delta_raw, exponent, entries)`.
type RawContribution = (usize, u32, u32, Vec<(u32, u32)>);

fn contribution(raw: &RawContribution) -> (String, Contribution) {
    let (template, delta_raw, exponent, entries) = raw;
    let fp = format!("template-{template}");
    // Deltas spanning ten orders of magnitude make float association
    // error visible if the fold order ever varied; `+1` keeps Δ > 0 for
    // most cases while `delta_raw == u32::MAX` wraps to 0, covering the
    // zero-mass path too.
    let delta = f64::from(delta_raw.wrapping_add(1)) * 10f64.powi(*exponent as i32 % 11 - 5);
    let entries = entries
        .iter()
        .map(|&(col, w)| (GlobalColumnId::new(TableId(0), ColumnId(col)), f64::from(w) / 997.0))
        .collect();
    (fp, Contribution { delta, entries })
}

/// Splits the pool into `shards` partials, assigning contribution `i`
/// to shard `(i * mult + salt) % shards` — an arbitrary deterministic
/// scatter — and permuting each shard's arrival order by reversal when
/// `reverse` is set.
fn partition(
    pool: &[(String, Contribution)],
    shards: usize,
    mult: usize,
    salt: usize,
    reverse: bool,
) -> Vec<ShardPartial> {
    let mut grouped: Vec<BTreeMap<String, Vec<Contribution>>> = vec![BTreeMap::new(); shards];
    for (i, (fp, c)) in pool.iter().enumerate() {
        let shard = i.wrapping_mul(mult).wrapping_add(salt) % shards;
        grouped[shard].entry(fp.clone()).or_default().push(c.clone());
    }
    grouped
        .into_iter()
        .map(|m| {
            let mut templates: Vec<(String, Vec<Contribution>)> = m.into_iter().collect();
            if reverse {
                templates.reverse();
                for (_, contributions) in &mut templates {
                    contributions.reverse();
                }
            }
            ShardPartial { templates }
        })
        .collect()
}

fn feature_bits(v: &isum_core::FeatureVec) -> Vec<(GlobalColumnId, u64)> {
    v.entries().iter().map(|&(g, w)| (g, w.to_bits())).collect()
}

proptest! {
    #[test]
    fn merged_features_are_shard_partition_invariant(
        raw in prop::collection::vec(
            (0usize..5, 0u32..100_000, 0u32..11, prop::collection::vec((0u32..9, 0u32..1000), 1..5)),
            1..60,
        ),
        shards in 1usize..6,
        mult in 1usize..1000,
        salt in 0usize..1000,
        reverse in any::<bool>(),
    ) {
        let pool: Vec<(String, Contribution)> = raw.iter().map(contribution).collect();
        let whole = merge_partials(&partition(&pool, 1, 1, 0, false));
        let split = merge_partials(&partition(&pool, shards, mult, salt, reverse));

        prop_assert_eq!(split.observed, whole.observed);
        prop_assert_eq!(split.total_mass.to_bits(), whole.total_mass.to_bits());
        prop_assert_eq!(
            feature_bits(&split.summary_features()),
            feature_bits(&whole.summary_features()),
            "global V must be bit-identical for shards={} mult={} salt={} reverse={}",
            shards, mult, salt, reverse
        );
        prop_assert_eq!(split.templates.len(), whole.templates.len());
        for (a, b) in split.templates.iter().zip(whole.templates.iter()) {
            prop_assert_eq!(&a.fingerprint, &b.fingerprint);
            prop_assert_eq!(a.count, b.count);
            prop_assert_eq!(a.mass.to_bits(), b.mass.to_bits());
            prop_assert_eq!(feature_bits(&a.features), feature_bits(&b.features));
        }
    }

    #[test]
    fn merged_selection_is_shard_partition_invariant(
        raw in prop::collection::vec(
            (0usize..4, 1u32..100_000, 0u32..7, prop::collection::vec((0u32..6, 1u32..1000), 1..4)),
            4..40,
        ),
        shards in 2usize..5,
        salt in 0usize..100,
        k in 1usize..4,
    ) {
        let pool: Vec<(String, Contribution)> = raw.iter().map(contribution).collect();
        let whole = merge_partials(&partition(&pool, 1, 1, 0, false));
        let split = merge_partials(&partition(&pool, shards, 2654435761, salt, true));
        let a = whole.select(k, IsumConfig::isum()).unwrap();
        let b = split.select(k, IsumConfig::isum()).unwrap();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(x.template, y.template);
            prop_assert_eq!(
                x.weight.to_bits(), y.weight.to_bits(),
                "weights must match bit-for-bit (shards={} salt={} k={})", shards, salt, k
            );
        }
    }
}
