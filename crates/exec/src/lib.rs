//! `isum_exec` — zero-dependency parallel execution for the ISUM
//! reproduction.
//!
//! Every hot path in this codebase — all-pairs similarity, featurization,
//! what-if costing inside the advisor's greedy rounds, and the experiment
//! harness — fans out over independent inputs. This crate gives them a
//! single, `std`-only substrate: a work-stealing scoped thread pool
//! ([`ThreadPool`]) with three primitives:
//!
//! * [`par_map`] / [`ThreadPool::par_map`] — parallel map whose output is
//!   collected **by input index**, so the result is bit-identical to the
//!   sequential map for pure functions (the determinism contract the
//!   regression tests in `tests/determinism.rs` enforce end-to-end);
//! * [`par_chunks`] / [`ThreadPool::par_chunks`] — the chunked form;
//! * [`try_par_map`] / [`ThreadPool::try_par_map`] — the panic-isolating
//!   form: a panicking item is quarantined into an `Err(TaskPanic)` slot
//!   (counted as `faults.quarantined`) while every sibling completes;
//! * [`scope`] / [`ThreadPool::scope`] — structured spawning of tasks that
//!   borrow from the caller's stack, joined before the scope returns, with
//!   panic propagation (first panic re-raised, pool never poisoned) and
//!   nested-scope support (waiters execute queued tasks instead of
//!   blocking).
//!
//! # Configuration
//!
//! The process-wide pool defaults to the machine's available parallelism,
//! overridden by the `ISUM_THREADS` environment variable or
//! programmatically via [`set_global_threads`] (the CLI's `--threads`
//! flag). `threads == 1` is the sequential reference: no workers are
//! spawned and every task runs inline on the caller in submission order.
//!
//! # Telemetry
//!
//! When [`isum_common::telemetry`] is enabled the pool reports under the
//! `exec.*` vocabulary: per-worker task counters
//! (`exec.worker.<i>.tasks`), tasks executed by scope-waiting helper
//! threads (`exec.helper.tasks`), a total (`exec.tasks`), successful
//! steals (`exec.steals`), the live queue depth (`exec.queue_depth`
//! gauge), the configured executor count (`exec.pool.threads` gauge), and
//! timing histograms for pool spans (`exec.scope_ns`, `exec.par_map_ns`).
//!
//! # Example
//!
//! ```
//! let pool = isum_exec::ThreadPool::new(4);
//! let squares = pool.par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]); // always in input order
//! ```

mod pool;

pub use pool::{Scope, TaskPanic, ThreadPool};

use std::sync::{Arc, Mutex, OnceLock};

static GLOBAL: OnceLock<Mutex<Arc<ThreadPool>>> = OnceLock::new();

/// Executor count for a fresh global pool: `ISUM_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism.
fn default_threads() -> usize {
    if let Ok(v) = std::env::var("ISUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

fn global_slot() -> &'static Mutex<Arc<ThreadPool>> {
    GLOBAL.get_or_init(|| Mutex::new(Arc::new(ThreadPool::new(default_threads()))))
}

/// The process-wide pool (created on first use; sized per the
/// configuration rules in the module docs).
pub fn global() -> Arc<ThreadPool> {
    global_slot().lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
}

/// Replaces the global pool with one of `n` executors (clamped to at
/// least 1). The previous pool finishes any in-flight scopes held by
/// other threads and shuts down when its last handle drops. No-op when
/// the pool already has `n` executors.
pub fn set_global_threads(n: usize) {
    let n = n.max(1);
    let mut slot = global_slot().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if slot.threads() != n {
        *slot = Arc::new(ThreadPool::new(n));
    }
}

/// Executor count of the current global pool.
pub fn global_threads() -> usize {
    global().threads()
}

/// [`ThreadPool::par_map`] on the global pool.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    global().par_map(items, f)
}

/// [`ThreadPool::par_map_indexed`] on the global pool.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    global().par_map_indexed(items, f)
}

/// [`ThreadPool::try_par_map`] on the global pool: parallel map with
/// per-item panic quarantine (`Err(TaskPanic)` slots instead of a
/// propagated panic).
pub fn try_par_map<T, R, F>(items: &[T], f: F) -> Vec<Result<R, TaskPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    global().try_par_map(items, f)
}

/// [`ThreadPool::par_chunks`] on the global pool.
pub fn par_chunks<T, R, F>(items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    global().par_chunks(items, chunk_size, f)
}

/// [`ThreadPool::scope`] on the global pool.
pub fn scope<'env, R>(f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
    global().scope(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_pool_is_reconfigurable() {
        set_global_threads(2);
        assert_eq!(global_threads(), 2);
        let out = par_map(&[1u32, 2, 3], |&x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
        set_global_threads(1);
        assert_eq!(global_threads(), 1);
        let out = par_map_indexed(&[5u32, 6], |i, &x| (i, x));
        assert_eq!(out, vec![(0, 5), (1, 6)]);
    }

    #[test]
    fn global_scope_runs() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        scope(|s| {
            let flag = &flag;
            s.spawn(move || flag.store(true, std::sync::atomic::Ordering::SeqCst));
        });
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
