//! The work-stealing pool, scopes, and deterministic parallel primitives.
//!
//! Layout: one lock-striped deque per worker plus a round-robin submission
//! cursor. Owners pop from the back of their own deque (LIFO keeps nested
//! work hot in cache); idle workers steal from the front of a victim's
//! deque (FIFO steals take the oldest, largest-granularity work first).
//! Every queue transition updates the `exec.queue_depth` gauge and steals
//! increment `exec.steals` when telemetry is enabled.
//!
//! # Determinism contract
//!
//! [`ThreadPool::par_map`] and [`ThreadPool::par_chunks`] write each
//! result into a slot owned by its input index and assemble the output in
//! input order, so the returned vector is bit-identical to what the
//! sequential `items.iter().map(f).collect()` would produce — regardless
//! of thread count, scheduling, or steal order — provided `f` itself is a
//! pure function of its arguments. A pool with `threads == 1` never
//! spawns workers and runs every task inline on the caller, in submission
//! order, making `--threads 1` exactly the sequential program.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use isum_common::telemetry;
use isum_common::{count, record_ns};

/// An erased unit of work queued on the pool.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// How many chunks each executor gets per `par_map`/`par_chunks` call;
/// more than one so stolen work rebalances a skewed cost distribution.
const CHUNKS_PER_THREAD: usize = 4;

thread_local! {
    /// Worker index when the current thread is a pool worker.
    static WORKER_INDEX: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

/// Locks a mutex, ignoring poisoning: pool state is only mutated by this
/// module, user panics are caught before any of these locks are released,
/// and a poisoned-lock abort is exactly the "pool poisoning" the panic
/// tests forbid.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// State shared between the pool handle and its workers.
struct Shared {
    /// One deque per worker; owners pop from the back, thieves from the front.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Tasks queued but not yet claimed by any executor.
    queued: AtomicUsize,
    /// Parking lot for idle workers.
    sleep: Mutex<()>,
    /// Signalled when new work arrives or the pool shuts down.
    wake: Condvar,
    /// Set once by [`ThreadPool::drop`]; workers exit when they see it.
    shutdown: AtomicBool,
    /// Round-robin cursor for submissions from non-worker threads.
    rr: AtomicUsize,
}

impl Shared {
    /// Publishes the queue depth gauge (only when telemetry is enabled —
    /// queue transitions are chunk-granular, so the registry lookup is off
    /// the per-item path).
    fn publish_depth(&self) {
        if telemetry::enabled() {
            telemetry::gauge("exec.queue_depth").set(self.queued.load(Ordering::SeqCst) as i64);
        }
    }

    /// Enqueues a task: onto the current worker's own deque when called
    /// from a worker (LIFO locality for nested scopes), else round-robin.
    fn push(&self, task: Task) {
        let slot = WORKER_INDEX
            .with(std::cell::Cell::get)
            .unwrap_or_else(|| self.rr.fetch_add(1, Ordering::Relaxed))
            % self.queues.len();
        lock(&self.queues[slot]).push_back(task);
        self.queued.fetch_add(1, Ordering::SeqCst);
        self.publish_depth();
        let _g = lock(&self.sleep);
        self.wake.notify_one();
    }

    /// Takes a task for executor `home`: own deque first (back), then
    /// steals from the other deques (front). `home` may exceed the worker
    /// count for helper threads, which simply steal from everyone.
    fn take(&self, home: usize) -> Option<Task> {
        let n = self.queues.len();
        if home < n {
            if let Some(t) = lock(&self.queues[home]).pop_back() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                self.publish_depth();
                return Some(t);
            }
        }
        for off in 0..n {
            let victim = home.wrapping_add(1 + off) % n;
            if victim == home {
                continue;
            }
            if let Some(t) = lock(&self.queues[victim]).pop_front() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                count!("exec.steals");
                self.publish_depth();
                return Some(t);
            }
        }
        None
    }
}

/// A task panic captured by [`ThreadPool::try_par_map`]: the quarantined
/// item's slot holds this instead of a result, and the run continues.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// The panic payload rendered as text (`&str`/`String` payloads are
    /// preserved verbatim; anything else is summarized).
    pub message: String,
}

impl TaskPanic {
    fn from_payload(payload: &(dyn std::any::Any + Send)) -> Self {
        Self { message: payload_message(payload) }
    }
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task panicked: {}", self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Renders a panic payload as text for logs and telemetry labels.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Every panic observed by one scope: the first payload (re-raised when
/// the scope returns), a total count, and the label of each panicking
/// task so diagnostics never lose panics past the first.
#[derive(Default)]
struct PanicLog {
    first: Option<Box<dyn std::any::Any + Send>>,
    count: usize,
    labels: Vec<String>,
}

impl PanicLog {
    /// Records one panic: counts `exec.task_panics` and a per-label
    /// counter (`exec.panic.<label>`), keeps the first payload for
    /// propagation, and remembers every label.
    fn record(&mut self, label: &str, payload: Box<dyn std::any::Any + Send>) {
        count!("exec.task_panics");
        if telemetry::enabled() {
            telemetry::counter(&format!("exec.panic.{label}")).inc();
        }
        self.count += 1;
        self.labels.push(label.to_string());
        if self.first.is_none() {
            self.first = Some(payload);
        }
    }
}

/// Completion tracking for one [`Scope`]: a pending-task count, the panic
/// log, and a condvar the scope owner parks on.
#[derive(Default)]
struct ScopeState {
    pending: AtomicUsize,
    panics: Mutex<PanicLog>,
    done_lock: Mutex<()>,
    done: Condvar,
}

/// A spawn handle tied to a [`ThreadPool::scope`] invocation. Tasks
/// spawned on it may borrow anything that outlives the scope (`'env`);
/// the scope does not return until every spawned task has finished.
pub struct Scope<'pool, 'env> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, like `std::thread::scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Spawns a task that may borrow from the enclosing stack frame. On a
    /// single-thread pool the task runs immediately, inline, in spawn
    /// order. Panics inside the task are captured and re-raised by the
    /// enclosing [`ThreadPool::scope`] call after all tasks finish; the
    /// pool itself keeps working.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.spawn_labeled("task", f);
    }

    /// [`Scope::spawn`] with a diagnostic label: if the task panics, the
    /// label is recorded in the scope's panic log and counted in
    /// telemetry as `exec.panic.<label>`, so a crashing run names its
    /// poisoned stage instead of only surfacing the first payload.
    ///
    /// The spawning thread's request-ID (if one is installed — e.g. a
    /// server handler running `/tune`) is captured here and re-installed
    /// around the task body, so events emitted from inside pool workers
    /// stay attributed to the request that spawned the work rather than
    /// silently losing their ID at the thread boundary.
    pub fn spawn_labeled<F>(&self, label: &str, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        let label = label.to_string();
        let request_id = isum_common::trace::current_request_id();
        let wrapped = move || {
            let _rid = request_id.as_deref().map(isum_common::trace::with_request_id);
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                lock(&state.panics).record(&label, payload);
            }
            if state.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                let _g = lock(&state.done_lock);
                state.done.notify_all();
            }
        };
        if self.pool.threads == 1 {
            wrapped();
            return;
        }
        let boxed: Box<dyn FnOnce() + Send + 'env> = Box::new(wrapped);
        // SAFETY: the closure only borrows data living at least `'env`,
        // and `ThreadPool::scope` blocks until `pending` reaches zero
        // before `'env` can end, so the erased lifetime never dangles.
        let task: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(boxed) };
        self.pool.shared.push(task);
    }
}

/// A work-stealing scoped thread pool built purely on `std`.
///
/// `threads` is the number of concurrent executors: `threads - 1` worker
/// threads are spawned, and the thread that waits on a scope lends itself
/// as the final executor (it executes queued tasks while waiting, so
/// nested scopes never deadlock). `threads == 1` spawns nothing and runs
/// every task inline — the sequential reference execution.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ThreadPool {
    /// Builds a pool with `threads` executors (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let worker_count = threads - 1;
        let shared = Arc::new(Shared {
            queues: (0..worker_count.max(1)).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            rr: AtomicUsize::new(0),
        });
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("isum-exec-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        if telemetry::enabled() {
            telemetry::gauge("exec.pool.threads").set(threads as i64);
        }
        Self { shared, workers, threads }
    }

    /// The number of concurrent executors this pool was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] on which borrowing tasks can be spawned,
    /// then blocks until every spawned task has completed. While blocked,
    /// the calling thread executes queued tasks itself (it is the pool's
    /// final executor), which is also what makes nested scopes — a pool
    /// task opening its own scope — deadlock-free. If any task panicked,
    /// the first panic is re-raised here after all tasks finished.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        let start = Instant::now();
        let state = Arc::new(ScopeState::default());
        let s = Scope { pool: self, state: Arc::clone(&state), _env: PhantomData };
        let result = catch_unwind(AssertUnwindSafe(|| f(&s)));
        // Drain first: every sibling task runs to completion (wait() keeps
        // executing queued work) before any panic propagates, so one
        // poisoned task never strands half-finished siblings.
        self.wait(&state);
        record_ns!("exec.scope_ns", start.elapsed().as_nanos() as u64);
        let log = std::mem::take(&mut *lock(&state.panics));
        if let Some(payload) = log.first {
            if log.count > 1 {
                isum_common::warn!(
                    "exec",
                    "multiple tasks panicked in one scope; re-raising the first",
                    count = log.count,
                    labels = log.labels.join(", ")
                );
            }
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Blocks until `state.pending` reaches zero, executing queued tasks
    /// (from any scope) while waiting.
    fn wait(&self, state: &ScopeState) {
        while state.pending.load(Ordering::SeqCst) > 0 {
            // Helpers have no home deque: index past the end steals from all.
            if let Some(task) = self.shared.take(usize::MAX) {
                run_task(task, None);
            } else {
                let g = lock(&state.done_lock);
                if state.pending.load(Ordering::SeqCst) == 0 {
                    return;
                }
                // Timed wait: a task taken by a worker between our queue
                // scan and this park could finish instantly; the timeout
                // bounds the window without busy-spinning.
                let _ = state.done.wait_timeout(g, Duration::from_micros(200));
            }
        }
    }

    /// Parallel map with deterministic, input-ordered results: semantically
    /// `items.iter().map(|t| f(t)).collect()`, bit-identical to that
    /// sequential evaluation for pure `f` at any thread count.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_indexed(items, |_, t| f(t))
    }

    /// [`Self::par_map`] variant whose mapper also receives the input index.
    pub fn par_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        count!("exec.par_map.calls");
        let start = Instant::now();
        if self.threads == 1 || n <= 1 {
            let out = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
            record_ns!("exec.par_map_ns", start.elapsed().as_nanos() as u64);
            return out;
        }
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        {
            let ptr = SendPtr(slots.as_mut_ptr());
            let chunk = n.div_ceil(self.threads * CHUNKS_PER_THREAD).max(1);
            let f = &f;
            self.scope(|s| {
                let mut lo = 0;
                while lo < n {
                    let hi = (lo + chunk).min(n);
                    s.spawn(move || {
                        // Rebind the wrapper so the closure captures the
                        // `Send` wrapper, not the raw pointer field
                        // (edition-2021 disjoint capture).
                        let slots = ptr;
                        for (i, item) in items.iter().enumerate().take(hi).skip(lo) {
                            let value = f(i, item);
                            // SAFETY: `i` is owned by exactly one chunk, so
                            // no two tasks write the same slot, and `slots`
                            // outlives the scope (which joins all tasks).
                            unsafe { *slots.0.add(i) = Some(value) };
                        }
                    });
                    lo = hi;
                }
            });
        }
        record_ns!("exec.par_map_ns", start.elapsed().as_nanos() as u64);
        slots.into_iter().map(|slot| slot.expect("par_map slot filled")).collect()
    }

    /// [`Self::par_map`] with per-item panic quarantine: a panicking item
    /// yields `Err(TaskPanic)` in its slot while every other item still
    /// completes — one poisoned input degrades one cell, not the run.
    /// Quarantined items count `faults.quarantined` and
    /// `exec.task_panics` in telemetry. Ordering and determinism match
    /// [`Self::par_map`].
    pub fn try_par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<Result<R, TaskPanic>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map(items, |t| {
            catch_unwind(AssertUnwindSafe(|| f(t))).map_err(|payload| {
                count!("exec.task_panics");
                count!("faults.quarantined");
                TaskPanic::from_payload(payload.as_ref())
            })
        })
    }

    /// Splits `items` into contiguous chunks of `chunk_size`, maps each
    /// chunk (receiving the chunk's starting index) in parallel, and
    /// returns the per-chunk results in chunk order — the deterministic
    /// parallel form of `items.chunks(chunk_size).map(...)`.
    pub fn par_chunks<T, R, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let chunks: Vec<(usize, &[T])> =
            items.chunks(chunk_size).enumerate().map(|(c, w)| (c * chunk_size, w)).collect();
        self.par_map(&chunks, |&(start, window)| f(start, window))
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _g = lock(&self.shared.sleep);
            self.shared.wake.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Raw pointer into the `par_map` slot vector, sendable because every
/// task writes a disjoint index range.
struct SendPtr<R>(*mut Option<R>);

impl<R> Clone for SendPtr<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R> Copy for SendPtr<R> {}
// SAFETY: tasks write disjoint slots of a vector that outlives the scope.
unsafe impl<R: Send> Send for SendPtr<R> {}
// SAFETY: shared only to move copies into tasks; see `Send` above.
unsafe impl<R: Send> Sync for SendPtr<R> {}

/// Executes one task, attributing it to `worker` in telemetry. Panics are
/// contained here as a backstop (scope wrappers catch first), so a task
/// can never take down a worker thread.
fn run_task(task: Task, worker: Option<&Arc<telemetry::Counter>>) {
    if telemetry::enabled() {
        count!("exec.tasks");
        match worker {
            Some(c) => c.inc(),
            None => count!("exec.helper.tasks"),
        }
    }
    let _ = catch_unwind(AssertUnwindSafe(task));
}

/// The worker main loop: drain own deque, steal, park.
fn worker_loop(shared: &Arc<Shared>, index: usize) {
    WORKER_INDEX.with(|w| w.set(Some(index)));
    // Events emitted inside tasks carry the worker identity, keeping
    // 1-vs-8-thread runs attributable in /events and JSONL logs.
    isum_common::trace::set_thread_label(&format!("exec-{index}"));
    // Interned once per worker: the `count!` macro caches one name per call
    // site, which would alias every worker onto one counter here.
    let tasks = telemetry::counter(&format!("exec.worker.{index}.tasks"));
    loop {
        if let Some(task) = shared.take(index) {
            run_task(task, Some(&tasks));
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let g = lock(&shared.sleep);
        if shared.queued.load(Ordering::SeqCst) > 0 || shared.shutdown.load(Ordering::SeqCst) {
            continue;
        }
        // Timed park: belt-and-braces against a missed notify.
        let _ = shared.wake.wait_timeout(g, Duration::from_millis(5));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_matches_sequential_order() {
        let pool = ThreadPool::new(4);
        let items: Vec<u64> = (0..1000).collect();
        let parallel = pool.par_map(&items, |&x| x * x + 1);
        let sequential: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let tid = std::thread::current().id();
        let seen = pool.par_map(&[1, 2, 3], |_| std::thread::current().id());
        assert!(seen.iter().all(|&t| t == tid), "threads=1 must not leave the caller");
    }

    #[test]
    fn par_chunks_covers_every_item_in_order() {
        let pool = ThreadPool::new(3);
        let items: Vec<usize> = (0..101).collect();
        let sums = pool.par_chunks(&items, 10, |start, chunk| {
            assert_eq!(chunk[0], start);
            chunk.iter().sum::<usize>()
        });
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<usize>(), items.iter().sum::<usize>());
    }

    #[test]
    fn scope_joins_borrowing_tasks() {
        let pool = ThreadPool::new(4);
        let data = vec![0u64; 64];
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for w in data.chunks(16) {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(w.len() as u64, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn request_id_crosses_the_pool_boundary() {
        // Events emitted inside pool tasks (e.g. core compression run by
        // a server /tune handler) must stay attributed to the spawning
        // request, on worker threads and inline alike.
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let _rid = isum_common::trace::with_request_id("rid-pool-42");
            let ids = pool.par_map(&[0u32; 16], |_| isum_common::trace::current_request_id());
            assert!(
                ids.iter().all(|id| id.as_deref() == Some("rid-pool-42")),
                "threads={threads}: every task carries the spawner's request ID: {ids:?}"
            );
            drop(_rid);
            let ids = pool.par_map(&[0u32; 4], |_| isum_common::trace::current_request_id());
            assert!(
                ids.iter().all(Option::is_none),
                "threads={threads}: no ambient ID leaks into later tasks: {ids:?}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = ThreadPool::new(4);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.par_map(&empty, |&x| x).is_empty());
        assert_eq!(pool.par_map(&[7u32], |&x| x + 1), vec![8]);
        assert!(pool.par_chunks(&empty, 4, |_, c| c.len()).is_empty());
    }
}
