//! Concurrency contract tests for `isum_exec`: exact counting under a
//! saturated pool, panic containment without pool poisoning, nested-scope
//! support, and the deterministic-reduction guarantee at several thread
//! counts.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use isum_exec::ThreadPool;

#[test]
fn counters_are_exact_under_a_saturated_pool() {
    // Far more tasks than executors, each touching a shared counter: every
    // increment must land and every input index must be visited exactly
    // once, regardless of stealing and scheduling.
    let pool = ThreadPool::new(8);
    let executed = AtomicU64::new(0);
    let items: Vec<u64> = (0..50_000).collect();
    let out = pool.par_map(&items, |&x| {
        executed.fetch_add(1, Ordering::Relaxed);
        x + 1
    });
    assert_eq!(executed.load(Ordering::Relaxed), items.len() as u64, "no lost or repeated tasks");
    assert_eq!(out, (1..=50_000).collect::<Vec<u64>>(), "results in input order");
}

#[test]
fn scope_spawn_counts_exactly_once_per_task() {
    let pool = ThreadPool::new(4);
    let hits = AtomicUsize::new(0);
    pool.scope(|s| {
        for _ in 0..10_000 {
            let hits = &hits;
            s.spawn(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(hits.load(Ordering::Relaxed), 10_000);
}

#[test]
fn task_panic_propagates_without_poisoning_the_pool() {
    let pool = ThreadPool::new(4);
    // A panicking task must surface its payload at the scope boundary...
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(|s| {
            s.spawn(|| panic!("boom in task"));
            s.spawn(|| { /* healthy sibling */ });
        });
    }));
    let payload = result.expect_err("scope must re-raise the task panic");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(msg, "boom in task");
    // ...and the pool must keep working afterwards: same workers, fresh scope.
    let after = pool.par_map(&[10u32, 20, 30], |&x| x / 10);
    assert_eq!(after, vec![1, 2, 3], "pool unusable after a task panic");
}

#[test]
fn panic_in_par_map_leaves_pool_usable() {
    let pool = ThreadPool::new(4);
    for round in 0..3 {
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(&(0..256).collect::<Vec<u32>>(), |&x| {
                assert!(x != 128, "planted failure");
                x
            })
        }));
        assert!(result.is_err(), "round {round}: planted panic must propagate");
    }
    assert_eq!(pool.par_map(&[1u32, 2], |&x| x), vec![1, 2]);
}

#[test]
fn nested_scopes_complete_without_deadlock() {
    // Each outer task opens its own scope on the same pool; the waiting
    // executors must help drain queues rather than block, so this finishes
    // even when tasks outnumber threads.
    let pool = ThreadPool::new(2);
    let total = AtomicUsize::new(0);
    pool.scope(|outer| {
        for _ in 0..16 {
            let total = &total;
            let pool = &pool;
            outer.spawn(move || {
                pool.scope(|inner| {
                    for _ in 0..8 {
                        inner.spawn(move || {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
        }
    });
    assert_eq!(total.load(Ordering::Relaxed), 16 * 8);
}

#[test]
fn nested_par_map_is_deterministic() {
    let pool = ThreadPool::new(4);
    let items: Vec<u64> = (0..64).collect();
    let nested = pool.par_map(&items, |&x| {
        let inner: Vec<u64> = (0..x % 7).collect();
        pool.par_map(&inner, |&y| y * y).iter().sum::<u64>() + x
    });
    let sequential: Vec<u64> =
        items.iter().map(|&x| (0..x % 7).map(|y| y * y).sum::<u64>() + x).collect();
    assert_eq!(nested, sequential);
}

#[test]
fn results_identical_across_thread_counts() {
    // The determinism contract at the primitive level: same bits out of
    // 1, 2, 4, and 8 executors, including float accumulation per item.
    let items: Vec<f64> = (1..500).map(|i| 1.0 / i as f64).collect();
    let work = |&x: &f64| {
        let mut acc = 0.0f64;
        for k in 1..50 {
            acc += (x * k as f64).sin();
        }
        acc
    };
    let reference = ThreadPool::new(1).par_map(&items, work);
    for threads in [2usize, 4, 8] {
        let got = ThreadPool::new(threads).par_map(&items, work);
        let identical = reference.iter().zip(&got).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(identical, "par_map at {threads} threads diverged from sequential");
    }
}

#[test]
fn telemetry_attributes_every_task_to_one_executor() {
    use isum_common::telemetry;
    telemetry::set_enabled(true);
    {
        let pool = ThreadPool::new(4);
        let items: Vec<u64> = (0..4096).collect();
        let _ = pool.par_map(&items, |&x| {
            // Enough work per item that several executors participate.
            (0..64).fold(x, |a, b| a.wrapping_mul(31).wrapping_add(b))
        });
        // Dropping the pool joins its workers before we snapshot.
    }
    telemetry::set_enabled(false);
    // Any task mid-flight on another test's pool finishes its (total,
    // attribution) counter pair within nanoseconds of the flag flip; the
    // sleep closes that window before the consistency check below.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let snap = telemetry::snapshot();
    let total = snap.counter("exec.tasks").unwrap_or(0);
    assert!(total > 0, "pool must count executed tasks");
    let attributed: u64 = snap
        .counters
        .iter()
        .filter(|(n, _)| {
            (n.starts_with("exec.worker.") && n.ends_with(".tasks")) || n == "exec.helper.tasks"
        })
        .map(|(_, v)| v)
        .sum();
    assert_eq!(attributed, total, "every task attributed to exactly one executor");
}
