//! Panic-isolation contract: `try_par_map` quarantines poisoned items
//! without killing siblings, scopes drain before propagating, and every
//! panic's label lands in telemetry (not only the first payload).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use isum_exec::ThreadPool;

#[test]
fn try_par_map_quarantines_poisoned_items() {
    let pool = ThreadPool::new(4);
    let items: Vec<u32> = (0..100).collect();
    let out = pool.try_par_map(&items, |&x| {
        if x % 7 == 0 {
            panic!("poisoned query {x}");
        }
        x * 2
    });
    assert_eq!(out.len(), items.len());
    for (i, slot) in out.iter().enumerate() {
        if i % 7 == 0 {
            let p = slot.as_ref().expect_err("multiples of 7 are poisoned");
            assert_eq!(p.message, format!("poisoned query {i}"));
        } else {
            assert_eq!(*slot.as_ref().expect("healthy items succeed"), (i as u32) * 2);
        }
    }
    // Deterministic across thread counts, including the quarantine slots.
    let seq = ThreadPool::new(1).try_par_map(&items, |&x| {
        if x % 7 == 0 {
            panic!("poisoned query {x}");
        }
        x * 2
    });
    assert_eq!(out, seq);
}

#[test]
fn siblings_complete_before_scope_propagates() {
    let pool = ThreadPool::new(4);
    let completed = AtomicUsize::new(0);
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(|s| {
            s.spawn(|| panic!("early poison"));
            for _ in 0..64 {
                let completed = &completed;
                s.spawn(move || {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                    completed.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
    }));
    assert!(result.is_err(), "scope re-raises the panic");
    assert_eq!(
        completed.load(Ordering::SeqCst),
        64,
        "every sibling task must run to completion before the panic propagates"
    );
}

#[test]
fn panic_labels_and_quarantine_counters_reach_telemetry() {
    use isum_common::telemetry;
    telemetry::set_enabled(true);
    telemetry::reset();

    let pool = ThreadPool::new(2);
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(|s| {
            s.spawn_labeled("stage_a", || panic!("first"));
            s.spawn_labeled("stage_b", || panic!("second"));
        });
    }));
    assert!(result.is_err());

    let _ = pool.try_par_map(&[1u32, 2, 3], |&x| {
        if x == 2 {
            panic!("bad item");
        }
        x
    });

    // Both labels recorded — not only the first panic — plus quarantine.
    assert_eq!(telemetry::counter("exec.panic.stage_a").get(), 1);
    assert_eq!(telemetry::counter("exec.panic.stage_b").get(), 1);
    assert_eq!(telemetry::counter("faults.quarantined").get(), 1);
    assert!(telemetry::counter("exec.task_panics").get() >= 3);

    telemetry::set_enabled(false);
}
