//! Sequential-vs-parallel benchmark of the quick-scale harness.
//!
//! ```text
//! cargo run -p isum-experiments --release --bin bench_exec [-- <out.json>]
//! ```
//!
//! Runs the same quick-scale pipeline — prepare TPC-H, compress with the
//! six standard methods, tune each subset with DTA — once on a 1-thread
//! pool and once on a 4-thread pool, and writes the wall times, speedup,
//! and the machine's CPU count to `BENCH_exec.json` (or the path given as
//! the first argument). The two runs must agree on every improvement
//! figure — the determinism contract — and the binary exits non-zero if
//! they do not.

use std::time::Instant;

use isum_advisor::TuningConstraints;
use isum_common::Json;
use isum_experiments::harness::{dta, evaluate_methods, standard_methods, ExperimentCtx, Scale};

/// One full quick-scale evaluation pass; returns (wall seconds,
/// per-method improvements).
fn run_once(threads: usize) -> (f64, Vec<f64>) {
    isum_exec::set_global_threads(threads);
    let t0 = Instant::now();
    let scale = Scale::quick();
    let ctx = ExperimentCtx::tpch(&scale, 1).unwrap_or_else(|e| {
        eprintln!("cannot prepare TPC-H workload: {e}");
        std::process::exit(1);
    });
    let methods = standard_methods(1);
    let constraints = TuningConstraints::with_max_indexes(16);
    let evals = evaluate_methods(&methods, &ctx, 8, &dta(), &constraints);
    // The benchmark runs fault-free; any evaluation error is a bug here.
    let improvements: Vec<f64> = evals
        .into_iter()
        .map(|e| {
            e.unwrap_or_else(|err| {
                eprintln!("evaluation failed in fault-free benchmark: {err}");
                std::process::exit(1);
            })
            .improvement_pct
        })
        .collect();
    (t0.elapsed().as_secs_f64(), improvements)
}

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "BENCH_exec.json".into());
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Warm-up pass so neither measured run pays one-time costs (lazy
    // statics, allocator growth).
    let _ = run_once(1);

    let (secs_1, imp_1) = run_once(1);
    let (secs_4, imp_4) = run_once(4);

    let identical = imp_1.len() == imp_4.len()
        && imp_1.iter().zip(&imp_4).all(|(a, b)| a.to_bits() == b.to_bits());
    let speedup = if secs_4 > 0.0 { secs_1 / secs_4 } else { 0.0 };

    let json = Json::Obj(vec![
        ("bench".into(), Json::from("exec_quick_harness")),
        ("workload".into(), Json::from("TPC-H quick (66 queries), 6 methods, k=8, DTA m=16")),
        ("cpus".into(), Json::from(cpus as u64)),
        ("threads_1_secs".into(), Json::Num(secs_1)),
        ("threads_4_secs".into(), Json::Num(secs_4)),
        ("speedup_4_over_1".into(), Json::Num(speedup)),
        ("results_identical".into(), Json::Bool(identical)),
        ("improvement_pct".into(), Json::Arr(imp_1.iter().map(|&v| Json::Num(v)).collect())),
    ]);
    std::fs::write(&out, json.to_pretty()).expect("write benchmark output");
    println!(
        "1 thread: {secs_1:.2}s  4 threads: {secs_4:.2}s  speedup: {speedup:.2}x  \
         (on {cpus} cpu(s)) -> {out}"
    );
    if !identical {
        eprintln!("determinism violation: improvements differ across thread counts");
        eprintln!("  1 thread : {imp_1:?}");
        eprintln!("  4 threads: {imp_4:?}");
        std::process::exit(1);
    }
}
