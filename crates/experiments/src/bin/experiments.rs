//! Experiment runner CLI.
//!
//! ```text
//! cargo run -p isum-experiments --release -- [--resume] [--faults <spec>] <id>... | all
//! ISUM_SCALE=quick|medium|paper   selects workload sizes
//! ISUM_FAULTS=<spec>              deterministic fault injection (see DESIGN.md §9)
//! ```
//!
//! Telemetry is always on here: each run resets the registry, and a
//! per-run report lands in `results/telemetry_<id>.json` next to the
//! result tables (see README.md § Observability for the schema).
//!
//! Every run checkpoints each completed method×workload cell to
//! `results/checkpoint_<id>.json` (atomic rewrite after each cell).
//! `--resume` replays cells recorded by an earlier — possibly killed —
//! run instead of recomputing them, reproducing the uninterrupted run's
//! quality results byte-for-byte.

use std::path::PathBuf;
use std::time::Instant;

use isum_common::telemetry;
use isum_experiments::checkpoint;
use isum_experiments::figs::{self, ALL_IDS};
use isum_experiments::harness::write_telemetry_report;
use isum_experiments::report;
use isum_experiments::Scale;

fn usage(code: i32) -> ! {
    eprintln!("usage: experiments [--resume] [--faults <spec>] <id>... | all");
    eprintln!("ids: {}", ALL_IDS.join(" "));
    eprintln!("env: ISUM_SCALE=quick|medium|paper (default medium)");
    eprintln!("     ISUM_FAULTS=<spec> deterministic fault injection, e.g.");
    eprintln!("     whatif_transient:0.05,parse:0.01,seed:7 (DESIGN.md \u{a7}9)");
    std::process::exit(code);
}

fn main() {
    isum_common::trace::init_from_env();
    if let Err(e) = isum_faults::init_from_env() {
        eprintln!("invalid ISUM_FAULTS: {e}");
        std::process::exit(2);
    }
    let mut resume = false;
    let mut ids_raw: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => usage(0),
            "--resume" => resume = true,
            "--faults" => {
                let spec = args.next().unwrap_or_else(|| {
                    eprintln!("--faults requires a spec argument");
                    std::process::exit(2);
                });
                if let Err(e) = isum_faults::set_global_spec(&spec) {
                    eprintln!("invalid --faults spec: {e}");
                    std::process::exit(2);
                }
            }
            other => ids_raw.push(other.to_string()),
        }
    }
    if ids_raw.is_empty() {
        usage(2);
    }
    let ids: Vec<&str> = if ids_raw.iter().any(|a| a == "all") {
        ALL_IDS.to_vec()
    } else {
        ids_raw.iter().map(String::as_str).collect()
    };
    for id in &ids {
        if !ALL_IDS.contains(id) {
            eprintln!("unknown experiment `{id}`; known: {}", ALL_IDS.join(" "));
            std::process::exit(2);
        }
    }
    let scale = Scale::from_env();
    let out = PathBuf::from("results");
    telemetry::set_enabled(true);
    for id in ids {
        let t0 = Instant::now();
        println!("\n### running {id} ...");
        telemetry::reset();
        match checkpoint::begin(id, &out, resume) {
            Ok(loaded) if resume && loaded > 0 => {
                println!("### resume: replaying {loaded} checkpointed cell(s)");
            }
            Ok(_) => {}
            Err(e) => {
                eprintln!("cannot open checkpoint for {id}: {e}");
                std::process::exit(1);
            }
        }
        let tables = figs::run(id, &scale);
        checkpoint::finish();
        if let Err(e) = report::emit(&tables, &out) {
            eprintln!("cannot write results for {id}: {e}");
            std::process::exit(1);
        }
        match write_telemetry_report(id, &out) {
            Ok(path) => println!("### telemetry: {}", path.display()),
            Err(e) => {
                eprintln!("cannot write telemetry report for {id}: {e}");
                std::process::exit(1);
            }
        }
        println!("### {id} done in {:.1}s", t0.elapsed().as_secs_f64());
    }
}
