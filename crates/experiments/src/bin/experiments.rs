//! Experiment runner CLI.
//!
//! ```text
//! cargo run -p isum-experiments --release -- <id>... | all
//! ISUM_SCALE=quick|medium|paper   selects workload sizes
//! ```
//!
//! Telemetry is always on here: each run resets the registry, and a
//! per-run report lands in `results/telemetry_<id>.json` next to the
//! result tables (see README.md § Observability for the schema).

use std::path::PathBuf;
use std::time::Instant;

use isum_common::telemetry;
use isum_experiments::figs::{self, ALL_IDS};
use isum_experiments::harness::write_telemetry_report;
use isum_experiments::report;
use isum_experiments::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("usage: experiments <id>... | all");
        eprintln!("ids: {}", ALL_IDS.join(" "));
        eprintln!("env: ISUM_SCALE=quick|medium|paper (default medium)");
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in &ids {
        if !ALL_IDS.contains(id) {
            eprintln!("unknown experiment `{id}`; known: {}", ALL_IDS.join(" "));
            std::process::exit(2);
        }
    }
    let scale = Scale::from_env();
    let out = PathBuf::from("results");
    telemetry::set_enabled(true);
    for id in ids {
        let t0 = Instant::now();
        println!("\n### running {id} ...");
        telemetry::reset();
        let tables = figs::run(id, &scale);
        report::emit(&tables, &out).expect("write results");
        let path = write_telemetry_report(id, &out).expect("write telemetry report");
        println!("### telemetry: {}", path.display());
        println!("### {id} done in {:.1}s", t0.elapsed().as_secs_f64());
    }
}
