//! Experiment runner CLI.
//!
//! ```text
//! cargo run -p isum-experiments --release -- <id>... | all
//! ISUM_SCALE=quick|medium|paper   selects workload sizes
//! ```

use std::path::PathBuf;
use std::time::Instant;

use isum_experiments::figs::{self, ALL_IDS};
use isum_experiments::report;
use isum_experiments::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("usage: experiments <id>... | all");
        eprintln!("ids: {}", ALL_IDS.join(" "));
        eprintln!("env: ISUM_SCALE=quick|medium|paper (default medium)");
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in &ids {
        if !ALL_IDS.contains(id) {
            eprintln!("unknown experiment `{id}`; known: {}", ALL_IDS.join(" "));
            std::process::exit(2);
        }
    }
    let scale = Scale::from_env();
    let out = PathBuf::from("results");
    for id in ids {
        let t0 = Instant::now();
        println!("\n### running {id} ...");
        let tables = figs::run(id, &scale);
        report::emit(&tables, &out).expect("write results");
        println!("### {id} done in {:.1}s", t0.elapsed().as_secs_f64());
    }
}
