//! Crash-safe checkpoint/resume for the experiments harness.
//!
//! Long evaluation runs (the paper-scale grids are hours of what-if
//! costing) must survive a SIGKILL: the harness records the outcome of
//! every completed method×workload cell in
//! `results/checkpoint_<run>.json`, rewritten atomically (temp file +
//! rename) after each cell completes. A rerun with `--resume` replays
//! recorded cells from the file — bit-exactly, including failed cells —
//! and computes only what is missing, so a killed-then-resumed run
//! reproduces the uninterrupted run's quality results byte-for-byte.
//!
//! # File format (DESIGN.md §9)
//!
//! ```json
//! {
//!   "run": "fig9a",
//!   "cells": {
//!     "<cell key>": {
//!       "improvement_bits": "405b8a4d70a3d70a",
//!       "compression_secs_bits": "3f50624dd2f1a9fc",
//!       "tuning_calls": 1234,
//!       "tuning_secs_bits": "3fb999999999999a"
//!     },
//!     "<failed cell key>": { "error": "message", "class": "permanent" }
//!   }
//! }
//! ```
//!
//! `f64` fields are stored as hexadecimal IEEE-754 bit patterns — JSON
//! decimal round-tripping is not bit-exact, and the determinism contract
//! is. Cell keys are `<run>|<workload>|<method>|k<k>|<advisor>|<constraints>`
//! (built by [`crate::harness::evaluate_methods`]); the map is sorted, so
//! the file itself is deterministic given the same completed cell set.
//!
//! Timing fields are replayed as recorded: quality metrics (improvement,
//! tuning calls) are deterministic and therefore byte-identical on
//! resume, while wall-clock fields of cells computed *after* the resume
//! necessarily differ — which is why the CI resume check compares a
//! quality-only figure.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use isum_common::{count, hex_bits, unhex_bits, ErrorClass, IsumError, IsumResult, Json};

use crate::harness::MethodEval;

/// One recorded outcome: a completed evaluation or a skipped cell's error.
pub type CellOutcome = IsumResult<MethodEval>;

struct Store {
    run: String,
    path: PathBuf,
    cells: BTreeMap<String, CellOutcome>,
}

impl Store {
    fn to_json(&self) -> Json {
        let cells = self
            .cells
            .iter()
            .map(|(k, v)| (k.clone(), outcome_to_json(v)))
            .collect::<Vec<(String, Json)>>();
        Json::Obj(vec![
            ("run".into(), Json::from(self.run.as_str())),
            ("cells".into(), Json::Obj(cells)),
        ])
    }

    /// Atomic write-through: serialize everything, write a temp file in
    /// the same directory, rename over the target. A SIGKILL at any
    /// instant leaves either the previous complete checkpoint or the new
    /// one — never a torn file.
    fn persist(&self) -> std::io::Result<()> {
        let tmp = self.path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json().to_pretty())?;
        std::fs::rename(&tmp, &self.path)
    }
}

fn outcome_to_json(outcome: &CellOutcome) -> Json {
    match outcome {
        Ok(eval) => Json::Obj(vec![
            ("improvement_bits".into(), Json::from(hex_bits(eval.improvement_pct))),
            ("compression_secs_bits".into(), Json::from(hex_bits(eval.compression_secs))),
            ("tuning_calls".into(), Json::from(eval.tuning_calls)),
            ("tuning_secs_bits".into(), Json::from(hex_bits(eval.tuning_secs))),
            ("coverage_bits".into(), Json::from(hex_bits(eval.coverage))),
        ]),
        Err(e) => Json::Obj(vec![
            ("error".into(), Json::from(e.message())),
            ("class".into(), Json::from(e.class().as_str())),
        ]),
    }
}

fn outcome_from_json(j: &Json) -> Option<CellOutcome> {
    if let Some(msg) = j.get("error").and_then(Json::as_str) {
        let class = j
            .get("class")
            .and_then(Json::as_str)
            .and_then(ErrorClass::parse)
            .unwrap_or(ErrorClass::Permanent);
        return Some(Err(IsumError::new(class, msg)));
    }
    Some(Ok(MethodEval {
        improvement_pct: unhex_bits(j.get("improvement_bits")?.as_str()?)?,
        compression_secs: unhex_bits(j.get("compression_secs_bits")?.as_str()?)?,
        tuning_calls: j.get("tuning_calls")?.as_u64()?,
        tuning_secs: unhex_bits(j.get("tuning_secs_bits")?.as_str()?)?,
        coverage: unhex_bits(j.get("coverage_bits")?.as_str()?)?,
    }))
}

static ACTIVE: Mutex<Option<Store>> = Mutex::new(None);

fn active() -> std::sync::MutexGuard<'static, Option<Store>> {
    ACTIVE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Activates checkpointing for run `run`, persisting to
/// `<dir>/checkpoint_<run>.json`. With `resume`, previously recorded
/// cells are loaded from an existing file (a missing file is an empty
/// checkpoint, not an error) and replayed by [`cell`]. Returns the number
/// of cells loaded.
///
/// # Errors
/// Propagates IO failures; a present-but-corrupt checkpoint file is
/// rejected rather than silently recomputed.
pub fn begin(run: &str, dir: &Path, resume: bool) -> std::io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("checkpoint_{run}.json"));
    let mut cells = BTreeMap::new();
    if resume && path.exists() {
        let text = std::fs::read_to_string(&path)?;
        let parsed = Json::parse(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("corrupt checkpoint {}: {e}", path.display()),
            )
        })?;
        if let Some(obj) = parsed.get("cells").and_then(Json::as_object) {
            for (key, value) in obj {
                let outcome = outcome_from_json(value).ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("corrupt checkpoint cell `{key}` in {}", path.display()),
                    )
                })?;
                cells.insert(key.clone(), outcome);
            }
        }
    }
    let loaded = cells.len();
    *active() = Some(Store { run: run.to_string(), path, cells });
    Ok(loaded)
}

/// Deactivates checkpointing. The checkpoint file stays on disk so a
/// later `--resume` (or the CI byte-identity check) can replay the run.
pub fn finish() {
    *active() = None;
}

/// True when a checkpoint run is active.
pub fn is_active() -> bool {
    active().is_some()
}

/// Runs one checkpointable cell: if `key` was recorded (this run or a
/// resumed one), the recorded outcome is returned without recomputing
/// (counted as `harness.checkpoint.hits`); otherwise `compute` runs and
/// its outcome — success or failure — is recorded and persisted before
/// being returned. Without an active checkpoint this is just `compute()`.
///
/// The store lock is *not* held across `compute`, so parallel cells
/// proceed concurrently; two racing computations of the same key both
/// run and record identical values (the computation is deterministic).
pub fn cell(key: &str, compute: impl FnOnce() -> CellOutcome) -> CellOutcome {
    {
        let guard = active();
        match guard.as_ref() {
            None => {
                drop(guard);
                return compute();
            }
            Some(store) => {
                if let Some(hit) = store.cells.get(key) {
                    count!("harness.checkpoint.hits");
                    return hit.clone();
                }
            }
        }
    }
    let outcome = compute();
    let mut guard = active();
    if let Some(store) = guard.as_mut() {
        store.cells.insert(key.to_string(), outcome.clone());
        count!("harness.checkpoint.cells");
        if let Err(e) = store.persist() {
            isum_common::error!(
                "harness.checkpoint",
                format!("failed to persist checkpoint {}: {e}", store.path.display())
            );
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_patterns_round_trip_exactly() {
        for v in [0.0, -0.0, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, 1e9 + 1.0 / 7.0] {
            let eval = MethodEval {
                improvement_pct: v,
                compression_secs: v * 0.5,
                tuning_calls: 987654321,
                tuning_secs: v * 2.0,
                coverage: v * 0.25,
            };
            let back = outcome_from_json(&outcome_to_json(&Ok(eval))).unwrap().unwrap();
            assert_eq!(back.improvement_pct.to_bits(), eval.improvement_pct.to_bits());
            assert_eq!(back.compression_secs.to_bits(), eval.compression_secs.to_bits());
            assert_eq!(back.tuning_calls, eval.tuning_calls);
            assert_eq!(back.tuning_secs.to_bits(), eval.tuning_secs.to_bits());
            assert_eq!(back.coverage.to_bits(), eval.coverage.to_bits());
        }
        let nan = outcome_from_json(&outcome_to_json(&Ok(MethodEval {
            improvement_pct: f64::NAN,
            compression_secs: 0.0,
            tuning_calls: 0,
            tuning_secs: 0.0,
            coverage: 0.0,
        })))
        .unwrap()
        .unwrap();
        assert!(nan.improvement_pct.is_nan(), "even NaN survives the hex encoding");
    }

    #[test]
    fn error_outcomes_round_trip() {
        let err: CellOutcome = Err(IsumError::transient("optimizer flaked"));
        let back = outcome_from_json(&outcome_to_json(&err)).unwrap().unwrap_err();
        assert_eq!(back.class(), ErrorClass::Transient);
        assert_eq!(back.message(), "optimizer flaked");
    }
}
