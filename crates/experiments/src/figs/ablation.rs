//! Ablations of this implementation's own design decisions (DESIGN.md §5),
//! beyond the paper's figures: index merging in the advisor, the what-if
//! cost cache, and the anytime tuner's convergence under shrinking budgets.

use std::time::{Duration, Instant};

use isum_advisor::{AnytimeDta, DtaAdvisor, IndexAdvisor, TuningConstraints};
use isum_core::{Compressor, Isum};
use isum_workload::CompressedWorkload;

use isum_common::count;

use crate::harness::{ctx_or_skip, ExperimentCtx, Scale};
use crate::report::{f1, Table};

/// Runs all ablations.
pub fn ablation(scale: &Scale) -> Vec<Table> {
    vec![merging_ablation(scale), cache_ablation(scale), anytime_ablation(scale)]
}

/// Index merging on/off: merging should match or beat the unmerged advisor
/// (wider indexes that serve several queries), mirroring the DTA-vs-DEXTER
/// gap the paper attributes partly to merging.
fn merging_ablation(scale: &Scale) -> Table {
    let mut t = Table::new(
        "ablation_merging",
        "Ablation: index merging in the DTA-like advisor",
        &["workload", "k", "no_merging_pct", "merging_pct"],
    );
    for ctx in [
        ctx_or_skip(ExperimentCtx::tpch(scale, 200), "TPC-H"),
        ctx_or_skip(ExperimentCtx::tpcds(scale, 200), "TPC-DS"),
    ]
    .into_iter()
    .flatten()
    {
        let k = crate::harness::half_sqrt_n(ctx.workload.len());
        let cw = match Isum::new().compress(&ctx.workload, k) {
            Ok(cw) => cw,
            Err(e) => {
                count!("harness.cells_skipped");
                isum_common::warn!(
                    "harness.ablation",
                    format!("merging ablation skipped: {e}"),
                    workload = ctx.name
                );
                continue;
            }
        };
        let constraints = TuningConstraints::with_max_indexes(16);
        let mut imps = Vec::new();
        for merging in [false, true] {
            let advisor = DtaAdvisor { merging, ..DtaAdvisor::new() };
            let opt = ctx.optimizer();
            let cfg = advisor.recommend(&opt, &ctx.workload, &cw, &constraints);
            imps.push(opt.improvement_pct(&ctx.workload, &cfg));
        }
        t.row(vec![ctx.name.into(), k.to_string(), f1(imps[0]), f1(imps[1])]);
    }
    t
}

/// What-if cache on/off: repeated enumeration passes should be dominated by
/// cache hits (the optimizer-call–reduction literature of Sec 9).
fn cache_ablation(scale: &Scale) -> Table {
    let mut t = Table::new(
        "ablation_whatif_cache",
        "Ablation: what-if cache absorption during tuning",
        &["workload", "optimizer_calls", "cache_hits", "hit_rate_pct"],
    );
    for ctx in [
        ctx_or_skip(ExperimentCtx::tpch(scale, 201), "TPC-H"),
        ctx_or_skip(ExperimentCtx::tpcds(scale, 201), "TPC-DS"),
    ]
    .into_iter()
    .flatten()
    {
        let k = crate::harness::half_sqrt_n(ctx.workload.len());
        let cw = match Isum::new().compress(&ctx.workload, k) {
            Ok(cw) => cw,
            Err(e) => {
                count!("harness.cells_skipped");
                isum_common::warn!(
                    "harness.ablation",
                    format!("cache ablation skipped: {e}"),
                    workload = ctx.name
                );
                continue;
            }
        };
        let opt = ctx.optimizer();
        let advisor = DtaAdvisor::new();
        let _cfg =
            advisor.recommend(&opt, &ctx.workload, &cw, &TuningConstraints::with_max_indexes(16));
        let _ = opt.improvement_pct(&ctx.workload, &_cfg);
        let calls = opt.optimizer_calls();
        let hits = opt.cache_hits();
        let rate = hits as f64 / (calls + hits).max(1) as f64 * 100.0;
        t.row(vec![ctx.name.into(), calls.to_string(), hits.to_string(), f1(rate)]);
    }
    t
}

/// Anytime tuning: improvement as the time budget shrinks; the largest
/// budget must reach the batch advisor's quality.
fn anytime_ablation(scale: &Scale) -> Table {
    let mut t = Table::new(
        "ablation_anytime",
        "Ablation: anytime tuner vs time budget (TPC-H)",
        &["budget", "queries_consumed", "improvement_pct", "batch_pct"],
    );
    let Some(mut ctx) = ctx_or_skip(ExperimentCtx::tpch(scale, 202), "TPC-H") else {
        return t;
    };
    // The anytime sweep tunes the full workload repeatedly; cap the input
    // so the calibration run stays proportionate.
    if ctx.workload.len() > 220 {
        let ids: Vec<isum_common::QueryId> =
            (0..220).map(isum_common::QueryId::from_index).collect();
        ctx = ExperimentCtx { workload: ctx.workload.restricted_to(&ids), name: ctx.name };
    }
    let sub = CompressedWorkload::uniform(ctx.workload.queries.iter().map(|q| q.id).collect());
    let constraints = TuningConstraints::with_max_indexes(16);
    let opt = ctx.optimizer();
    let batch = DtaAdvisor::new().recommend(&opt, &ctx.workload, &sub, &constraints);
    let batch_imp = opt.improvement_pct(&ctx.workload, &batch);
    // Calibrate: full run time defines the budget scale.
    let t0 = Instant::now();
    let _ = AnytimeDta::new().recommend_within(
        &opt,
        &ctx.workload,
        &sub,
        &constraints,
        Duration::from_secs(3600),
    );
    let full = t0.elapsed();
    for (label, frac) in [("1%", 0.01), ("10%", 0.1), ("50%", 0.5), ("100%", 1.0)] {
        let budget = Duration::from_secs_f64(full.as_secs_f64() * frac);
        let outcome =
            AnytimeDta::new().recommend_within(&opt, &ctx.workload, &sub, &constraints, budget);
        let imp = opt.improvement_pct(&ctx.workload, &outcome.config);
        t.row(vec![label.into(), outcome.queries_consumed.to_string(), f1(imp), f1(batch_imp)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merging_never_hurts_quick() {
        let scale = Scale::quick();
        let t = merging_ablation(&scale);
        for row in &t.rows {
            let without: f64 = row[2].parse().expect("float cell");
            let with: f64 = row[3].parse().expect("float cell");
            assert!(with >= without - 1.0, "{}: merging {with} vs {without}", row[0]);
        }
    }

    #[test]
    fn cache_hit_rate_is_substantial() {
        let scale = Scale::quick();
        let t = cache_ablation(&scale);
        for row in &t.rows {
            let rate: f64 = row[3].parse().expect("float cell");
            assert!(rate > 30.0, "{}: hit rate only {rate}%", row[0]);
        }
    }
}
