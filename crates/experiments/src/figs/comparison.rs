//! Baseline comparisons: Fig 9a (compressed size sweep), Fig 9b
//! (configuration size), Fig 10 (storage budget), Fig 15 (DEXTER advisor).

use isum_advisor::{DexterAdvisor, TuningConstraints};
use isum_core::{Compressor, Isum, IsumConfig};

use crate::harness::{
    coverage_cell, ctx_or_skip, dta, evaluate_methods, half_sqrt_n, improvement_cell, k_sweep,
    standard_methods, ExperimentCtx, Scale,
};
use crate::report::Table;

fn contexts(scale: &Scale, seed: u64) -> Vec<ExperimentCtx> {
    [
        (ctx_or_skip(ExperimentCtx::tpch(scale, seed), "TPC-H")),
        (ctx_or_skip(ExperimentCtx::tpcds(scale, seed), "TPC-DS")),
        (ctx_or_skip(ExperimentCtx::dsb(scale, seed), "DSB")),
        (ctx_or_skip(ExperimentCtx::realm(scale, seed), "Real-M")),
    ]
    .into_iter()
    .flatten()
    .collect()
}

/// Fig 9a: improvement vs compressed workload size, six methods, four
/// workloads — plus a companion coverage table recorded from the same
/// evaluations (no extra optimizer calls), so summary representativity
/// sits next to the quality figure it explains.
pub fn fig9a(scale: &Scale) -> Vec<Table> {
    let mut tables = Vec::new();
    for ctx in contexts(scale, 90) {
        let methods = standard_methods(90);
        let mut t = Table::new(
            format!("fig9a_{}", slug(ctx.name)),
            format!("Fig 9a ({}): improvement (%) vs compressed size", ctx.name),
            &["k", "Uniform", "Cost", "Stratified", "GSUM", "ISUM", "ISUM-S"],
        );
        let mut cov = Table::new(
            format!("fig9a_coverage_{}", slug(ctx.name)),
            format!("Fig 9a ({}): summary coverage vs compressed size", ctx.name),
            &["k", "Uniform", "Cost", "Stratified", "GSUM", "ISUM", "ISUM-S"],
        );
        let constraints = TuningConstraints::with_max_indexes(16);
        for k in k_sweep(ctx.workload.len()) {
            let mut row = vec![k.to_string()];
            let mut cov_row = vec![k.to_string()];
            // Quality figure: the six methods are independent, so they
            // run concurrently (see `evaluate_methods` on why timing
            // figures must not do this).
            for e in evaluate_methods(&methods, &ctx, k, &dta(), &constraints) {
                row.push(improvement_cell(&e));
                cov_row.push(coverage_cell(&e));
            }
            t.row(row);
            cov.row(cov_row);
        }
        tables.push(t);
        tables.push(cov);
    }
    tables
}

/// Fig 9b: improvement vs configuration size at `k = 0.5√n`.
pub fn fig9b(scale: &Scale) -> Vec<Table> {
    let mut tables = Vec::new();
    for ctx in contexts(scale, 91) {
        let methods = standard_methods(91);
        let k = half_sqrt_n(ctx.workload.len());
        let mut t = Table::new(
            format!("fig9b_{}", slug(ctx.name)),
            format!("Fig 9b ({}): improvement (%) vs configuration size, k={k}", ctx.name),
            &["m", "Uniform", "Cost", "Stratified", "GSUM", "ISUM", "ISUM-S"],
        );
        for m_indexes in [8usize, 16, 32, 64] {
            let constraints = TuningConstraints::with_max_indexes(m_indexes);
            let mut row = vec![m_indexes.to_string()];
            for e in evaluate_methods(&methods, &ctx, k, &dta(), &constraints) {
                row.push(improvement_cell(&e));
            }
            t.row(row);
        }
        tables.push(t);
    }
    tables
}

/// Fig 10: improvement vs storage budget (1.5×–3× database size),
/// including the ISUM-NoTable ablation.
pub fn fig10(scale: &Scale) -> Vec<Table> {
    let mut tables = Vec::new();
    for ctx in contexts(scale, 92) {
        let k = half_sqrt_n(ctx.workload.len());
        let db_bytes = ctx.workload.catalog.total_bytes();
        let mut methods: Vec<Box<dyn Compressor>> = standard_methods(92);
        // The paper swaps ISUM-S for ISUM-NoTable in this figure.
        methods.pop();
        methods.push(Box::new(Isum::with_config(IsumConfig::isum_no_table())));
        let mut t = Table::new(
            format!("fig10_{}", slug(ctx.name)),
            format!("Fig 10 ({}): improvement (%) vs storage budget, k={k}", ctx.name),
            &["budget", "Uniform", "Cost", "Stratified", "GSUM", "ISUM", "ISUM-NoTable"],
        );
        for mult in [1.5f64, 2.0, 2.5, 3.0] {
            // DTA's budget counts database + indexes: a 1.5x budget leaves
            // 0.5x the database size for indexes.
            let budget = (db_bytes as f64 * (mult - 1.0)) as u64;
            let constraints = TuningConstraints::with_budget(16, budget);
            let mut row = vec![format!("{mult}x")];
            for e in evaluate_methods(&methods, &ctx, k, &dta(), &constraints) {
                row.push(improvement_cell(&e));
            }
            t.row(row);
        }
        tables.push(t);
    }
    tables
}

/// Fig 15: methods compared under the DEXTER-like advisor (TPC-H, TPC-DS).
pub fn fig15(scale: &Scale) -> Vec<Table> {
    let mut tables = Vec::new();
    for ctx in [
        ctx_or_skip(ExperimentCtx::tpch(scale, 95), "TPC-H"),
        ctx_or_skip(ExperimentCtx::tpcds(scale, 95), "TPC-DS"),
    ]
    .into_iter()
    .flatten()
    {
        let methods = standard_methods(95);
        let advisor = DexterAdvisor::new();
        let constraints = TuningConstraints::with_max_indexes(16);
        let mut t = Table::new(
            format!("fig15_{}", slug(ctx.name)),
            format!("Fig 15 ({}): improvement (%) under DEXTER", ctx.name),
            &["k", "Uniform", "Cost", "Stratified", "GSUM", "ISUM", "ISUM-S"],
        );
        for k in k_sweep(ctx.workload.len()) {
            let mut row = vec![k.to_string()];
            for e in evaluate_methods(&methods, &ctx, k, &advisor, &constraints) {
                row.push(improvement_cell(&e));
            }
            t.row(row);
        }
        tables.push(t);
    }
    tables
}

fn slug(name: &str) -> String {
    name.to_ascii_lowercase().replace('-', "")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9a_isum_competitive_on_tpch_quick() {
        let scale = Scale::quick();
        let ctx = ExperimentCtx::tpch(&scale, 90).expect("tpch binds");
        let methods = standard_methods(90);
        let constraints = TuningConstraints::with_max_indexes(16);
        let k = 8;
        let evals: Vec<f64> = evaluate_methods(&methods, &ctx, k, &dta(), &constraints)
            .into_iter()
            .map(|e| e.expect("quick eval succeeds").improvement_pct)
            .collect();
        let isum = evals[4];
        let best_baseline = evals[..4].iter().cloned().fold(0.0, f64::max);
        assert!(
            isum >= best_baseline * 0.8,
            "ISUM {isum:.1}% should be near/above best baseline {best_baseline:.1}% (all: {evals:?})"
        );
    }
}
