//! Estimation-quality experiments: Figs 5–8 and Table 3.
//!
//! These measure how well ISUM's cheap estimators (utility, similarity,
//! benefit — with and without summary features) track the improvement an
//! actual advisor delivers, reproducing the Pearson correlations the paper
//! reports.

use isum_advisor::{
    candidate_indexes, CandidateOptions, DexterAdvisor, IndexAdvisor, TuningConstraints,
};
use isum_common::stats::pearson;
use isum_common::QueryId;
use isum_core::benefit::similarity_with_workload;
use isum_core::features::{Featurizer, WeightScheme, WorkloadFeatures};
use isum_core::similarity::{jaccard_ids, weighted_jaccard};
use isum_core::summary::{influence_via_summary, summary_features};
use isum_core::utility::{utilities, UtilityMode};
use isum_workload::Workload;

use crate::harness::{ctx_or_skip, dta, ExperimentCtx, Scale};
use crate::report::{f1, f3, Table};

/// Restricts a context to one instance per template (the paper's per-query
/// correlation studies run on the 22 / 91 template queries).
fn one_per_template(ctx: ExperimentCtx) -> ExperimentCtx {
    let mut seen = std::collections::HashSet::new();
    let ids: Vec<QueryId> =
        ctx.workload.queries.iter().filter(|q| seen.insert(q.template)).map(|q| q.id).collect();
    ExperimentCtx { workload: ctx.workload.restricted_to(&ids), name: ctx.name }
}

/// Per-query reduction in the query's own cost when tuned independently.
fn per_query_reductions(ctx: &ExperimentCtx, advisor: &dyn IndexAdvisor) -> Vec<f64> {
    let constraints = TuningConstraints::with_max_indexes(16);
    let opt = ctx.optimizer();
    ctx.workload
        .queries
        .iter()
        .map(|q| {
            let sub = isum_workload::CompressedWorkload::uniform(vec![q.id]);
            let cfg = advisor.recommend(&opt, &ctx.workload, &sub, &constraints);
            let tuned = opt.cost_query(&ctx.workload, q.id, &cfg);
            (q.cost - tuned).max(0.0)
        })
        .collect()
}

/// Per-query improvement (%) over the *whole* workload when tuning just
/// that query (Fig 6's y-axis).
pub fn per_query_workload_improvements(
    ctx: &ExperimentCtx,
    advisor: &dyn IndexAdvisor,
) -> Vec<f64> {
    let constraints = TuningConstraints::with_max_indexes(16);
    let opt = ctx.optimizer();
    ctx.workload
        .queries
        .iter()
        .map(|q| {
            let sub = isum_workload::CompressedWorkload::uniform(vec![q.id]);
            let cfg = advisor.recommend(&opt, &ctx.workload, &sub, &constraints);
            opt.improvement_pct(&ctx.workload, &cfg)
        })
        .collect()
}

/// Fig 5: utility estimators vs actual per-query reduction (TPC-H).
pub fn fig5(scale: &Scale) -> Vec<Table> {
    let Some(ctx) = ctx_or_skip(ExperimentCtx::tpch(scale, 5), "TPC-H") else {
        return Vec::new();
    };
    let ctx = one_per_template(ctx);
    let advisor = dta();
    let reductions = per_query_reductions(&ctx, &advisor);
    let costs: Vec<f64> = ctx.workload.queries.iter().map(|q| q.cost).collect();
    let util: Vec<f64> = (0..ctx.workload.len())
        .map(|i| {
            isum_core::utility::raw_reduction(&ctx.workload, i, UtilityMode::CostTimesSelectivity)
        })
        .collect();
    let mut t = Table::new(
        "fig5_utility_correlation",
        "Fig 5 (TPC-H): correlation of utility estimators with actual reduction",
        &["estimator", "pearson_r"],
    );
    t.row(vec!["cost_only".into(), f3(pearson(&costs, &reductions))]);
    t.row(vec!["cost_x_selectivity".into(), f3(pearson(&util, &reductions))]);
    let mut scatter = Table::new(
        "fig5_scatter",
        "Fig 5 scatter data (per query)",
        &["query", "cost", "utility", "actual_reduction"],
    );
    for (i, q) in ctx.workload.queries.iter().enumerate() {
        scatter.row(vec![q.id.to_string(), f1(costs[i]), f1(util[i]), f1(reductions[i])]);
    }
    vec![t, scatter]
}

/// Estimator signal vectors shared by Figs 6–7 and Table 3.
struct Signals {
    utility_cost: Vec<f64>,
    utility_sel: Vec<f64>,
    sim_rule: Vec<f64>,
    sim_stats: Vec<f64>,
    benefit_rule: Vec<f64>,
    benefit_stats: Vec<f64>,
    benefit_candidates: Vec<f64>,
    benefit_set_jaccard: Vec<f64>,
    benefit_summary: Vec<f64>,
}

fn signals(workload: &Workload) -> Signals {
    let n = workload.len();
    let rule = WorkloadFeatures::build(
        workload,
        &Featurizer { scheme: WeightScheme::RuleBased, use_table_weight: true },
    );
    let stats = WorkloadFeatures::build(
        workload,
        &Featurizer { scheme: WeightScheme::StatsBased, use_table_weight: true },
    );
    let u_cost = utilities(workload, UtilityMode::CostOnly);
    let u_sel = utilities(workload, UtilityMode::CostTimesSelectivity);

    let benefit = |_features: &[isum_core::FeatureVec], sim: &dyn Fn(usize, usize) -> f64| {
        (0..n)
            .map(|i| {
                u_sel[i] + (0..n).filter(|&j| j != i).map(|j| sim(i, j) * u_sel[j]).sum::<f64>()
            })
            .collect::<Vec<f64>>()
    };

    // Candidate-index sets, hashed to sortable ids (Fig 7a).
    let cands: Vec<Vec<u64>> = workload
        .queries
        .iter()
        .map(|q| {
            let mut ids: Vec<u64> =
                candidate_indexes(&q.bound, &workload.catalog, &CandidateOptions::default())
                    .into_iter()
                    .map(|ix| {
                        use std::hash::{Hash, Hasher};
                        let mut h = std::collections::hash_map::DefaultHasher::new();
                        ix.hash(&mut h);
                        h.finish()
                    })
                    .collect();
            ids.sort_unstable();
            ids
        })
        .collect();

    let sim_rule_sum: Vec<f64> =
        (0..n).map(|i| similarity_with_workload(i, &rule.original)).collect();
    let sim_stats_sum: Vec<f64> =
        (0..n).map(|i| similarity_with_workload(i, &stats.original)).collect();

    // Summary-features benefit (Fig 8b).
    let v = summary_features(&rule.original, &u_sel);
    let total_u: f64 = u_sel.iter().sum();
    let benefit_summary: Vec<f64> = (0..n)
        .map(|i| u_sel[i] + influence_via_summary(i, &rule.original, &u_sel, &v, total_u))
        .collect();

    Signals {
        utility_cost: u_cost,
        utility_sel: u_sel.clone(),
        sim_rule: sim_rule_sum,
        sim_stats: sim_stats_sum,
        benefit_rule: benefit(&rule.original, &|i, j| {
            weighted_jaccard(&rule.original[i], &rule.original[j])
        }),
        benefit_stats: benefit(&stats.original, &|i, j| {
            weighted_jaccard(&stats.original[i], &stats.original[j])
        }),
        benefit_candidates: benefit(&rule.original, &|i, j| jaccard_ids(&cands[i], &cands[j])),
        benefit_set_jaccard: benefit(&rule.original, &|i, j| {
            isum_core::similarity::set_jaccard(&rule.original[i], &rule.original[j])
        }),
        benefit_summary,
    }
}

/// Fig 6: utility vs similarity vs benefit correlation with workload
/// improvement (TPC-H, DTA).
pub fn fig6(scale: &Scale) -> Vec<Table> {
    let Some(ctx) = ctx_or_skip(ExperimentCtx::tpch(scale, 6), "TPC-H") else {
        return Vec::new();
    };
    let ctx = one_per_template(ctx);
    let improvements = per_query_workload_improvements(&ctx, &dta());
    let s = signals(&ctx.workload);
    let mut t = Table::new(
        "fig6_benefit_correlation",
        "Fig 6 (TPC-H): correlation with workload improvement",
        &["signal", "pearson_r"],
    );
    t.row(vec!["utility".into(), f3(pearson(&s.utility_sel, &improvements))]);
    t.row(vec!["similarity".into(), f3(pearson(&s.sim_rule, &improvements))]);
    t.row(vec!["benefit".into(), f3(pearson(&s.benefit_rule, &improvements))]);
    vec![t]
}

/// Fig 7: similarity-measure variants inside the benefit metric (TPC-H).
pub fn fig7(scale: &Scale) -> Vec<Table> {
    let Some(ctx) = ctx_or_skip(ExperimentCtx::tpch(scale, 7), "TPC-H") else {
        return Vec::new();
    };
    let ctx = one_per_template(ctx);
    let improvements = per_query_workload_improvements(&ctx, &dta());
    let s = signals(&ctx.workload);
    let mut t = Table::new(
        "fig7_similarity_variants",
        "Fig 7 (TPC-H): benefit correlation by similarity measure",
        &["similarity_measure", "pearson_r"],
    );
    t.row(vec!["candidate_indexes".into(), f3(pearson(&s.benefit_candidates, &improvements))]);
    t.row(vec!["jaccard_unweighted".into(), f3(pearson(&s.benefit_set_jaccard, &improvements))]);
    t.row(vec!["weighted_jaccard_rule".into(), f3(pearson(&s.benefit_rule, &improvements))]);
    t.row(vec!["weighted_jaccard_stats".into(), f3(pearson(&s.benefit_stats, &improvements))]);
    vec![t]
}

/// Fig 8: summary-features approximation error and benefit correlation.
pub fn fig8(scale: &Scale) -> Vec<Table> {
    let mut err = Table::new(
        "fig8a_summary_error",
        "Fig 8a: F(V)/F(W) ratio distribution",
        &["workload", "p10", "p50", "p90", "within_2x_pct"],
    );
    for (name, ctx) in
        [("TPC-H", ExperimentCtx::tpch(scale, 8)), ("TPC-DS", ExperimentCtx::tpcds(scale, 8))]
    {
        let Some(ctx) = ctx_or_skip(ctx, name) else {
            continue;
        };
        let ctx = one_per_template(ctx);
        let w = &ctx.workload;
        let wf = WorkloadFeatures::build(w, &Featurizer::default());
        let u = utilities(w, UtilityMode::CostTimesSelectivity);
        let v = summary_features(&wf.original, &u);
        let tu: f64 = u.iter().sum();
        let mut ratios = Vec::new();
        for i in 0..w.len() {
            let fv = influence_via_summary(i, &wf.original, &u, &v, tu);
            let fw: f64 = (0..w.len())
                .filter(|&j| j != i)
                .map(|j| weighted_jaccard(&wf.original[i], &wf.original[j]) * u[j])
                .sum();
            if fw > 1e-12 {
                ratios.push(fv / fw);
            }
        }
        let within: f64 = ratios.iter().filter(|&&r| (0.5..=2.0).contains(&r)).count() as f64
            / ratios.len().max(1) as f64
            * 100.0;
        err.row(vec![
            name.into(),
            f3(isum_common::stats::percentile(&ratios, 10.0)),
            f3(isum_common::stats::percentile(&ratios, 50.0)),
            f3(isum_common::stats::percentile(&ratios, 90.0)),
            f1(within),
        ]);
    }
    // Fig 8b: benefit computed via summary features still correlates.
    let Some(ctx) = ctx_or_skip(ExperimentCtx::tpch(scale, 8), "TPC-H") else {
        return vec![err];
    };
    let ctx = one_per_template(ctx);
    let improvements = per_query_workload_improvements(&ctx, &dta());
    let s = signals(&ctx.workload);
    let mut corr = Table::new(
        "fig8b_summary_benefit",
        "Fig 8b (TPC-H): benefit via summary features vs improvement",
        &["signal", "pearson_r"],
    );
    corr.row(vec!["benefit_all_pairs".into(), f3(pearson(&s.benefit_rule, &improvements))]);
    corr.row(vec!["benefit_summary".into(), f3(pearson(&s.benefit_summary, &improvements))]);
    vec![err, corr]
}

/// Table 3: correlation of the six estimation techniques with actual
/// improvement under DTA and DEXTER, on TPC-H and TPC-DS.
pub fn table3(scale: &Scale) -> Vec<Table> {
    let mut t = Table::new(
        "table3_estimator_correlations",
        "Table 3: estimator correlation with actual improvement",
        &["estimator", "tpch_dta", "tpch_dexter", "tpcds_dta", "tpcds_dexter"],
    );
    // Table 3's columns pair both workloads with both advisors; with either
    // workload unavailable the column layout collapses, so skip the table.
    let Some(tpch) = ctx_or_skip(ExperimentCtx::tpch(scale, 30), "TPC-H") else {
        return vec![t];
    };
    let Some(tpcds) = ctx_or_skip(ExperimentCtx::tpcds(scale, 30), "TPC-DS") else {
        return vec![t];
    };
    let mut cols: Vec<Vec<f64>> = Vec::new();
    for (workload_idx, ctx) in
        [one_per_template(tpch), one_per_template(tpcds)].into_iter().enumerate()
    {
        let s = signals(&ctx.workload);
        for advisor in [&dta() as &dyn IndexAdvisor, &DexterAdvisor::new()] {
            let improvements = per_query_workload_improvements(&ctx, advisor);
            let col = vec![
                pearson(&s.utility_cost, &improvements),
                pearson(&s.utility_sel, &improvements),
                pearson(&s.sim_rule, &improvements),
                pearson(&s.sim_stats, &improvements),
                pearson(&s.benefit_rule, &improvements),
                pearson(&s.benefit_stats, &improvements),
            ];
            cols.push(col);
            let _ = workload_idx;
        }
    }
    let names = [
        "Utility (only cost)",
        "Utility (cost + selectivity)",
        "Similarity (rule-based)",
        "Similarity (stats-based)",
        "Benefit (rule-based)",
        "Benefit (stats-based)",
    ];
    for (r, name) in names.iter().enumerate() {
        t.row(vec![
            name.to_string(),
            f3(cols[0][r]),
            f3(cols[1][r]),
            f3(cols[2][r]),
            f3(cols[3][r]),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benefit_correlates_better_than_components() {
        // The paper's central estimation claim (Fig 6 / Table 3 ordering):
        // benefit ≥ max(utility, similarity) in correlation.
        let scale = Scale::quick();
        let ctx = one_per_template(ExperimentCtx::tpch(&scale, 6).expect("tpch binds"));
        let improvements = per_query_workload_improvements(&ctx, &dta());
        let s = signals(&ctx.workload);
        let r_b = pearson(&s.benefit_rule, &improvements);
        let r_u = pearson(&s.utility_sel, &improvements);
        let r_s = pearson(&s.sim_rule, &improvements);
        assert!(
            r_b >= r_u.min(r_s) - 0.05,
            "benefit r={r_b:.2} vs utility r={r_u:.2}, similarity r={r_s:.2}"
        );
        assert!(r_b > 0.3, "benefit should correlate positively, got {r_b:.2}");
    }

    #[test]
    fn summary_ratio_mostly_within_2x() {
        let scale = Scale::quick();
        let tables = fig8(&scale);
        let within: f64 = tables[0].rows[0][4].parse().unwrap();
        assert!(within >= 50.0, "Fig 8a: only {within}% within 2x");
    }
}
