//! One module per group of paper artifacts. Every public function returns
//! the tables for one figure/table id; [`run`] dispatches by id.

pub mod ablation;
pub mod comparison;
pub mod correlations;
pub mod motivation;
pub mod reporting;
pub mod robustness;
pub mod scalability;
pub mod sensitivity;

use crate::harness::Scale;
use crate::report::Table;

/// All experiment ids, in paper order.
pub const ALL_IDS: &[&str] = &[
    "fig2",
    "fig3",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9a",
    "fig9b",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "table3",
    "ablation",
    "reporting",
    "robustness",
];

/// Runs one experiment by id.
///
/// # Panics
/// Panics on an unknown id (the binary validates first).
pub fn run(id: &str, scale: &Scale) -> Vec<Table> {
    match id {
        "fig2" => motivation::fig2(scale),
        "fig3" => motivation::fig3(scale),
        "fig5" => correlations::fig5(scale),
        "fig6" => correlations::fig6(scale),
        "fig7" => correlations::fig7(scale),
        "fig8" => correlations::fig8(scale),
        "fig9a" => comparison::fig9a(scale),
        "fig9b" => comparison::fig9b(scale),
        "fig10" => comparison::fig10(scale),
        "fig11" => scalability::fig11(scale),
        "fig12" => sensitivity::fig12(scale),
        "fig13" => sensitivity::fig13(scale),
        "fig14" => sensitivity::fig14(scale),
        "fig15" => comparison::fig15(scale),
        "table3" => correlations::table3(scale),
        "ablation" => ablation::ablation(scale),
        "reporting" => reporting::reporting(scale),
        "robustness" => robustness::robustness(scale),
        other => panic!("unknown experiment id `{other}`"),
    }
}
