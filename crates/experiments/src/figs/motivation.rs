//! Motivation figures (Sec 2.1): the scalability pain of index tuning and
//! the payoff of compression.

use std::time::Instant;

use isum_advisor::{IndexAdvisor, TuningConstraints};
use isum_common::QueryId;
use isum_core::Isum;

use crate::harness::{ctx_or_skip, dta, evaluate_method, ExperimentCtx, Scale};
use crate::report::{f1, Table};

/// Fig 2a/2b: tuning time and configurations explored vs workload size
/// (TPC-DS, one instance per template as in the paper's 92-query setup).
pub fn fig2(scale: &Scale) -> Vec<Table> {
    let Some(ctx) = ctx_or_skip(ExperimentCtx::tpcds(scale, 2), "TPC-DS") else {
        return Vec::new();
    };
    let n_max = ctx.workload.len().min(91);
    let advisor = dta();
    let constraints = TuningConstraints::with_max_indexes(16);
    let mut t_time = Table::new(
        "fig2a_tuning_time",
        "Fig 2a (TPC-DS): tuning time vs workload size",
        &["n_queries", "tuning_time_s"],
    );
    let mut t_cfg = Table::new(
        "fig2b_configs",
        "Fig 2b (TPC-DS): configurations explored (what-if costings) vs workload size",
        &["n_queries", "optimizer_calls", "cache_hits"],
    );
    let mut n = 1;
    while n <= n_max {
        let sub = ctx.workload.restricted_to(&(0..n).map(QueryId::from_index).collect::<Vec<_>>());
        let opt = isum_optimizer::WhatIfOptimizer::new(&sub.catalog);
        let t0 = Instant::now();
        let _cfg = advisor.recommend_full(&opt, &sub, &constraints);
        let secs = t0.elapsed().as_secs_f64();
        // In our in-process model the what-if calls *are* the tuning cost;
        // their count and the cache's absorption go in the 2b table.
        t_time.row(vec![n.to_string(), format!("{secs:.3}")]);
        t_cfg.row(vec![
            n.to_string(),
            opt.optimizer_calls().to_string(),
            opt.cache_hits().to_string(),
        ]);
        n = if n == 1 { 20 } else { n + 20 };
    }
    vec![t_time, t_cfg]
}

/// Fig 3: improvement of ISUM-compressed workloads vs the full workload
/// (TPC-DS, k ∈ {1, 20, 40, 60, 80, n}).
pub fn fig3(scale: &Scale) -> Vec<Table> {
    let Some(ctx) = ctx_or_skip(ExperimentCtx::tpcds(scale, 3), "TPC-DS") else {
        return Vec::new();
    };
    let n = ctx.workload.len().min(91);
    let ctx = ExperimentCtx {
        workload: ctx.workload.restricted_to(&(0..n).map(QueryId::from_index).collect::<Vec<_>>()),
        name: "TPC-DS",
    };
    let advisor = dta();
    let constraints = TuningConstraints::with_max_indexes(16);
    // Full-workload reference line.
    let opt = ctx.optimizer();
    let t0 = Instant::now();
    let full_cfg = advisor.recommend_full(&opt, &ctx.workload, &constraints);
    let full_secs = t0.elapsed().as_secs_f64();
    let full_imp = opt.improvement_pct(&ctx.workload, &full_cfg);

    let mut table = Table::new(
        "fig3_compression_payoff",
        "Fig 3: compressed vs full workload improvement (TPC-DS)",
        &["k", "improvement_pct", "full_workload_pct", "total_time_s", "full_time_s"],
    );
    let isum = Isum::new();
    for k in [1usize, 20, 40, 60, 80, n] {
        let k = k.min(n);
        let eval = match evaluate_method(&isum, &ctx, k, &advisor, &constraints) {
            Ok(eval) => eval,
            Err(e) => {
                isum_common::warn!("harness.fig3", format!("cell skipped: {e}"), k = k);
                isum_common::count!("harness.cells_skipped");
                if k == n {
                    break;
                }
                continue;
            }
        };
        table.row(vec![
            k.to_string(),
            f1(eval.improvement_pct),
            f1(full_imp),
            format!("{:.3}", eval.compression_secs + eval.tuning_secs),
            format!("{full_secs:.3}"),
        ]);
        if k == n {
            break;
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_converges_to_full_workload() {
        let scale = Scale::quick();
        let tables = fig3(&scale);
        let t = &tables[0];
        let last = t.rows.last().unwrap();
        let imp: f64 = last[1].parse().unwrap();
        let full: f64 = last[2].parse().unwrap();
        assert!((imp - full).abs() < 5.0, "k = n should match full tuning: {imp} vs {full}");
    }
}
