//! Sec 10 exploration: the cost of the advisor's reporting contract.
//!
//! Commercial advisors report per-query improvements over the *entire*
//! input workload (one optimizer call per query), which Sec 10 notes can
//! swamp the savings of compression. This experiment measures the
//! trade-off our [`TuningReport`] offers: the
//! exact report's call count vs the extrapolated report's, and the
//! resulting error in the total improvement estimate.

use isum_advisor::{DtaAdvisor, IndexAdvisor, TuningConstraints, TuningReport};
use isum_core::{Compressor, Isum};

use isum_common::count;

use crate::harness::{ctx_or_skip, half_sqrt_n, ExperimentCtx, Scale};
use crate::report::{f1, Table};

/// Runs the reporting trade-off on all four workloads.
pub fn reporting(scale: &Scale) -> Vec<Table> {
    let mut t = Table::new(
        "reporting_tradeoff",
        "Sec 10: exact vs extrapolated improvement reporting",
        &[
            "workload",
            "n",
            "k",
            "exact_calls",
            "extrap_calls",
            "exact_pct",
            "extrap_pct",
            "abs_error",
        ],
    );
    for ctx in [
        ctx_or_skip(ExperimentCtx::tpch(scale, 210), "TPC-H"),
        ctx_or_skip(ExperimentCtx::tpcds(scale, 210), "TPC-DS"),
        ctx_or_skip(ExperimentCtx::dsb(scale, 210), "DSB"),
        ctx_or_skip(ExperimentCtx::realm(scale, 210), "Real-M"),
    ]
    .into_iter()
    .flatten()
    {
        let n = ctx.workload.len();
        let k = half_sqrt_n(n);
        let cw = match Isum::new().compress(&ctx.workload, k) {
            Ok(cw) => cw,
            Err(e) => {
                count!("harness.cells_skipped");
                isum_common::warn!(
                    "harness.reporting",
                    format!("row skipped: {e}"),
                    workload = ctx.name
                );
                continue;
            }
        };
        let advisor = DtaAdvisor::new();
        let cfg = {
            let opt = ctx.optimizer();
            advisor.recommend(&opt, &ctx.workload, &cw, &TuningConstraints::with_max_indexes(16))
        };
        let opt_exact = ctx.optimizer();
        let exact = TuningReport::exact(&opt_exact, &ctx.workload, &cfg);
        let exact_calls = opt_exact.optimizer_calls();
        let opt_extra = ctx.optimizer();
        let extra = TuningReport::extrapolated(&opt_extra, &ctx.workload, &cw, &cfg);
        let extra_calls = opt_extra.optimizer_calls();
        t.row(vec![
            ctx.name.into(),
            n.to_string(),
            k.to_string(),
            exact_calls.to_string(),
            extra_calls.to_string(),
            f1(exact.total_improvement_pct()),
            f1(extra.total_improvement_pct()),
            f1((exact.total_improvement_pct() - extra.total_improvement_pct()).abs()),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extrapolation_always_saves_calls() {
        let scale = Scale::quick();
        let tables = reporting(&scale);
        for row in &tables[0].rows {
            let exact: u64 = row[3].parse().expect("count");
            let extra: u64 = row[4].parse().expect("count");
            assert!(extra < exact, "{}: {extra} !< {exact}", row[0]);
        }
    }
}
