//! Seed robustness: the Fig 9a comparison repeated over several workload
//! seeds, reporting mean ± std per method. Guards the headline claim
//! against parameter-instantiation luck.

use isum_advisor::TuningConstraints;
use isum_common::stats::{mean, std_dev};
use isum_common::{count, IsumResult};

use crate::harness::{
    ctx_or_skip, dta, evaluate_method, half_sqrt_n, standard_methods, ExperimentCtx, Scale,
};
use crate::report::Table;

const SEEDS: [u64; 5] = [301, 302, 303, 304, 305];

/// Mean ± std improvement per method at `k = 0.5√n`, five seeds, four
/// workloads.
pub fn robustness(scale: &Scale) -> Vec<Table> {
    let mut t = Table::new(
        "robustness_seeds",
        "Robustness: improvement (%) mean ± std over 5 workload seeds, k = 0.5√n",
        &["workload", "Uniform", "Cost", "Stratified", "GSUM", "ISUM", "ISUM-S"],
    );
    type CtxFn = fn(&Scale, u64) -> IsumResult<ExperimentCtx>;
    let makers: [(&str, CtxFn); 4] = [
        ("TPC-H", ExperimentCtx::tpch),
        ("TPC-DS", ExperimentCtx::tpcds),
        ("DSB", ExperimentCtx::dsb),
        ("Real-M", ExperimentCtx::realm),
    ];
    for (name, make) in makers {
        let mut per_method: Vec<Vec<f64>> = vec![Vec::new(); 6];
        for &seed in &SEEDS {
            let Some(ctx) = ctx_or_skip(make(scale, seed), name) else {
                continue;
            };
            let k = half_sqrt_n(ctx.workload.len());
            let constraints = TuningConstraints::with_max_indexes(16);
            for (mi, m) in standard_methods(seed).iter().enumerate() {
                match evaluate_method(m.as_ref(), &ctx, k, &dta(), &constraints) {
                    Ok(e) => per_method[mi].push(e.improvement_pct),
                    Err(e) => {
                        count!("harness.cells_skipped");
                        isum_common::warn!(
                            "harness.robustness",
                            format!("cell skipped: {e}"),
                            workload = name,
                            seed = seed
                        );
                    }
                }
            }
        }
        let mut row = vec![name.to_string()];
        for samples in &per_method {
            row.push(format!("{:.1}±{:.1}", mean(samples), std_dev(samples)));
        }
        t.row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_samples_per_method() {
        // Structural check on one small workload (full run is exercised by
        // the binary).
        let scale = Scale::quick();
        let ctx = ExperimentCtx::tpch(&scale, 301).expect("tpch binds");
        let k = half_sqrt_n(ctx.workload.len());
        let constraints = TuningConstraints::with_max_indexes(8);
        let methods = standard_methods(301);
        for m in &methods {
            let e = evaluate_method(m.as_ref(), &ctx, k, &dta(), &constraints)
                .expect("quick eval succeeds");
            assert!(e.improvement_pct.is_finite());
        }
    }
}
