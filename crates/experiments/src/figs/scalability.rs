//! Fig 11: summary-features vs all-pairs vs k-medoid — improvement and
//! compression time as the input workload grows.

use isum_advisor::TuningConstraints;
use isum_common::{count, IsumResult};

use crate::harness::{ctx_or_skip, dta, evaluate_method, fig11_methods, ExperimentCtx, Scale};
use crate::report::{f1, Table};

/// Fig 11a–d.
pub fn fig11(scale: &Scale) -> Vec<Table> {
    let mut tables = Vec::new();
    // Input-size sweeps follow the paper's axes regardless of ISUM_SCALE
    // (the sweep *is* the experiment); only `quick` trims the tail.
    let cap = if scale.tpch <= 66 { 256 } else { 2048 };
    let tpch_sizes: Vec<usize> =
        [64usize, 128, 256, 512, 1024, 2048].into_iter().filter(|&n| n <= cap).collect();
    let realm_sizes: Vec<usize> =
        [64usize, 128, 256, 473].into_iter().filter(|&n| n <= scale.realm.max(128)).collect();
    for (name, sizes, make) in [
        (
            "tpch",
            tpch_sizes,
            Box::new(|n: usize| {
                Ok(ExperimentCtx::prepare(
                    "TPC-H",
                    isum_workload::gen::tpch_workload(scale.sf, n, 110)?,
                ))
            }) as Box<dyn Fn(usize) -> IsumResult<ExperimentCtx>>,
        ),
        (
            "realm",
            realm_sizes,
            Box::new(|n: usize| {
                Ok(ExperimentCtx::prepare(
                    "Real-M",
                    isum_workload::gen::realm_workload_sized(n, 110)?,
                ))
            }),
        ),
    ] {
        let mut t_imp = Table::new(
            format!("fig11_improvement_{name}"),
            format!("Fig 11 ({name}): improvement (%) vs input size"),
            &["n", "all-pairs", "k-medoid", "summary"],
        );
        let mut t_time = Table::new(
            format!("fig11_time_{name}"),
            format!("Fig 11 ({name}): compression time (s) vs input size"),
            &["n", "all-pairs", "k-medoid", "summary"],
        );
        for &n in &sizes {
            let Some(ctx) = ctx_or_skip(make(n), name) else {
                continue;
            };
            let k = ((n as f64).sqrt() * 0.5).round().max(2.0) as usize;
            let methods = fig11_methods(110);
            let constraints = TuningConstraints::with_max_indexes(16);
            let mut imp_row = vec![n.to_string()];
            let mut time_row = vec![n.to_string()];
            for m in &methods {
                match evaluate_method(m.as_ref(), &ctx, k, &dta(), &constraints) {
                    Ok(e) => {
                        imp_row.push(f1(e.improvement_pct));
                        time_row.push(format!("{:.4}", e.compression_secs));
                    }
                    Err(e) => {
                        count!("harness.cells_skipped");
                        isum_common::warn!("harness.fig11", format!("cell skipped: {e}"), n = n);
                        imp_row.push("-".into());
                        time_row.push("-".into());
                    }
                }
            }
            t_imp.row(imp_row);
            t_time.row(time_row);
        }
        tables.push(t_imp);
        tables.push(t_time);
    }
    tables
}

#[cfg(test)]
mod tests {
    use isum_core::{Compressor, Isum, IsumConfig};
    use std::time::Instant;

    #[test]
    fn summary_is_much_faster_than_all_pairs_at_scale() {
        let mut w = isum_workload::gen::tpch_workload(1, 440, 1).unwrap();
        isum_optimizer::populate_costs(&mut w);
        let k = 10;
        let t0 = Instant::now();
        Isum::with_config(IsumConfig::all_pairs()).compress(&w, k).unwrap();
        let all_pairs = t0.elapsed();
        let t1 = Instant::now();
        Isum::new().compress(&w, k).unwrap();
        let summary = t1.elapsed();
        assert!(summary < all_pairs, "summary {summary:?} should beat all-pairs {all_pairs:?}");
    }
}
