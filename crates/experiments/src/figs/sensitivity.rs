//! Sensitivity studies: Fig 12 (workload characteristics), Fig 13 (update
//! strategies), Fig 14 (weighting strategies).

use isum_advisor::TuningConstraints;
use isum_core::{Algorithm, Isum, IsumConfig, UpdateStrategy, WeightingStrategy};
use isum_workload::gen::dsb::{dsb_workload_classed, dsb_workload_instances};
use isum_workload::QueryClass;

use isum_common::IsumError;

use crate::harness::{
    ctx_or_skip, dta, evaluate_method, improvement_cell, k_sweep, standard_methods, ExperimentCtx,
    Scale,
};
use crate::report::Table;

/// Fig 12a: instances per template (DSB); 12b–d: per-class workloads.
pub fn fig12(scale: &Scale) -> Vec<Table> {
    let mut tables = Vec::new();
    // 12a: fixed template count, growing instance count.
    let mut t = Table::new(
        "fig12a_instances",
        "Fig 12a (DSB): improvement (%) vs instances per template (k=16)",
        &["instances", "Uniform", "Cost", "Stratified", "GSUM", "ISUM", "ISUM-S"],
    );
    for instances in [1usize, 2, 4, 8] {
        let Some(ctx) = ctx_or_skip(
            dsb_workload_instances(scale.sf, 26, instances, 120)
                .map(|w| ExperimentCtx::prepare("DSB", w))
                .map_err(IsumError::from),
            "DSB",
        ) else {
            continue;
        };
        let methods = standard_methods(120);
        let constraints = TuningConstraints::with_max_indexes(16);
        let mut row = vec![instances.to_string()];
        for m in &methods {
            row.push(improvement_cell(&evaluate_method(
                m.as_ref(),
                &ctx,
                16,
                &dta(),
                &constraints,
            )));
        }
        t.row(row);
    }
    tables.push(t);
    // 12b-d: class-restricted workloads, k sweep.
    for (label, class) in [
        ("spj", QueryClass::Spj),
        ("aggregate", QueryClass::Aggregate),
        ("complex", QueryClass::Complex),
    ] {
        let Some(ctx) = ctx_or_skip(
            dsb_workload_classed(scale.sf, class, scale.dsb, 121)
                .map(|w| ExperimentCtx::prepare("DSB", w))
                .map_err(IsumError::from),
            "DSB",
        ) else {
            continue;
        };
        let methods = standard_methods(121);
        let constraints = TuningConstraints::with_max_indexes(16);
        let mut t = Table::new(
            format!("fig12_{label}"),
            format!("Fig 12 (DSB {label}): improvement (%) vs compressed size"),
            &["k", "Uniform", "Cost", "Stratified", "GSUM", "ISUM", "ISUM-S"],
        );
        for k in k_sweep(ctx.workload.len()) {
            let mut row = vec![k.to_string()];
            for m in &methods {
                row.push(improvement_cell(&evaluate_method(
                    m.as_ref(),
                    &ctx,
                    k,
                    &dta(),
                    &constraints,
                )));
            }
            t.row(row);
        }
        tables.push(t);
    }
    tables
}

/// Fig 13: update strategies under the all-pairs greedy (TPC-H, TPC-DS).
pub fn fig13(scale: &Scale) -> Vec<Table> {
    let strategies = [
        ("no_update", UpdateStrategy::NoUpdate),
        ("utility_only", UpdateStrategy::UtilityOnly),
        ("utility+subtract", UpdateStrategy::SubtractWeights),
        ("utility+zero", UpdateStrategy::ZeroFeatures),
    ];
    let mut tables = Vec::new();
    for mut ctx in [
        ctx_or_skip(ExperimentCtx::tpch(scale, 130), "TPC-H"),
        ctx_or_skip(ExperimentCtx::tpcds(scale, 130), "TPC-DS"),
    ]
    .into_iter()
    .flatten()
    {
        // The all-pairs greedy is O(k n^2); cap the input so paper-scale
        // runs stay tractable (the paper's own Fig 11 shows why).
        if ctx.workload.len() > 1000 {
            let ids: Vec<isum_common::QueryId> =
                (0..1000).map(isum_common::QueryId::from_index).collect();
            ctx = ExperimentCtx { workload: ctx.workload.restricted_to(&ids), name: ctx.name };
        }
        let constraints = TuningConstraints::with_max_indexes(16);
        let mut t = Table::new(
            format!("fig13_{}", ctx.name.to_ascii_lowercase().replace('-', "")),
            format!("Fig 13 ({}): update strategies, all-pairs greedy", ctx.name),
            &["k", "no_update", "utility_only", "utility+subtract", "utility+zero"],
        );
        for k in [1usize, 2, 4, 8] {
            let mut row = vec![k.to_string()];
            for (_, s) in &strategies {
                let isum = Isum::with_config(IsumConfig {
                    algorithm: Algorithm::AllPairs,
                    update: *s,
                    ..IsumConfig::isum()
                });
                row.push(improvement_cell(&evaluate_method(&isum, &ctx, k, &dta(), &constraints)));
            }
            t.row(row);
        }
        tables.push(t);
    }
    tables
}

/// Fig 14: weighting strategies (TPC-H).
pub fn fig14(scale: &Scale) -> Vec<Table> {
    let strategies = [
        ("no_weighing", WeightingStrategy::Uniform),
        ("benefit_selection", WeightingStrategy::SelectionBenefit),
        ("recalibrated", WeightingStrategy::Recalibrated),
        ("recalib+template", WeightingStrategy::RecalibratedTemplate),
    ];
    let Some(ctx) = ctx_or_skip(ExperimentCtx::tpch(scale, 140), "TPC-H") else {
        return Vec::new();
    };
    let constraints = TuningConstraints::with_max_indexes(16);
    let mut t = Table::new(
        "fig14_weighing",
        "Fig 14 (TPC-H): weighting strategies",
        &["k", "no_weighing", "benefit_selection", "recalibrated", "recalib+template"],
    );
    for k in [2usize, 4, 8, 16, 32] {
        if k > ctx.workload.len() {
            break;
        }
        let mut row = vec![k.to_string()];
        for (_, s) in &strategies {
            let isum = Isum::with_config(IsumConfig { weighting: *s, ..IsumConfig::isum() });
            row.push(improvement_cell(&evaluate_method(&isum, &ctx, k, &dta(), &constraints)));
        }
        t.row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_core::Compressor;

    #[test]
    fn update_strategies_all_produce_valid_selections() {
        let scale = Scale::quick();
        let ctx = ExperimentCtx::tpch(&scale, 130).expect("tpch binds");
        for s in [
            UpdateStrategy::NoUpdate,
            UpdateStrategy::UtilityOnly,
            UpdateStrategy::SubtractWeights,
            UpdateStrategy::ZeroFeatures,
        ] {
            let isum = Isum::with_config(IsumConfig {
                algorithm: Algorithm::AllPairs,
                update: s,
                ..IsumConfig::isum()
            });
            let cw = isum.compress(&ctx.workload, 4).unwrap();
            assert_eq!(cw.len(), 4, "{s:?}");
        }
    }
}
