//! Shared experiment pipeline: build workload → compress → tune → evaluate.
//!
//! Phase accounting runs through [`isum_common::telemetry`]: the pipeline
//! opens spans (`prepare`, `compress`, `tune`, `evaluate`) around each
//! stage, the layers below contribute their own nested spans and counters,
//! and [`telemetry_report`] folds the whole registry into one JSON document
//! per run.

use std::path::{Path, PathBuf};
use std::time::Instant;

use isum_advisor::{DtaAdvisor, IndexAdvisor, TuningConstraints};
use isum_baselines::{CostTopK, Gsum, KMedoid, Stratified, UniformSampling};
use isum_common::telemetry;
use isum_common::{count, IsumError, IsumResult, Json, QueryId};
use isum_core::{Compressor, Isum, IsumConfig};
use isum_faults::FaultInjector;
use isum_optimizer::WhatIfOptimizer;
use isum_workload::gen::{dsb_workload, realm_workload_sized, tpcds_workload, tpch_workload};
use isum_workload::Workload;

use crate::checkpoint;

/// Workload sizes for the evaluation, selectable via `ISUM_SCALE`.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// TPC-H query count (paper: 2200).
    pub tpch: usize,
    /// TPC-DS query count (paper: 9100).
    pub tpcds: usize,
    /// DSB query count (paper: 520).
    pub dsb: usize,
    /// Real-M query count (paper: 473).
    pub realm: usize,
    /// Scale factor for the benchmark catalogs.
    pub sf: u64,
}

impl Scale {
    /// Fast sizes for CI / smoke runs.
    pub fn quick() -> Self {
        Self { tpch: 66, tpcds: 91, dsb: 52, realm: 100, sf: 1 }
    }

    /// Default sizes: every template instantiated multiple times, runs in
    /// minutes on a laptop.
    pub fn medium() -> Self {
        Self { tpch: 220, tpcds: 273, dsb: 156, realm: 473, sf: 10 }
    }

    /// Large sizes: DSB and Real-M at the paper's Table 2 sizes; TPC-H and
    /// TPC-DS at 50%/10% of theirs (their full sizes exist mainly to stress
    /// the commercial tuner; see EXPERIMENTS.md).
    pub fn large() -> Self {
        Self { tpch: 1100, tpcds: 910, dsb: 520, realm: 473, sf: 10 }
    }

    /// The paper's Table 2 sizes (slow).
    pub fn paper() -> Self {
        Self { tpch: 2200, tpcds: 9100, dsb: 520, realm: 473, sf: 10 }
    }

    /// Reads `ISUM_SCALE` (`quick` / `medium` / `paper`), defaulting to
    /// medium.
    pub fn from_env() -> Self {
        match std::env::var("ISUM_SCALE").as_deref() {
            Ok("quick") => Self::quick(),
            Ok("large") => Self::large(),
            Ok("paper") => Self::paper(),
            _ => Self::medium(),
        }
    }
}

/// A prepared workload: queries with populated costs.
#[derive(Debug)]
pub struct ExperimentCtx {
    /// Workload with `C(q)` filled in.
    pub workload: Workload,
    /// Display name (e.g. `TPC-H`).
    pub name: &'static str,
}

impl ExperimentCtx {
    /// Wraps a generated workload, populating costs.
    ///
    /// When the process-wide fault injector is active, ingestion models a
    /// production log pipeline: queries hit by `parse` faults are dropped
    /// (unparseable log entries), and queries whose costing task is hit
    /// by a `panic` fault are quarantined by the exec pool's panic
    /// isolation (`faults.quarantined`) and likewise dropped — the run
    /// continues over the surviving queries. With no active injector this
    /// is the exact pre-existing path, bit-identical to earlier releases.
    pub fn prepare(name: &'static str, mut workload: Workload) -> Self {
        let _s = telemetry::span("prepare");
        let injector = isum_faults::global();
        if injector.is_active() {
            return Self::prepare_with_faults(name, workload, &injector);
        }
        let costs: Vec<f64> = {
            let opt = WhatIfOptimizer::new(&workload.catalog);
            let empty = isum_optimizer::IndexConfig::empty();
            isum_exec::par_map(&workload.queries, |q| opt.cost_bound(&q.bound, &empty))
        };
        workload.set_costs(&costs);
        Self { workload, name }
    }

    /// The fault-aware ingestion pipeline (split out so the zero-fault
    /// path above stays byte-for-byte the original).
    fn prepare_with_faults(
        name: &'static str,
        workload: Workload,
        injector: &FaultInjector,
    ) -> Self {
        // Fault sites are keyed by workload name + query position —
        // deterministic across runs and thread counts, independent of
        // construction order.
        let salt = fnv1a(name.as_bytes());

        // Parse faults: simulated unparseable statements in the query log,
        // dropped before costing (mirrors `Workload::from_sql_lenient`).
        let parsed: Vec<QueryId> = workload
            .queries
            .iter()
            .filter(|q| !injector.parse_fault(salt ^ q.id.index() as u64))
            .map(|q| q.id)
            .collect();
        let dropped_parse = workload.len() - parsed.len();
        let mut workload =
            if dropped_parse > 0 { workload.restricted_to(&parsed) } else { workload };

        // Costing with panic injection: a poisoned query's task panics and
        // is quarantined by `try_par_map` instead of killing the run.
        let outcomes = {
            let opt = WhatIfOptimizer::new(&workload.catalog);
            let empty = isum_optimizer::IndexConfig::empty();
            isum_exec::try_par_map(&workload.queries, |q| {
                if injector.panic_fault(salt ^ q.id.index() as u64) {
                    panic!("injected ingestion panic ({name} query #{})", q.id.index());
                }
                opt.cost_bound(&q.bound, &empty)
            })
        };
        let survivors: Vec<(QueryId, f64)> = workload
            .queries
            .iter()
            .zip(&outcomes)
            .filter_map(|(q, r)| r.as_ref().ok().map(|&c| (q.id, c)))
            .collect();
        if survivors.len() < workload.len() {
            let ids: Vec<QueryId> = survivors.iter().map(|&(id, _)| id).collect();
            workload = workload.restricted_to(&ids);
        }
        let costs: Vec<f64> = survivors.iter().map(|&(_, c)| c).collect();
        workload.set_costs(&costs);
        if dropped_parse > 0 || survivors.len() < outcomes.len() {
            isum_common::warn!(
                "harness",
                format!(
                    "{name}: dropped {dropped_parse} unparseable and quarantined {} poisoned \
                     queries; continuing with {}",
                    outcomes.len() - survivors.len(),
                    workload.len()
                )
            );
        }
        Self { workload, name }
    }

    /// TPC-H context.
    ///
    /// # Errors
    /// Propagates workload generation/bind failures as permanent errors.
    pub fn tpch(scale: &Scale, seed: u64) -> IsumResult<Self> {
        Ok(Self::prepare("TPC-H", tpch_workload(scale.sf, scale.tpch, seed)?))
    }

    /// TPC-DS context.
    ///
    /// # Errors
    /// Propagates workload generation/bind failures as permanent errors.
    pub fn tpcds(scale: &Scale, seed: u64) -> IsumResult<Self> {
        Ok(Self::prepare("TPC-DS", tpcds_workload(scale.sf, scale.tpcds, seed)?))
    }

    /// DSB context.
    ///
    /// # Errors
    /// Propagates workload generation/bind failures as permanent errors.
    pub fn dsb(scale: &Scale, seed: u64) -> IsumResult<Self> {
        Ok(Self::prepare("DSB", dsb_workload(scale.sf, scale.dsb, seed)?))
    }

    /// Real-M context.
    ///
    /// # Errors
    /// Propagates workload generation/bind failures as permanent errors.
    pub fn realm(scale: &Scale, seed: u64) -> IsumResult<Self> {
        Ok(Self::prepare("Real-M", realm_workload_sized(scale.realm, seed)?))
    }

    /// Fresh what-if optimizer over this context's catalog.
    pub fn optimizer(&self) -> WhatIfOptimizer<'_> {
        WhatIfOptimizer::new(&self.workload.catalog)
    }
}

/// FNV-1a over bytes: a stable salt for per-workload fault keys.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Unwraps a context construction, reporting and skipping on failure
/// (counted as `harness.workloads_skipped`): one failing workload costs
/// its own cells, never the whole figure.
pub fn ctx_or_skip(result: IsumResult<ExperimentCtx>, what: &str) -> Option<ExperimentCtx> {
    match result {
        Ok(ctx) => Some(ctx),
        Err(e) => {
            count!("harness.workloads_skipped");
            isum_common::warn!("harness", format!("skipping workload {what}: {e}"));
            None
        }
    }
}

/// Outcome of compressing with one method and tuning the result.
#[derive(Debug, Clone, Copy)]
pub struct MethodEval {
    /// Improvement (%) over the full workload.
    pub improvement_pct: f64,
    /// Wall-clock seconds spent inside the compressor.
    pub compression_secs: f64,
    /// Optimizer calls made while tuning the compressed workload.
    pub tuning_calls: u64,
    /// Wall-clock seconds spent tuning.
    pub tuning_secs: f64,
    /// Coverage of the compressed selection over the full workload
    /// ([`isum_core::workload_coverage`]): one gauge comparable across
    /// methods, reported alongside the quality figures.
    pub coverage: f64,
}

/// Compresses with `method`, tunes the result with `advisor`, and measures
/// the improvement over the entire workload.
///
/// # Errors
/// Compression failures (invalid configuration, empty/too-small workload —
/// e.g. after fault injection dropped queries) are returned as typed
/// errors instead of panicking, so callers skip and report the cell.
pub fn evaluate_method(
    method: &dyn Compressor,
    ctx: &ExperimentCtx,
    k: usize,
    advisor: &dyn IndexAdvisor,
    constraints: &TuningConstraints,
) -> IsumResult<MethodEval> {
    // Spans carry the phase breakdown into the telemetry registry; the
    // Instant reads feed the `MethodEval` the caller renders into result
    // tables, which must work with telemetry off.
    let t0 = Instant::now();
    let cw = {
        let _s = telemetry::span("compress");
        method.compress(&ctx.workload, k).map_err(IsumError::from)?
    };
    let compression_secs = t0.elapsed().as_secs_f64();
    // Observation only: coverage reads the finished selection, after the
    // compression clock stops, and never feeds back into tuning.
    let coverage = isum_core::workload_coverage(&ctx.workload, &cw.ids());
    let opt = ctx.optimizer();
    let t1 = Instant::now();
    let cfg = advisor.recommend(&opt, &ctx.workload, &cw, constraints);
    let tuning_secs = t1.elapsed().as_secs_f64();
    let tuning_calls = opt.optimizer_calls();
    let improvement_pct = {
        let _e = telemetry::span("evaluate");
        opt.improvement_pct(&ctx.workload, &cfg)
    };
    Ok(MethodEval { improvement_pct, compression_secs, tuning_calls, tuning_secs, coverage })
}

/// Evaluates several independent methods concurrently (one pool task per
/// method), returning per-method outcomes in method order — a failed
/// method occupies its own `Err` slot instead of aborting the figure.
///
/// Each evaluation builds its own [`WhatIfOptimizer`], so methods share
/// nothing but the read-only context. Use this for quality-comparison
/// figures only: concurrent methods contend for cores, so the per-method
/// wall-clock fields of [`MethodEval`] are *not* comparable across
/// methods here — timing figures (e.g. Fig 13 scalability) must keep
/// calling [`evaluate_method`] sequentially.
///
/// When a checkpoint run is active (see [`crate::checkpoint`]), each
/// method×context cell is recorded after it completes and replayed on
/// `--resume` instead of recomputed.
pub fn evaluate_methods(
    methods: &[Box<dyn Compressor>],
    ctx: &ExperimentCtx,
    k: usize,
    advisor: &(dyn IndexAdvisor + Sync),
    constraints: &TuningConstraints,
) -> Vec<IsumResult<MethodEval>> {
    isum_exec::par_map_indexed(methods, |i, m| {
        let key = cell_key(ctx, i, &m.name(), k, advisor.name(), constraints);
        checkpoint::cell(&key, || evaluate_method(m.as_ref(), ctx, k, advisor, constraints))
    })
}

/// Checkpoint key for one method×context cell. Includes the workload's
/// size and total-cost bit pattern (which discriminate seeds and scaling
/// variants sharing a display name) plus the method's position and name,
/// `k`, the advisor, and the tuning constraints — everything the cell's
/// value depends on. Deterministic across runs and thread counts.
fn cell_key(
    ctx: &ExperimentCtx,
    method_index: usize,
    method_name: &str,
    k: usize,
    advisor_name: &str,
    constraints: &TuningConstraints,
) -> String {
    let budget = match constraints.storage_budget_bytes {
        Some(b) => format!("b{b}"),
        None => "b-".to_string(),
    };
    format!(
        "{}|n{}|c{:016x}|m{method_index}:{method_name}|k{k}|{advisor_name}|x{}|{budget}",
        ctx.name,
        ctx.workload.len(),
        ctx.workload.total_cost().to_bits(),
        constraints.max_indexes,
    )
}

/// Renders one evaluation outcome as an improvement-percent table cell;
/// a failed cell is reported (`harness.cells_skipped`) and rendered `-`.
pub fn improvement_cell(eval: &IsumResult<MethodEval>) -> String {
    match eval {
        Ok(e) => crate::report::f1(e.improvement_pct),
        Err(e) => {
            count!("harness.cells_skipped");
            isum_common::warn!("harness", format!("cell skipped: {e}"));
            "-".to_string()
        }
    }
}

/// Renders one evaluation outcome as a coverage table cell (three decimal
/// places — coverage lives in `[0, 1]`); a failed cell renders `-`
/// without re-counting the skip ([`improvement_cell`] already did).
pub fn coverage_cell(eval: &IsumResult<MethodEval>) -> String {
    match eval {
        Ok(e) => format!("{:.3}", e.coverage),
        Err(_) => "-".to_string(),
    }
}

/// The standard comparison set of Sec 8.1: Uniform, Cost, Stratified,
/// GSUM, ISUM, ISUM-S.
pub fn standard_methods(seed: u64) -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(UniformSampling::new(seed)),
        Box::new(CostTopK),
        Box::new(Stratified::new(seed)),
        Box::new(Gsum::new()),
        Box::new(Isum::new()),
        Box::new(Isum::with_config(IsumConfig::isum_s())),
    ]
}

/// The scalability comparison set of Fig 11: all-pairs, k-medoid, summary
/// features.
pub fn fig11_methods(seed: u64) -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(Isum::with_config(IsumConfig::all_pairs())),
        Box::new(KMedoid::new(seed)),
        Box::new(Isum::new()),
    ]
}

/// Default DTA advisor.
pub fn dta() -> DtaAdvisor {
    DtaAdvisor::new()
}

/// Folds the current telemetry registry into the per-run JSON report.
///
/// Schema (see README.md § Observability):
///
/// ```json
/// {
///   "run": "<id>",
///   "phases": {"featurize_ns": 0, "weight_ns": 0,
///              "select_ns": 0, "incremental_ns": 0},
///   "whatif": {"calls": 0, "cache_hits": 0, "cache_hit_rate": 0.0},
///   "telemetry": { ...full snapshot (counters/gauges/histograms/spans)... }
/// }
/// ```
///
/// The four phase keys are always present — zero when that phase never
/// ran — so downstream consumers can rely on the shape. Phase totals
/// aggregate the matching span *leaf* across every nesting (`compress/
/// isum/featurize` and a bare `featurize` both count).
pub fn telemetry_report(run: &str) -> Json {
    let snap = telemetry::snapshot();
    let calls = snap.counter("optimizer.whatif.calls").unwrap_or(0);
    let hits = snap.counter("optimizer.whatif.cache_hits").unwrap_or(0);
    let lookups = calls + hits;
    let hit_rate = if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 };
    Json::Obj(vec![
        ("run".into(), Json::from(run)),
        (
            "phases".into(),
            Json::Obj(
                [
                    ("featurize_ns", "featurize"),
                    ("weight_ns", "weight"),
                    ("select_ns", "select"),
                    ("incremental_ns", "incremental"),
                ]
                .into_iter()
                .map(|(key, leaf)| (key.to_string(), Json::from(snap.leaf_total_ns(leaf))))
                .collect(),
            ),
        ),
        (
            "whatif".into(),
            Json::Obj(vec![
                ("calls".into(), Json::from(calls)),
                ("cache_hits".into(), Json::from(hits)),
                ("cache_hit_rate".into(), Json::Num(hit_rate)),
            ]),
        ),
        ("telemetry".into(), snap.to_json()),
    ])
}

/// Writes [`telemetry_report`] to `<dir>/telemetry_<run>.json` and returns
/// the path.
///
/// # Errors
/// Propagates IO errors.
pub fn write_telemetry_report(run: &str, dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("telemetry_{run}.json"));
    std::fs::write(&path, telemetry_report(run).to_pretty())?;
    Ok(path)
}

/// Compressed-size sweep `{2, 4, ..., 2√n}` used across Fig 9a/12/15.
pub fn k_sweep(n: usize) -> Vec<usize> {
    let max = (2.0 * (n as f64).sqrt()).ceil() as usize;
    let mut ks = Vec::new();
    let mut k = 2usize;
    while k < max {
        ks.push(k);
        k *= 2;
    }
    ks.push(max.max(2));
    ks.dedup();
    ks
}

/// The paper's `0.5√n` default compressed size (Fig 9b, Fig 10).
pub fn half_sqrt_n(n: usize) -> usize {
    ((n as f64).sqrt() * 0.5).round().max(2.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_sweep_is_increasing_and_capped() {
        let ks = k_sweep(100);
        assert_eq!(*ks.last().unwrap(), 20);
        assert!(ks.windows(2).all(|w| w[0] < w[1]));
        assert!(ks[0] == 2);
    }

    #[test]
    fn half_sqrt_n_floor() {
        assert_eq!(half_sqrt_n(4), 2);
        assert_eq!(half_sqrt_n(400), 10);
    }

    #[test]
    fn quick_ctx_prepares_costs() {
        let scale = Scale::quick();
        let ctx = ExperimentCtx::tpch(&scale, 1).expect("tpch binds");
        assert!(ctx.workload.total_cost() > 0.0);
        assert_eq!(ctx.workload.len(), scale.tpch);
    }

    #[test]
    fn evaluate_method_end_to_end() {
        let scale = Scale::quick();
        let ctx = ExperimentCtx::tpch(&scale, 1).expect("tpch binds");
        let isum = Isum::new();
        let eval = evaluate_method(&isum, &ctx, 6, &dta(), &TuningConstraints::with_max_indexes(8))
            .expect("valid inputs evaluate");
        assert!(eval.improvement_pct >= 0.0 && eval.improvement_pct <= 100.0);
        assert!(eval.tuning_calls > 0);
    }

    #[test]
    fn evaluate_method_reports_errors_instead_of_panicking() {
        let scale = Scale::quick();
        let ctx = ExperimentCtx::tpch(&scale, 1).expect("tpch binds");
        let isum = Isum::new();
        // k = 0 is an invalid configuration: the old harness panicked
        // here; now it is a typed, skippable error.
        let err = evaluate_method(&isum, &ctx, 0, &dta(), &TuningConstraints::with_max_indexes(8))
            .expect_err("k = 0 must fail");
        assert!(!err.is_transient());
        assert_eq!(improvement_cell(&Err(err)), "-");
    }

    #[test]
    fn cell_keys_discriminate_every_input() {
        let scale = Scale::quick();
        let ctx = ExperimentCtx::tpch(&scale, 1).expect("tpch binds");
        let other = ExperimentCtx::tpch(&scale, 2).expect("tpch binds");
        let c16 = TuningConstraints::with_max_indexes(16);
        let base = super::cell_key(&ctx, 0, "ISUM", 8, "DTA", &c16);
        for (key, want_ne) in [
            (super::cell_key(&ctx, 0, "ISUM", 8, "DTA", &c16), false),
            (super::cell_key(&other, 0, "ISUM", 8, "DTA", &c16), true),
            (super::cell_key(&ctx, 1, "ISUM", 8, "DTA", &c16), true),
            (super::cell_key(&ctx, 0, "GSUM", 8, "DTA", &c16), true),
            (super::cell_key(&ctx, 0, "ISUM", 9, "DTA", &c16), true),
            (super::cell_key(&ctx, 0, "ISUM", 8, "Dexter", &c16), true),
            (
                super::cell_key(&ctx, 0, "ISUM", 8, "DTA", &TuningConstraints::with_budget(16, 9)),
                true,
            ),
        ] {
            assert_eq!(key != base, want_ne, "{key} vs {base}");
        }
    }

    #[test]
    fn standard_methods_have_unique_names() {
        let ms = standard_methods(1);
        let names: Vec<String> = ms.iter().map(|m| m.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "{names:?}");
        assert_eq!(names.len(), 6);
    }
}
