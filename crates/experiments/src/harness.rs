//! Shared experiment pipeline: build workload → compress → tune → evaluate.
//!
//! Phase accounting runs through [`isum_common::telemetry`]: the pipeline
//! opens spans (`prepare`, `compress`, `tune`, `evaluate`) around each
//! stage, the layers below contribute their own nested spans and counters,
//! and [`telemetry_report`] folds the whole registry into one JSON document
//! per run.

use std::path::{Path, PathBuf};
use std::time::Instant;

use isum_advisor::{DtaAdvisor, IndexAdvisor, TuningConstraints};
use isum_baselines::{CostTopK, Gsum, KMedoid, Stratified, UniformSampling};
use isum_common::telemetry;
use isum_common::Json;
use isum_core::{Compressor, Isum, IsumConfig};
use isum_optimizer::WhatIfOptimizer;
use isum_workload::gen::{dsb_workload, realm_workload_sized, tpcds_workload, tpch_workload};
use isum_workload::Workload;

/// Workload sizes for the evaluation, selectable via `ISUM_SCALE`.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// TPC-H query count (paper: 2200).
    pub tpch: usize,
    /// TPC-DS query count (paper: 9100).
    pub tpcds: usize,
    /// DSB query count (paper: 520).
    pub dsb: usize,
    /// Real-M query count (paper: 473).
    pub realm: usize,
    /// Scale factor for the benchmark catalogs.
    pub sf: u64,
}

impl Scale {
    /// Fast sizes for CI / smoke runs.
    pub fn quick() -> Self {
        Self { tpch: 66, tpcds: 91, dsb: 52, realm: 100, sf: 1 }
    }

    /// Default sizes: every template instantiated multiple times, runs in
    /// minutes on a laptop.
    pub fn medium() -> Self {
        Self { tpch: 220, tpcds: 273, dsb: 156, realm: 473, sf: 10 }
    }

    /// Large sizes: DSB and Real-M at the paper's Table 2 sizes; TPC-H and
    /// TPC-DS at 50%/10% of theirs (their full sizes exist mainly to stress
    /// the commercial tuner; see EXPERIMENTS.md).
    pub fn large() -> Self {
        Self { tpch: 1100, tpcds: 910, dsb: 520, realm: 473, sf: 10 }
    }

    /// The paper's Table 2 sizes (slow).
    pub fn paper() -> Self {
        Self { tpch: 2200, tpcds: 9100, dsb: 520, realm: 473, sf: 10 }
    }

    /// Reads `ISUM_SCALE` (`quick` / `medium` / `paper`), defaulting to
    /// medium.
    pub fn from_env() -> Self {
        match std::env::var("ISUM_SCALE").as_deref() {
            Ok("quick") => Self::quick(),
            Ok("large") => Self::large(),
            Ok("paper") => Self::paper(),
            _ => Self::medium(),
        }
    }
}

/// A prepared workload: queries with populated costs.
#[derive(Debug)]
pub struct ExperimentCtx {
    /// Workload with `C(q)` filled in.
    pub workload: Workload,
    /// Display name (e.g. `TPC-H`).
    pub name: &'static str,
}

impl ExperimentCtx {
    /// Wraps a generated workload, populating costs.
    pub fn prepare(name: &'static str, mut workload: Workload) -> Self {
        let _s = telemetry::span("prepare");
        let costs: Vec<f64> = {
            let opt = WhatIfOptimizer::new(&workload.catalog);
            let empty = isum_optimizer::IndexConfig::empty();
            isum_exec::par_map(&workload.queries, |q| opt.cost_bound(&q.bound, &empty))
        };
        workload.set_costs(&costs);
        Self { workload, name }
    }

    /// TPC-H context.
    pub fn tpch(scale: &Scale, seed: u64) -> Self {
        Self::prepare(
            "TPC-H",
            tpch_workload(scale.sf, scale.tpch, seed).expect("tpch templates bind"),
        )
    }

    /// TPC-DS context.
    pub fn tpcds(scale: &Scale, seed: u64) -> Self {
        Self::prepare(
            "TPC-DS",
            tpcds_workload(scale.sf, scale.tpcds, seed).expect("tpcds templates bind"),
        )
    }

    /// DSB context.
    pub fn dsb(scale: &Scale, seed: u64) -> Self {
        Self::prepare("DSB", dsb_workload(scale.sf, scale.dsb, seed).expect("dsb templates bind"))
    }

    /// Real-M context.
    pub fn realm(scale: &Scale, seed: u64) -> Self {
        Self::prepare(
            "Real-M",
            realm_workload_sized(scale.realm, seed).expect("realm templates bind"),
        )
    }

    /// Fresh what-if optimizer over this context's catalog.
    pub fn optimizer(&self) -> WhatIfOptimizer<'_> {
        WhatIfOptimizer::new(&self.workload.catalog)
    }
}

/// Outcome of compressing with one method and tuning the result.
#[derive(Debug, Clone, Copy)]
pub struct MethodEval {
    /// Improvement (%) over the full workload.
    pub improvement_pct: f64,
    /// Wall-clock seconds spent inside the compressor.
    pub compression_secs: f64,
    /// Optimizer calls made while tuning the compressed workload.
    pub tuning_calls: u64,
    /// Wall-clock seconds spent tuning.
    pub tuning_secs: f64,
}

/// Compresses with `method`, tunes the result with `advisor`, and measures
/// the improvement over the entire workload.
pub fn evaluate_method(
    method: &dyn Compressor,
    ctx: &ExperimentCtx,
    k: usize,
    advisor: &dyn IndexAdvisor,
    constraints: &TuningConstraints,
) -> MethodEval {
    // Spans carry the phase breakdown into the telemetry registry; the
    // Instant reads feed the `MethodEval` the caller renders into result
    // tables, which must work with telemetry off.
    let t0 = Instant::now();
    let cw = {
        let _s = telemetry::span("compress");
        method.compress(&ctx.workload, k).expect("valid compression inputs")
    };
    let compression_secs = t0.elapsed().as_secs_f64();
    let opt = ctx.optimizer();
    let t1 = Instant::now();
    let cfg = advisor.recommend(&opt, &ctx.workload, &cw, constraints);
    let tuning_secs = t1.elapsed().as_secs_f64();
    let tuning_calls = opt.optimizer_calls();
    let improvement_pct = {
        let _e = telemetry::span("evaluate");
        opt.improvement_pct(&ctx.workload, &cfg)
    };
    MethodEval { improvement_pct, compression_secs, tuning_calls, tuning_secs }
}

/// Evaluates several independent methods concurrently (one pool task per
/// method), returning results in method order.
///
/// Each evaluation builds its own [`WhatIfOptimizer`], so methods share
/// nothing but the read-only context. Use this for quality-comparison
/// figures only: concurrent methods contend for cores, so the per-method
/// wall-clock fields of [`MethodEval`] are *not* comparable across
/// methods here — timing figures (e.g. Fig 13 scalability) must keep
/// calling [`evaluate_method`] sequentially.
pub fn evaluate_methods(
    methods: &[Box<dyn Compressor>],
    ctx: &ExperimentCtx,
    k: usize,
    advisor: &(dyn IndexAdvisor + Sync),
    constraints: &TuningConstraints,
) -> Vec<MethodEval> {
    isum_exec::par_map(methods, |m| evaluate_method(m.as_ref(), ctx, k, advisor, constraints))
}

/// The standard comparison set of Sec 8.1: Uniform, Cost, Stratified,
/// GSUM, ISUM, ISUM-S.
pub fn standard_methods(seed: u64) -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(UniformSampling::new(seed)),
        Box::new(CostTopK),
        Box::new(Stratified::new(seed)),
        Box::new(Gsum::new()),
        Box::new(Isum::new()),
        Box::new(Isum::with_config(IsumConfig::isum_s())),
    ]
}

/// The scalability comparison set of Fig 11: all-pairs, k-medoid, summary
/// features.
pub fn fig11_methods(seed: u64) -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(Isum::with_config(IsumConfig::all_pairs())),
        Box::new(KMedoid::new(seed)),
        Box::new(Isum::new()),
    ]
}

/// Default DTA advisor.
pub fn dta() -> DtaAdvisor {
    DtaAdvisor::new()
}

/// Folds the current telemetry registry into the per-run JSON report.
///
/// Schema (see README.md § Observability):
///
/// ```json
/// {
///   "run": "<id>",
///   "phases": {"featurize_ns": 0, "weight_ns": 0,
///              "select_ns": 0, "incremental_ns": 0},
///   "whatif": {"calls": 0, "cache_hits": 0, "cache_hit_rate": 0.0},
///   "telemetry": { ...full snapshot (counters/gauges/histograms/spans)... }
/// }
/// ```
///
/// The four phase keys are always present — zero when that phase never
/// ran — so downstream consumers can rely on the shape. Phase totals
/// aggregate the matching span *leaf* across every nesting (`compress/
/// isum/featurize` and a bare `featurize` both count).
pub fn telemetry_report(run: &str) -> Json {
    let snap = telemetry::snapshot();
    let calls = snap.counter("optimizer.whatif.calls").unwrap_or(0);
    let hits = snap.counter("optimizer.whatif.cache_hits").unwrap_or(0);
    let lookups = calls + hits;
    let hit_rate = if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 };
    Json::Obj(vec![
        ("run".into(), Json::from(run)),
        (
            "phases".into(),
            Json::Obj(
                [
                    ("featurize_ns", "featurize"),
                    ("weight_ns", "weight"),
                    ("select_ns", "select"),
                    ("incremental_ns", "incremental"),
                ]
                .into_iter()
                .map(|(key, leaf)| (key.to_string(), Json::from(snap.leaf_total_ns(leaf))))
                .collect(),
            ),
        ),
        (
            "whatif".into(),
            Json::Obj(vec![
                ("calls".into(), Json::from(calls)),
                ("cache_hits".into(), Json::from(hits)),
                ("cache_hit_rate".into(), Json::Num(hit_rate)),
            ]),
        ),
        ("telemetry".into(), snap.to_json()),
    ])
}

/// Writes [`telemetry_report`] to `<dir>/telemetry_<run>.json` and returns
/// the path.
///
/// # Errors
/// Propagates IO errors.
pub fn write_telemetry_report(run: &str, dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("telemetry_{run}.json"));
    std::fs::write(&path, telemetry_report(run).to_pretty())?;
    Ok(path)
}

/// Compressed-size sweep `{2, 4, ..., 2√n}` used across Fig 9a/12/15.
pub fn k_sweep(n: usize) -> Vec<usize> {
    let max = (2.0 * (n as f64).sqrt()).ceil() as usize;
    let mut ks = Vec::new();
    let mut k = 2usize;
    while k < max {
        ks.push(k);
        k *= 2;
    }
    ks.push(max.max(2));
    ks.dedup();
    ks
}

/// The paper's `0.5√n` default compressed size (Fig 9b, Fig 10).
pub fn half_sqrt_n(n: usize) -> usize {
    ((n as f64).sqrt() * 0.5).round().max(2.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_sweep_is_increasing_and_capped() {
        let ks = k_sweep(100);
        assert_eq!(*ks.last().unwrap(), 20);
        assert!(ks.windows(2).all(|w| w[0] < w[1]));
        assert!(ks[0] == 2);
    }

    #[test]
    fn half_sqrt_n_floor() {
        assert_eq!(half_sqrt_n(4), 2);
        assert_eq!(half_sqrt_n(400), 10);
    }

    #[test]
    fn quick_ctx_prepares_costs() {
        let scale = Scale::quick();
        let ctx = ExperimentCtx::tpch(&scale, 1);
        assert!(ctx.workload.total_cost() > 0.0);
        assert_eq!(ctx.workload.len(), scale.tpch);
    }

    #[test]
    fn evaluate_method_end_to_end() {
        let scale = Scale::quick();
        let ctx = ExperimentCtx::tpch(&scale, 1);
        let isum = Isum::new();
        let eval = evaluate_method(&isum, &ctx, 6, &dta(), &TuningConstraints::with_max_indexes(8));
        assert!(eval.improvement_pct >= 0.0 && eval.improvement_pct <= 100.0);
        assert!(eval.tuning_calls > 0);
    }

    #[test]
    fn standard_methods_have_unique_names() {
        let ms = standard_methods(1);
        let names: Vec<String> = ms.iter().map(|m| m.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "{names:?}");
        assert_eq!(names.len(), 6);
    }
}
