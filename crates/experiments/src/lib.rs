//! Experiment harness regenerating every figure and table of the ISUM
//! paper's evaluation (Sec 2 motivation figures and Sec 8).
//!
//! Run via `cargo run -p isum-experiments --release -- <id>` where `<id>` is
//! one of `fig2 fig3 fig5 fig6 fig7 fig8 fig9a fig9b fig10 fig11 fig12
//! fig13 fig14 fig15 table3 all`. Results are printed as aligned tables and
//! saved under `results/` as CSV and JSON. The `ISUM_SCALE` environment
//! variable selects workload sizes: `quick`, `medium` (default), or
//! `paper` (Table 2 sizes — slow).

pub mod checkpoint;
pub mod figs;
pub mod harness;
pub mod report;

pub use harness::{ExperimentCtx, MethodEval, Scale};
pub use report::Table;
