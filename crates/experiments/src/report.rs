//! Result tables: aligned stdout rendering plus CSV/JSON persistence.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use isum_common::Json;

/// A result table corresponding to one paper artifact (or panel thereof).
#[derive(Debug, Clone)]
pub struct Table {
    /// Identifier, e.g. `fig9a_tpch`.
    pub id: String,
    /// Human title, e.g. `Fig 9a (TPC-H): improvement vs compressed size`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch in {}", self.id);
        self.rows.push(cells);
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Converts the table to a JSON object mirroring its field layout.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".into(), Json::from(self.id.as_str())),
            ("title".into(), Json::from(self.title.as_str())),
            (
                "headers".into(),
                Json::Arr(self.headers.iter().map(|h| Json::from(h.as_str())).collect()),
            ),
            (
                "rows".into(),
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| Json::Arr(r.iter().map(|c| Json::from(c.as_str())).collect()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Saves as `results/<id>.csv`.
    ///
    /// # Errors
    /// Propagates IO errors.
    pub fn save_csv(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut f = fs::File::create(dir.join(format!("{}.csv", self.id)))?;
        writeln!(f, "{}", self.headers.join(","))?;
        for r in &self.rows {
            writeln!(f, "{}", r.join(","))?;
        }
        Ok(())
    }
}

/// Saves a batch of tables (CSV each + one combined JSON) and prints them.
///
/// # Errors
/// Propagates IO errors.
pub fn emit(tables: &[Table], dir: &Path) -> std::io::Result<()> {
    for t in tables {
        t.print();
        t.save_csv(dir)?;
    }
    if let Some(first) = tables.first() {
        let json = Json::Arr(tables.iter().map(Table::to_json).collect()).to_pretty();
        let stem: String = first.id.split('_').next().unwrap_or(&first.id).to_string();
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{stem}.json")), json)?;
    }
    Ok(())
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("t1", "Test", &["k", "value"]);
        t.row(vec!["2".into(), "10.5".into()]);
        t.row(vec!["16".into(), "7.25".into()]);
        let s = t.render();
        assert!(s.contains("Test"));
        assert!(s.contains(" k  value"));
        assert!(s.lines().last().unwrap().contains("16"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("t", "T", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("isum_report_test");
        let mut t = Table::new("unit_csv", "T", &["a", "b"]);
        t.row(vec!["1".into(), "x".into()]);
        t.save_csv(&dir).unwrap();
        let body = std::fs::read_to_string(dir.join("unit_csv.csv")).unwrap();
        assert_eq!(body, "a,b\n1,x\n");
    }

    #[test]
    fn json_roundtrip() {
        let mut t = Table::new("unit_json", "T", &["a", "b"]);
        t.row(vec!["1".into(), "x".into()]);
        let text = t.to_json().to_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("id").and_then(Json::as_str), Some("unit_json"));
        let rows = back.get("rows").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].as_array().unwrap()[1].as_str(), Some("x"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f1(12.3456), "12.3");
        assert_eq!(f2(12.3456), "12.35");
        assert_eq!(f3(0.98765), "0.988");
    }
}
