//! Crash-safe resume contract: cells recorded in the checkpoint file are
//! replayed bit-identically by a `--resume` run, and only missing cells
//! are recomputed. Single `#[test]`: the checkpoint store (and the
//! telemetry registry it reports through) is process-global.

use isum_advisor::TuningConstraints;
use isum_common::telemetry;
use isum_experiments::checkpoint;
use isum_experiments::harness::{dta, evaluate_methods, standard_methods};
use isum_experiments::{ExperimentCtx, Scale};

#[test]
fn resumed_run_replays_recorded_cells_bit_identically() {
    let dir = std::env::temp_dir().join(format!("isum_ckpt_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    telemetry::set_enabled(true);
    telemetry::reset();

    let ctx = ExperimentCtx::tpch(&Scale::quick(), 42).expect("tpch binds");
    let methods = standard_methods(42);
    let constraints = TuningConstraints::with_max_indexes(8);

    // First (uninterrupted) run: every cell computes and is persisted.
    let loaded = checkpoint::begin("ckpt_test", &dir, false).expect("begin");
    assert_eq!(loaded, 0);
    let first = evaluate_methods(&methods, &ctx, 6, &dta(), &constraints);
    checkpoint::finish();
    let path = dir.join("checkpoint_ckpt_test.json");
    assert!(path.exists(), "checkpoint file persists after finish()");
    let snap = telemetry::snapshot();
    assert_eq!(snap.counter("harness.checkpoint.cells"), Some(methods.len() as u64));
    assert_eq!(snap.counter("harness.checkpoint.hits").unwrap_or(0), 0);

    // Resume: all cells replay from the file — bit-identical — with zero
    // recomputation (checkpoint.cells does not grow).
    telemetry::reset();
    let loaded = checkpoint::begin("ckpt_test", &dir, true).expect("begin resume");
    assert_eq!(loaded, methods.len());
    let second = evaluate_methods(&methods, &ctx, 6, &dta(), &constraints);
    checkpoint::finish();
    let snap = telemetry::snapshot();
    assert_eq!(snap.counter("harness.checkpoint.hits"), Some(methods.len() as u64));
    assert_eq!(snap.counter("harness.checkpoint.cells").unwrap_or(0), 0, "nothing recomputed");
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(&second) {
        let (a, b) = (a.as_ref().expect("fault-free eval"), b.as_ref().expect("fault-free eval"));
        assert_eq!(a.improvement_pct.to_bits(), b.improvement_pct.to_bits());
        assert_eq!(a.compression_secs.to_bits(), b.compression_secs.to_bits());
        assert_eq!(a.tuning_calls, b.tuning_calls);
        assert_eq!(a.tuning_secs.to_bits(), b.tuning_secs.to_bits());
        assert_eq!(a.coverage.to_bits(), b.coverage.to_bits());
    }

    // Partial resume — the killed-mid-run shape: a checkpoint holding one
    // cell replays it (closure must not run) and computes the rest.
    checkpoint::begin("ckpt_partial", &dir, false).expect("begin partial");
    let recorded = checkpoint::cell("cell_a", || {
        Ok(isum_experiments::MethodEval {
            improvement_pct: 12.5,
            compression_secs: 0.25,
            tuning_calls: 77,
            tuning_secs: 1.5,
            coverage: 0.875,
        })
    });
    checkpoint::finish();
    checkpoint::begin("ckpt_partial", &dir, true).expect("resume partial");
    let replayed = checkpoint::cell("cell_a", || panic!("recorded cell must not recompute"));
    assert_eq!(
        replayed.expect("replays").improvement_pct.to_bits(),
        recorded.expect("records").improvement_pct.to_bits()
    );
    let fresh = checkpoint::cell("cell_b", || {
        Ok(isum_experiments::MethodEval {
            improvement_pct: 1.0,
            compression_secs: 0.0,
            tuning_calls: 1,
            tuning_secs: 0.0,
            coverage: 1.0,
        })
    });
    assert!(fresh.is_ok(), "missing cell computes on resume");
    checkpoint::finish();

    telemetry::set_enabled(false);
    std::fs::remove_dir_all(&dir).ok();
}
