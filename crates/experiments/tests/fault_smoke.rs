//! Fault-injection smoke: with the global injector active, the full
//! harness pipeline — ingestion, compression, tuning, evaluation — must
//! complete with typed outcomes (no panic escapes), report its injected
//! faults through telemetry, and stay bit-identical across thread counts.
//!
//! Single `#[test]`: the fault injector, the telemetry registry, and the
//! exec pool are process-global.

use isum_advisor::TuningConstraints;
use isum_common::telemetry;
use isum_experiments::harness::{dta, evaluate_methods, standard_methods};
use isum_experiments::{ExperimentCtx, Scale};

const SPEC: &str = "whatif_transient:0.2,parse:0.05,panic:0.1,seed:7";

fn run_once(threads: usize) -> (usize, Vec<u64>) {
    isum_exec::set_global_threads(threads);
    let ctx = ExperimentCtx::tpch(&Scale::quick(), 9).expect("tpch binds");
    let methods = standard_methods(9);
    let constraints = TuningConstraints::with_max_indexes(8);
    let evals = evaluate_methods(&methods, &ctx, 6, &dta(), &constraints);
    assert_eq!(evals.len(), methods.len(), "every method reports an outcome");
    let improvements: Vec<u64> = evals
        .into_iter()
        .map(|e| e.expect("faulted run still evaluates").improvement_pct.to_bits())
        .collect();
    (ctx.workload.len(), improvements)
}

#[test]
fn faulted_pipeline_completes_and_is_thread_count_invariant() {
    telemetry::set_enabled(true);
    telemetry::reset();
    isum_faults::set_global_spec(SPEC).expect("valid spec");

    let (n1, imp1) = run_once(1);
    let full = Scale::quick().tpch;
    assert!(n1 < full, "spec drops some queries ({n1} of {full} survive)");
    assert!(n1 > full / 2, "most queries survive ({n1} of {full})");

    let snap = telemetry::snapshot();
    let injected = snap.counter("faults.injected").unwrap_or(0);
    let quarantined = snap.counter("faults.quarantined").unwrap_or(0);
    assert!(injected > 0, "what-if/parse/panic faults fired");
    assert!(quarantined > 0, "panic faults were quarantined by the pool");
    assert!(snap.counter("optimizer.whatif.retries").unwrap_or(0) > 0, "transients retried");

    // Same spec, more threads: identical survivors, bit-identical results.
    let (n8, imp8) = run_once(8);
    assert_eq!(n1, n8, "fault decisions are independent of thread count");
    assert_eq!(imp1, imp8, "bit-identical improvements across thread counts");

    // Deactivating restores the fault-free pipeline.
    isum_faults::set_global_spec("").expect("empty spec deactivates");
    let (n_clean, _) = run_once(1);
    assert_eq!(n_clean, full, "no drops without faults");
    telemetry::set_enabled(false);
}
