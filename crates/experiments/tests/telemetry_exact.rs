//! Telemetry ground-truth test: the global `optimizer.whatif.calls`
//! counter must match the optimizer's own per-instance call counter
//! *exactly* — not approximately — across a full compress → tune →
//! evaluate pipeline.
//!
//! Lives in its own integration-test binary: the counters and the enabled
//! flag are process-global, so any concurrently running instrumented test
//! would perturb the equality. Keep this file to a single `#[test]`.

use isum_advisor::{IndexAdvisor, TuningConstraints};
use isum_common::telemetry;
use isum_core::{Compressor, Isum};
use isum_experiments::harness::{dta, telemetry_report, write_telemetry_report};
use isum_experiments::{ExperimentCtx, Scale};

#[test]
fn whatif_call_counter_matches_optimizer_exactly() {
    // Prepare the workload BEFORE enabling telemetry: prepare() runs its
    // own throwaway optimizer whose calls would otherwise land in the
    // global counter but not in `opt` below.
    let ctx = ExperimentCtx::tpch(&Scale::quick(), 1).expect("tpch binds");
    telemetry::set_enabled(true);
    telemetry::reset();

    let opt = ctx.optimizer();
    let cw = Isum::new().compress(&ctx.workload, 6).expect("quick workload compresses");
    let cfg = dta().recommend(&opt, &ctx.workload, &cw, &TuningConstraints::with_max_indexes(4));
    let _ = opt.improvement_pct(&ctx.workload, &cfg);

    let snap = telemetry::snapshot();
    assert_eq!(
        snap.counter("optimizer.whatif.calls"),
        Some(opt.optimizer_calls()),
        "global counter must equal WhatIfOptimizer::optimizer_calls() exactly"
    );
    assert_eq!(
        snap.counter("optimizer.whatif.cache_hits"),
        Some(opt.cache_hits()),
        "global cache-hit counter must match the instance"
    );

    // The per-run report reflects the same ground truth and always carries
    // the four phase keys.
    let report = telemetry_report("exact");
    let text = report.to_pretty();
    let parsed = isum_common::Json::parse(&text).expect("report JSON reparses");
    let Some(whatif) = parsed.get("whatif") else { panic!("report lacks whatif: {text}") };
    assert_eq!(
        whatif.get("calls").and_then(isum_common::Json::as_f64),
        Some(opt.optimizer_calls() as f64)
    );
    let Some(phases) = parsed.get("phases") else { panic!("report lacks phases: {text}") };
    for key in ["featurize_ns", "weight_ns", "select_ns", "incremental_ns"] {
        assert!(phases.get(key).is_some(), "phase key {key} missing: {text}");
    }
    // ISUM ran, so featurization and selection spans must carry time; the
    // incremental algorithm did not run, so its key is present but zero.
    let ns = |k: &str| phases.get(k).and_then(isum_common::Json::as_f64).unwrap();
    assert!(ns("featurize_ns") > 0.0, "featurize span recorded");
    assert!(ns("select_ns") > 0.0, "select span recorded");
    assert_eq!(ns("incremental_ns"), 0.0, "incremental never ran");

    // write_telemetry_report lands the same document on disk, parseable.
    let dir = std::env::temp_dir().join(format!("isum_telemetry_test_{}", std::process::id()));
    let path = write_telemetry_report("exact", &dir).expect("report writes");
    let on_disk = std::fs::read_to_string(&path).expect("report readable");
    isum_common::Json::parse(&on_disk).expect("on-disk report reparses");
    std::fs::remove_dir_all(&dir).ok();

    telemetry::set_enabled(false);
}
