//! The deterministic fault injector.
//!
//! Injection decisions are pure functions of `(seed, kind, site key,
//! attempt)`: the tuple is hashed through a SplitMix64-style finalizer and
//! the top 53 bits are compared against the configured rate as a uniform
//! draw in `[0, 1)`. Because no state is consulted, two threads asking
//! about the same site get the same answer, and re-running a workload
//! replays exactly the same faults — the property the determinism tests
//! pin.

use crate::spec::FaultSpec;
use isum_common::{count, Result};
use std::time::Duration;

/// The injectable fault kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Retryable what-if costing failure.
    WhatIfTransient,
    /// Non-retryable what-if costing failure.
    WhatIfPermanent,
    /// What-if latency spike of `latency_ms` milliseconds.
    Latency,
    /// Per-query parse failure at ingestion.
    Parse,
    /// Worker panic during ingestion costing.
    Panic,
    /// Transient ingest-batch failure in the serving daemon.
    Ingest,
    /// Torn write-ahead-log append in the serving daemon: the record is
    /// truncated at a seeded offset as if the process died mid-write.
    WalTorn,
}

impl FaultKind {
    /// Stable name used in spec text and telemetry counters.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::WhatIfTransient => "whatif_transient",
            FaultKind::WhatIfPermanent => "whatif_permanent",
            FaultKind::Latency => "latency",
            FaultKind::Parse => "parse",
            FaultKind::Panic => "panic",
            FaultKind::Ingest => "ingest",
            FaultKind::WalTorn => "wal_torn",
        }
    }

    /// Per-kind salt so the same site key draws independently per kind.
    fn salt(self) -> u64 {
        match self {
            FaultKind::WhatIfTransient => 0x7472_616e_7369_656e,
            FaultKind::WhatIfPermanent => 0x7065_726d_616e_656e,
            FaultKind::Latency => 0x6c61_7465_6e63_7921,
            FaultKind::Parse => 0x7061_7273_6566_6c74,
            FaultKind::Panic => 0x7061_6e69_6366_6c74,
            FaultKind::Ingest => 0x696e_6765_7374_666c,
            FaultKind::WalTorn => 0x7761_6c74_6f72_6e21,
        }
    }
}

/// Outcome of a what-if costing injection roll ([`FaultInjector::whatif_fault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WhatIfFault {
    /// The call fails; retrying cannot help.
    Permanent,
    /// The call fails; a retry draws a fresh decision.
    Transient,
    /// The call succeeds after the given delay (may trip a timeout).
    Latency(Duration),
}

/// Deterministic fault injector; see the module docs for the decision
/// function. Cheap to share (`Arc`) and lock-free to query.
#[derive(Debug)]
pub struct FaultInjector {
    spec: FaultSpec,
    active: bool,
}

impl FaultInjector {
    /// An injector that never fires. [`FaultInjector::is_active`] is
    /// `false`, letting hot paths skip injection checks entirely.
    pub fn disabled() -> Self {
        Self::new(FaultSpec::none())
    }

    /// Builds an injector from a parsed spec.
    pub fn new(spec: FaultSpec) -> Self {
        Self { active: spec.is_active(), spec }
    }

    /// Parses the textual grammar (crate docs) and builds an injector.
    pub fn from_spec(text: &str) -> Result<Self> {
        Ok(Self::new(FaultSpec::parse(text)?))
    }

    /// True when at least one fault kind can fire. Callers use this to
    /// keep the zero-fault hot path identical to a build without
    /// injection.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The configured spec.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::WhatIfTransient => self.spec.whatif_transient,
            FaultKind::WhatIfPermanent => self.spec.whatif_permanent,
            FaultKind::Latency => self.spec.latency,
            FaultKind::Parse => self.spec.parse,
            FaultKind::Panic => self.spec.panic,
            FaultKind::Ingest => self.spec.ingest,
            FaultKind::WalTorn => self.spec.wal_torn,
        }
    }

    /// Rolls the decision for `kind` at site `key`, attempt `attempt`.
    /// Deterministic: the same `(spec, kind, key, attempt)` always returns
    /// the same answer. Fired faults count `faults.injected` and
    /// `faults.injected.<kind>`.
    pub fn fires(&self, kind: FaultKind, key: u64, attempt: u32) -> bool {
        let rate = self.rate(kind);
        if rate <= 0.0 {
            return false;
        }
        let fired = uniform(decision_hash(self.spec.seed, kind.salt(), key, attempt)) < rate;
        if fired {
            count!("faults.injected");
            match kind {
                FaultKind::WhatIfTransient => count!("faults.injected.whatif_transient"),
                FaultKind::WhatIfPermanent => count!("faults.injected.whatif_permanent"),
                FaultKind::Latency => count!("faults.injected.latency"),
                FaultKind::Parse => count!("faults.injected.parse"),
                FaultKind::Panic => count!("faults.injected.panic"),
                FaultKind::Ingest => count!("faults.injected.ingest"),
                FaultKind::WalTorn => count!("faults.injected.wal_torn"),
            }
        }
        fired
    }

    /// Rolls the what-if kinds for one costing attempt, with severity
    /// precedence permanent > transient > latency (a call cannot both
    /// fail and merely be slow).
    pub fn whatif_fault(&self, key: u64, attempt: u32) -> Option<WhatIfFault> {
        if !self.active {
            return None;
        }
        if self.fires(FaultKind::WhatIfPermanent, key, attempt) {
            return Some(WhatIfFault::Permanent);
        }
        if self.fires(FaultKind::WhatIfTransient, key, attempt) {
            return Some(WhatIfFault::Transient);
        }
        if self.fires(FaultKind::Latency, key, attempt) {
            return Some(WhatIfFault::Latency(Duration::from_millis(self.spec.latency_ms)));
        }
        None
    }

    /// Rolls the parse-failure fault for one ingested query.
    pub fn parse_fault(&self, key: u64) -> bool {
        self.active && self.fires(FaultKind::Parse, key, 0)
    }

    /// Rolls the worker-panic fault for one ingestion task.
    pub fn panic_fault(&self, key: u64) -> bool {
        self.active && self.fires(FaultKind::Panic, key, 0)
    }

    /// Rolls the transient ingest-batch fault for one server ingest batch
    /// (keyed by its sequence number; `attempt` counts delivery attempts
    /// of that batch so a client retry draws a fresh decision). A fired
    /// fault rejects the whole batch with a retryable error before any
    /// observer state changes, so a retrying client converges to the
    /// fault-free state.
    pub fn ingest_fault(&self, key: u64, attempt: u32) -> bool {
        self.active && self.fires(FaultKind::Ingest, key, attempt)
    }

    /// Rolls the torn-WAL-append fault for one server ingest batch (keyed
    /// like [`FaultInjector::ingest_fault`]). When it fires, returns the
    /// seeded byte offset in `[0, frame_len)` at which the record's frame
    /// should be cut, as if the process died that far into the write.
    /// Deterministic in `(spec, key, frame_len)`.
    pub fn wal_torn_fault(&self, key: u64, frame_len: usize) -> Option<usize> {
        if !self.active || frame_len == 0 || !self.fires(FaultKind::WalTorn, key, 0) {
            return None;
        }
        // A second, attempt-shifted draw picks the cut offset so the
        // fire/no-fire decision and the offset are independent.
        let h = decision_hash(self.spec.seed, FaultKind::WalTorn.salt(), key, 1);
        Some((h % frame_len as u64) as usize)
    }
}

/// SplitMix64 finalizer (Steele et al.): full-avalanche mix of one word.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn decision_hash(seed: u64, salt: u64, key: u64, attempt: u32) -> u64 {
    let mut h = mix(seed ^ salt);
    h = mix(h ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    mix(h ^ u64::from(attempt))
}

/// Top 53 bits of the hash as a uniform draw in `[0, 1)`.
fn uniform(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultInjector::from_spec("whatif_transient:0.5,seed:9").unwrap();
        let b = FaultInjector::from_spec("whatif_transient:0.5,seed:9").unwrap();
        for key in 0..256u64 {
            for attempt in 0..4 {
                assert_eq!(
                    a.fires(FaultKind::WhatIfTransient, key, attempt),
                    b.fires(FaultKind::WhatIfTransient, key, attempt),
                );
            }
        }
    }

    #[test]
    fn rate_extremes_and_frequency() {
        let never = FaultInjector::disabled();
        let always = FaultInjector::from_spec("parse:1.0").unwrap();
        let half = FaultInjector::from_spec("parse:0.5,seed:1").unwrap();
        let mut fired = 0;
        for key in 0..10_000u64 {
            assert!(!never.parse_fault(key));
            assert!(always.parse_fault(key));
            if half.parse_fault(key) {
                fired += 1;
            }
        }
        assert!((4_500..=5_500).contains(&fired), "rate 0.5 fired {fired}/10000");
    }

    #[test]
    fn kinds_and_attempts_draw_independently() {
        let inj =
            FaultInjector::from_spec("whatif_transient:0.5,whatif_permanent:0.5,seed:4").unwrap();
        let mut kind_diverged = false;
        let mut attempt_diverged = false;
        for key in 0..256u64 {
            if inj.fires(FaultKind::WhatIfTransient, key, 0)
                != inj.fires(FaultKind::WhatIfPermanent, key, 0)
            {
                kind_diverged = true;
            }
            if inj.fires(FaultKind::WhatIfTransient, key, 0)
                != inj.fires(FaultKind::WhatIfTransient, key, 1)
            {
                attempt_diverged = true;
            }
        }
        assert!(kind_diverged, "kinds share a decision stream");
        assert!(attempt_diverged, "attempts share a decision stream");
    }

    #[test]
    fn whatif_precedence_and_latency_duration() {
        let inj = FaultInjector::from_spec(
            "whatif_permanent:1.0,whatif_transient:1.0,latency:1.0,latency_ms:7",
        )
        .unwrap();
        assert_eq!(inj.whatif_fault(3, 0), Some(WhatIfFault::Permanent));
        let inj = FaultInjector::from_spec("latency:1.0,latency_ms:7").unwrap();
        assert_eq!(inj.whatif_fault(3, 0), Some(WhatIfFault::Latency(Duration::from_millis(7))));
        assert_eq!(FaultInjector::disabled().whatif_fault(3, 0), None);
    }

    #[test]
    fn wal_torn_offsets_are_seeded_and_in_range() {
        let inj = FaultInjector::from_spec("wal_torn:1.0,seed:11").unwrap();
        let again = FaultInjector::from_spec("wal_torn:1.0,seed:11").unwrap();
        for key in 0..256u64 {
            let off = inj.wal_torn_fault(key, 100).expect("rate 1.0 always fires");
            assert!(off < 100, "offset {off} out of range");
            assert_eq!(Some(off), again.wal_torn_fault(key, 100), "offset must be seeded");
        }
        // Offsets spread over the frame rather than collapsing to one cut.
        let distinct: std::collections::HashSet<usize> =
            (0..256u64).filter_map(|k| inj.wal_torn_fault(k, 100)).collect();
        assert!(distinct.len() > 10, "only {} distinct offsets", distinct.len());
        assert_eq!(inj.wal_torn_fault(7, 0), None, "empty frames cannot tear");
        assert_eq!(FaultInjector::disabled().wal_torn_fault(7, 100), None);
        let never = FaultInjector::from_spec("wal_torn:0.0,ingest:1.0").unwrap();
        assert_eq!(never.wal_torn_fault(7, 100), None);
    }
}
