//! `isum_faults` — seeded, deterministic fault injection for the ISUM
//! reproduction.
//!
//! Real index-tuning deployments must survive a flaky what-if optimizer,
//! unparseable queries in production logs, and workers that die mid-run.
//! This crate simulates those failures on demand so the rest of the stack
//! can prove its degradation paths work (see DESIGN.md §9):
//!
//! * **what-if transient errors** — retried with capped backoff by
//!   [`WhatIfOptimizer`](../isum_optimizer/struct.WhatIfOptimizer.html);
//! * **what-if permanent errors** — immediate heuristic-cost fallback;
//! * **latency spikes** — exercise per-call timeouts;
//! * **parse failures** — queries dropped at workload ingestion;
//! * **worker panics** — quarantined by the exec pool's panic isolation;
//! * **ingest-batch failures** — whole server ingest batches rejected
//!   with a retryable 503 before any state changes (`crates/server`);
//! * **torn WAL appends** — a batch's write-ahead-log record truncated
//!   at a seeded byte offset, simulating a crash mid-write that the
//!   server's recovery path must repair (`crates/server`).
//!
//! # Determinism
//!
//! Every injection decision is a **pure function** of the configured seed,
//! the fault kind, a caller-supplied site key, and the attempt number —
//! hashed through a SplitMix64-style finalizer. No global counters, no
//! wall clock: the same spec and seed fire the same faults at the same
//! sites regardless of thread count or scheduling, which is what keeps
//! the PR-2 determinism contract (bit-identical results at any thread
//! count) intact under injection.
//!
//! # Configuration
//!
//! The process-wide injector is configured from the `ISUM_FAULTS`
//! environment variable (see [`init_from_env`]) or the CLI `--faults`
//! flag ([`set_global_spec`]). The spec grammar is comma-separated
//! `key:value` pairs:
//!
//! ```text
//! seed:<u64>,whatif_transient:<rate>,whatif_permanent:<rate>,
//! latency:<rate>,latency_ms:<u64>,parse:<rate>,panic:<rate>,
//! ingest:<rate>,wal_torn:<rate>
//! ```
//!
//! Rates are probabilities in `[0, 1]`; unset kinds default to 0 (never
//! fire). Example: `ISUM_FAULTS=whatif_transient:0.05,parse:0.01,seed:7`.
//!
//! # Telemetry
//!
//! When [`isum_common::telemetry`] is enabled, each fired fault counts
//! `faults.injected` plus a per-kind counter
//! (`faults.injected.whatif_transient`, …). Quarantined tasks are counted
//! by the exec pool as `faults.quarantined`.

mod injector;
mod spec;

pub use injector::{FaultInjector, FaultKind, WhatIfFault};
pub use spec::FaultSpec;

use isum_common::Result;
use std::sync::{Arc, Mutex, OnceLock};

static GLOBAL: OnceLock<Mutex<Arc<FaultInjector>>> = OnceLock::new();

fn global_slot() -> &'static Mutex<Arc<FaultInjector>> {
    GLOBAL.get_or_init(|| Mutex::new(Arc::new(FaultInjector::disabled())))
}

/// The process-wide injector. Disabled (all rates zero) until configured
/// via [`init_from_env`] or [`set_global_spec`].
pub fn global() -> Arc<FaultInjector> {
    global_slot().lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
}

/// Replaces the process-wide injector.
pub fn set_global(injector: FaultInjector) {
    let mut slot = global_slot().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *slot = Arc::new(injector);
}

/// Parses `spec` (the grammar in the module docs) and installs it as the
/// process-wide injector. An empty spec disables injection.
pub fn set_global_spec(spec: &str) -> Result<()> {
    set_global(FaultInjector::from_spec(spec)?);
    Ok(())
}

/// Configures the process-wide injector from the `ISUM_FAULTS`
/// environment variable. Unset or empty leaves injection disabled;
/// a malformed spec is reported as an error so binaries can refuse to
/// start with a half-applied fault plan.
pub fn init_from_env() -> Result<()> {
    match std::env::var("ISUM_FAULTS") {
        Ok(v) if !v.trim().is_empty() => set_global_spec(&v),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_defaults_to_disabled_and_is_replaceable() {
        // Fresh processes inject nothing.
        assert!(!global().is_active() || global().is_active()); // handle visible
        set_global_spec("").unwrap();
        assert!(!global().is_active());
        set_global_spec("whatif_transient:1.0,seed:3").unwrap();
        assert!(global().is_active());
        assert!(global().fires(FaultKind::WhatIfTransient, 1, 0));
        assert!(!global().fires(FaultKind::Parse, 1, 0));
        set_global_spec("").unwrap();
        assert!(!global().is_active());
    }

    #[test]
    fn malformed_spec_is_rejected() {
        assert!(set_global_spec("whatif_transient:2.0").is_err());
        assert!(set_global_spec("nonsense:0.5").is_err());
        assert!(set_global_spec("parse").is_err());
    }
}
