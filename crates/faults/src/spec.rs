//! The fault-spec grammar: comma-separated `key:value` pairs.

use isum_common::{Error, Result};

/// Parsed fault specification. All rates are probabilities in `[0, 1]`;
/// a rate of 0 means the kind never fires. See the crate docs for the
/// textual grammar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Seed mixed into every injection decision.
    pub seed: u64,
    /// Rate of retryable what-if costing failures.
    pub whatif_transient: f64,
    /// Rate of non-retryable what-if costing failures.
    pub whatif_permanent: f64,
    /// Rate of injected what-if latency spikes.
    pub latency: f64,
    /// Duration of an injected latency spike, in milliseconds.
    pub latency_ms: u64,
    /// Rate of per-query parse failures at workload ingestion.
    pub parse: f64,
    /// Rate of worker panics during workload ingestion.
    pub panic: f64,
    /// Rate of transient ingest-batch failures in the serving daemon
    /// (`crates/server`): an affected batch is rejected with a retryable
    /// 503 before touching observer state.
    pub ingest: f64,
    /// Rate of torn write-ahead-log appends in the serving daemon: an
    /// affected batch's WAL record is truncated at a seeded byte offset
    /// as if the process died mid-write, simulating a crash point the
    /// recovery path must repair.
    pub wal_torn: f64,
}

impl FaultSpec {
    /// The all-zero spec: no fault ever fires.
    pub fn none() -> Self {
        Self {
            seed: 0,
            whatif_transient: 0.0,
            whatif_permanent: 0.0,
            latency: 0.0,
            latency_ms: 10,
            parse: 0.0,
            panic: 0.0,
            ingest: 0.0,
            wal_torn: 0.0,
        }
    }

    /// True when at least one fault kind has a positive rate.
    pub fn is_active(&self) -> bool {
        self.whatif_transient > 0.0
            || self.whatif_permanent > 0.0
            || self.latency > 0.0
            || self.parse > 0.0
            || self.panic > 0.0
            || self.ingest > 0.0
            || self.wal_torn > 0.0
    }

    /// Parses the textual grammar (crate docs). Empty or whitespace-only
    /// input yields [`FaultSpec::none`]. Unknown keys, missing `:`, rates
    /// outside `[0, 1]`, and unparseable numbers are
    /// [`Error::InvalidConfig`].
    pub fn parse(text: &str) -> Result<Self> {
        let mut spec = FaultSpec::none();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part.split_once(':').ok_or_else(|| {
                Error::InvalidConfig(format!("fault spec entry `{part}` is missing `:value`"))
            })?;
            let key = key.trim();
            let value = value.trim();
            match key {
                "seed" => spec.seed = parse_u64(key, value)?,
                "latency_ms" => spec.latency_ms = parse_u64(key, value)?,
                "whatif_transient" => spec.whatif_transient = parse_rate(key, value)?,
                "whatif_permanent" => spec.whatif_permanent = parse_rate(key, value)?,
                "latency" => spec.latency = parse_rate(key, value)?,
                "parse" => spec.parse = parse_rate(key, value)?,
                "panic" => spec.panic = parse_rate(key, value)?,
                "ingest" => spec.ingest = parse_rate(key, value)?,
                "wal_torn" => spec.wal_torn = parse_rate(key, value)?,
                _ => {
                    return Err(Error::InvalidConfig(format!(
                        "unknown fault kind `{key}` (expected seed, latency_ms, \
                         whatif_transient, whatif_permanent, latency, parse, panic, \
                         ingest, or wal_torn)"
                    )))
                }
            }
        }
        Ok(spec)
    }
}

fn parse_u64(key: &str, value: &str) -> Result<u64> {
    value
        .parse::<u64>()
        .map_err(|_| Error::InvalidConfig(format!("fault spec `{key}:{value}`: expected a u64")))
}

fn parse_rate(key: &str, value: &str) -> Result<f64> {
    let rate = value.parse::<f64>().map_err(|_| {
        Error::InvalidConfig(format!("fault spec `{key}:{value}`: expected a rate in [0, 1]"))
    })?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(Error::InvalidConfig(format!(
            "fault spec `{key}:{value}`: rate must be in [0, 1]"
        )));
    }
    Ok(rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_inactive() {
        let s = FaultSpec::parse("").unwrap();
        assert_eq!(s, FaultSpec::none());
        assert!(!s.is_active());
        assert!(!FaultSpec::parse("  ,, ").unwrap().is_active());
    }

    #[test]
    fn full_spec_round_trips() {
        let s = FaultSpec::parse(
            "seed:42, whatif_transient:0.05, whatif_permanent:0.01, \
             latency:0.1, latency_ms:25, parse:0.02, panic:0.001, ingest:0.03, \
             wal_torn:0.04",
        )
        .unwrap();
        assert_eq!(s.seed, 42);
        assert_eq!(s.whatif_transient, 0.05);
        assert_eq!(s.whatif_permanent, 0.01);
        assert_eq!(s.latency, 0.1);
        assert_eq!(s.latency_ms, 25);
        assert_eq!(s.parse, 0.02);
        assert_eq!(s.panic, 0.001);
        assert_eq!(s.ingest, 0.03);
        assert_eq!(s.wal_torn, 0.04);
        assert!(s.is_active());
        assert!(FaultSpec::parse("ingest:0.5").unwrap().is_active());
        assert!(FaultSpec::parse("wal_torn:0.5").unwrap().is_active());
    }

    #[test]
    fn invalid_specs_are_rejected() {
        for bad in
            ["parse", "parse:1.5", "parse:-0.1", "parse:abc", "seed:-1", "bogus:0.5", "seed:"]
        {
            assert!(FaultSpec::parse(bad).is_err(), "spec `{bad}` should be rejected");
        }
    }
}
