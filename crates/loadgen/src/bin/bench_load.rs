//! Sustained-load benchmark: concurrent keep-alive ingest throughput and
//! `/summary` tail latency under a Zipf-skewed multi-tenant mix
//! (DESIGN.md §15).
//!
//! ```text
//! cargo run -p isum-loadgen --release --bin bench_load [-- <out.json> [<baseline.json>]]
//! ```
//!
//! Boots a daemon with a checkpoint in a scratch directory (so ingest
//! pays the same fsync-per-batch durability as `bench_wal`), generates a
//! seeded load plan shaped like `bench_wal`'s stream — one tenant,
//! 16-statement batches, 12 Zipf-skewed TPC-H templates, mix shift
//! mid-run — and drives it closed-loop over 4 keep-alive connections
//! while a fifth polls `GET /summary?k=10` every 10 ms. Writes measured
//! ingest statements/sec and summary p50/p90/p99 to `BENCH_load.json`
//! (or the path given as the first argument). A second argument names a
//! baseline JSON (CI passes the serial `BENCH_wal.json`), whose headline
//! throughput and the resulting ratio are embedded; the CI gate bounds
//! the ratio so concurrent keep-alive ingest cannot silently fall behind
//! the serial client.
//!
//! Fatal errors are reported as structured `error!` events before
//! exiting nonzero.

use std::time::Duration;

use isum_common::Json;
use isum_loadgen::{run, LoadPlan, PlanConfig, RunConfig};
use isum_server::{Server, ServerConfig};
use isum_workload::gen::tpch_catalog;

const SEED: u64 = 42;
const CONNECTIONS: usize = 4;
const SUMMARY_K: usize = 10;

/// Reports a fatal benchmark error and exits.
fn fail(message: String) -> ! {
    isum_common::error!("bench.load", message);
    std::process::exit(1);
}

/// Reads a numeric field of a baseline benchmark JSON.
fn baseline_num(doc: &Json, field: &str) -> Option<f64> {
    doc.get(field).and_then(Json::as_f64)
}

fn main() {
    isum_common::trace::init_from_env();
    let out = std::env::args().nth(1).unwrap_or_else(|| "BENCH_load.json".into());
    let baseline_path = std::env::args().nth(2);
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Shaped to compare against the serial `bench_wal` stream: a single
    // tenant (one sequencer, one WAL — the same fsync-per-batch bill)
    // with the same batch size, so the ratio isolates what the
    // client-side path adds, not a topology difference.
    let mut plan_config = PlanConfig::new(SEED);
    plan_config.tenants = 1;
    plan_config.batch_size = 16;
    plan_config.warmup_batches = 16;
    plan_config.measure_batches = 192;
    plan_config.soak_batches = 16;
    let plan = LoadPlan::generate(&plan_config);

    let dir = std::env::temp_dir().join(format!("isum_bench_load_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        fail(format!("cannot create scratch dir {}: {e}", dir.display()));
    }
    let mut config = ServerConfig::new(tpch_catalog(1)).apply_drift_env().apply_wal_env();
    config.checkpoint = Some(dir.join("ckpt.json"));
    let server = Server::bind("127.0.0.1:0", config)
        .unwrap_or_else(|e| fail(format!("cannot bind benchmark server: {e}")));

    let mut run_config = RunConfig::new(server.addr().to_string());
    run_config.connections = CONNECTIONS;
    run_config.summary_k = SUMMARY_K;
    run_config.summary_poll_ms = Some(10);
    run_config.timeout = Duration::from_secs(30);
    let report = run(&plan, &run_config).unwrap_or_else(|e| fail(format!("load run failed: {e}")));

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);

    if report.acked_batches != plan.batches.len() as u64 {
        fail(format!("only {}/{} batches acknowledged", report.acked_batches, plan.batches.len()));
    }
    if report.summary_hist.count() == 0 {
        fail("summary poller recorded no samples".into());
    }

    let ingest_sps = report.ingest_statements_per_sec();
    let p50 = report.summary_hist.quantile_ms(0.5);
    let p99 = report.summary_hist.quantile_ms(0.99);
    let mut fields = vec![
        ("bench".into(), Json::from("load_zipf_tpch")),
        (
            "workload".into(),
            Json::from(format!(
                "seeded Zipf load plan (seed {SEED}): {} tenant(s), {} TPC-H templates, \
                 {}-statement batches, mix shift at batch {}, {CONNECTIONS} keep-alive \
                 connections closed-loop, concurrent summary k={SUMMARY_K} poll",
                plan_config.tenants,
                plan_config.templates,
                plan_config.batch_size,
                plan_config.mix_shift_at.map_or("off".into(), |b| b.to_string()),
            )),
        ),
        ("cpus".into(), Json::from(cpus)),
        ("connections".into(), Json::from(CONNECTIONS)),
        ("seed".into(), Json::from(SEED)),
        ("ingest_statements".into(), Json::from(plan.total_statements())),
        ("ingest_batches".into(), Json::from(plan.batches.len())),
        ("ingest_secs".into(), Json::Num(report.measure_secs)),
        ("ingest_statements_per_sec".into(), Json::Num(ingest_sps)),
        ("summary_samples".into(), Json::from(report.summary_hist.count())),
        ("summary_p50_ms".into(), Json::Num(p50)),
        ("summary_p90_ms".into(), Json::Num(report.summary_hist.quantile_ms(0.9))),
        ("summary_p99_ms".into(), Json::Num(p99)),
        ("summary_mean_ms".into(), Json::Num(report.summary_hist.mean_ms())),
        (
            "ingest_stage_attribution".into(),
            // The 4-connection p99 decomposed into named pipeline stages
            // (from each ack's `Server-Timing`), plus the server/network
            // split of the measured round trip.
            Json::Obj(vec![
                ("ingest_p99_ms".into(), Json::Num(report.ingest_hist.quantile_ms(0.99))),
                ("server_p99_ms".into(), Json::Num(report.server_hist.quantile_ms(0.99))),
                ("network_p99_ms".into(), Json::Num(report.network_hist.quantile_ms(0.99))),
                (
                    "stage_p99_ms".into(),
                    Json::Obj(
                        report
                            .stage_hists
                            .iter()
                            .map(|(stage, h)| (stage.clone(), Json::Num(h.quantile_ms(0.99))))
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("report".into(), report.to_json()),
    ];
    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(format!("cannot read baseline {path}: {e}")));
        let base = Json::parse(&text)
            .unwrap_or_else(|e| fail(format!("baseline {path} is not JSON: {e}")));
        let mut cmp = vec![("path".into(), Json::from(path.as_str()))];
        if let Some(b) = baseline_num(&base, "ingest_statements_per_sec") {
            cmp.push(("ingest_statements_per_sec".into(), Json::Num(b)));
            cmp.push(("ingest_throughput_ratio".into(), Json::Num(ingest_sps / b)));
        }
        if let Some(b) = baseline_num(&base, "summary_p50_ms") {
            cmp.push(("summary_p50_ms".into(), Json::Num(b)));
            cmp.push(("summary_p50_ratio".into(), Json::Num(p50 / b)));
        }
        if let Some(b) = baseline_num(&base, "summary_p99_ms") {
            cmp.push(("summary_p99_ms".into(), Json::Num(b)));
            cmp.push(("summary_p99_ratio".into(), Json::Num(p99 / b)));
        }
        fields.push(("baseline".into(), Json::Obj(cmp)));
    }
    let doc = Json::Obj(fields);
    if let Err(e) = std::fs::write(&out, format!("{}\n", doc.to_pretty())) {
        fail(format!("cannot write {out}: {e}"));
    }
    println!("{}", doc.to_pretty());
}
