//! A keep-alive client connection.
//!
//! One [`Conn`] owns one kernel socket and reuses it across requests —
//! the server speaks persistent HTTP/1.1 — reconnecting transparently
//! when the peer has closed it (idle timeout, server restart, an
//! explicit `Connection: close` on the previous response). Requests are
//! strictly serial per connection: a response is read fully before the
//! next request is written, because the server intentionally does not
//! support pipelining.
//!
//! Reconnect-and-resend is safe for every request the load generator
//! issues: reads are side-effect free and sequenced `/ingest` batches are
//! idempotent by the server's duplicate detection.

use std::io::{self, Write};
use std::net::TcpStream;
use std::time::Duration;

use isum_server::{read_response, RawResponse};

/// The server-side stage timeline from a response's `Server-Timing`
/// header, as `(stage, milliseconds)` entries in server order (the last
/// entry is the server's `total`). Empty when the header is absent —
/// e.g. a pre-attribution server — so callers degrade to measuring only
/// round-trip latency. Header names arrive lowercased from
/// [`read_response`].
pub fn server_timing(headers: &[(String, String)]) -> Vec<(String, f64)> {
    headers
        .iter()
        .find(|(k, _)| k == "server-timing")
        .map(|(_, v)| isum_common::stage::parse_server_timing(v))
        .unwrap_or_default()
}

/// A reusable client connection to one server address.
pub struct Conn {
    addr: String,
    timeout: Duration,
    stream: Option<TcpStream>,
    reconnects: u64,
}

impl Conn {
    /// A connection handle for `addr`; the socket opens lazily on the
    /// first request.
    pub fn new(addr: impl Into<String>, timeout: Duration) -> Conn {
        Conn { addr: addr.into(), timeout, stream: None, reconnects: 0 }
    }

    /// Times the socket was (re)established after the first connect —
    /// a healthy keep-alive run stays near zero.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn connect(&mut self) -> io::Result<&TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_ref().expect("just set"))
    }

    /// Sends one request and reads the response, reusing the socket. A
    /// transport error on a *reused* socket (the server may have timed
    /// the idle connection out) triggers exactly one reconnect-and-resend
    /// before the error propagates.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        tenant: Option<&str>,
        body: &str,
    ) -> io::Result<RawResponse> {
        let reused = self.stream.is_some();
        match self.try_once(method, target, tenant, body) {
            Ok(resp) => Ok(resp),
            Err(e) if reused => {
                self.stream = None;
                self.reconnects += 1;
                self.try_once(method, target, tenant, body).map_err(|e2| {
                    io::Error::new(e2.kind(), format!("{e2} (after reconnect; first: {e})"))
                })
            }
            Err(e) => Err(e),
        }
    }

    fn try_once(
        &mut self,
        method: &str,
        target: &str,
        tenant: Option<&str>,
        body: &str,
    ) -> io::Result<RawResponse> {
        let addr = self.addr.clone();
        let stream = self.connect()?;
        {
            let mut w = stream;
            // No `Connection` header: HTTP/1.1 defaults to keep-alive.
            write!(
                w,
                "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n",
                body.len()
            )?;
            if let Some(t) = tenant {
                write!(w, "X-Isum-Tenant: {t}\r\n")?;
            }
            w.write_all(b"\r\n")?;
            w.write_all(body.as_bytes())?;
            w.flush()?;
        }
        let resp = read_response(stream)?;
        let close =
            resp.1.iter().any(|(k, v)| k == "connection" && v.eq_ignore_ascii_case("close"));
        if close {
            // The server asked to tear down (e.g. drain): honor it so the
            // next request opens fresh instead of failing on a dead socket.
            self.stream = None;
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    /// A scripted one-connection server: accepts one socket, answers
    /// `responses[i]` to the i-th request, then closes.
    fn scripted_server(responses: Vec<String>) -> (String, std::thread::JoinHandle<usize>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let handle = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().expect("accept");
            let mut served = 0usize;
            let mut buf = [0u8; 4096];
            for resp in &responses {
                // Read until the blank line (requests here have no body).
                let mut req = Vec::new();
                loop {
                    let n = sock.read(&mut buf).expect("read");
                    if n == 0 {
                        return served;
                    }
                    req.extend_from_slice(&buf[..n]);
                    if req.windows(4).any(|w| w == b"\r\n\r\n") {
                        break;
                    }
                }
                sock.write_all(resp.as_bytes()).expect("write");
                served += 1;
            }
            served
        });
        (addr, handle)
    }

    #[test]
    fn reuses_one_socket_across_requests() {
        let ok = "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\nok";
        let (addr, handle) = scripted_server(vec![ok.into(), ok.into(), ok.into()]);
        let mut conn = Conn::new(addr, Duration::from_secs(5));
        for _ in 0..3 {
            let (status, _, body) = conn.request("GET", "/x", None, "").expect("request");
            assert_eq!(status, 200);
            assert_eq!(body, b"ok");
        }
        assert_eq!(conn.reconnects(), 0, "three requests, one socket");
        assert_eq!(handle.join().expect("server"), 3);
    }

    #[test]
    fn server_timing_parses_the_stage_timeline() {
        let ok = "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\
                  Server-Timing: recv;dur=0.120, apply;dur=1.500, total;dur=1.620\r\n\r\nok";
        let (addr, handle) = scripted_server(vec![ok.into()]);
        let mut conn = Conn::new(addr, Duration::from_secs(5));
        let (status, headers, _) = conn.request("GET", "/x", None, "").expect("request");
        assert_eq!(status, 200);
        let stages = server_timing(&headers);
        assert_eq!(
            stages,
            vec![("recv".into(), 0.12), ("apply".into(), 1.5), ("total".into(), 1.62)]
        );
        assert!(server_timing(&[]).is_empty(), "absent header degrades to empty");
        assert_eq!(handle.join().expect("server"), 1);
    }

    #[test]
    fn honors_connection_close_from_the_server() {
        let bye = "HTTP/1.1 200 OK\r\nContent-Length: 3\r\nConnection: close\r\n\r\nbye";
        let (addr, handle) = scripted_server(vec![bye.into()]);
        let mut conn = Conn::new(addr, Duration::from_secs(5));
        let (status, _, _) = conn.request("GET", "/x", None, "").expect("request");
        assert_eq!(status, 200);
        assert!(conn.stream.is_none(), "socket dropped after Connection: close");
        assert_eq!(handle.join().expect("server"), 1);
    }
}
