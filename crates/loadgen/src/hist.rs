//! Client-side latency histogram: fixed log-spaced buckets, merge-able
//! across worker threads, quantiles by linear interpolation inside the
//! landing bucket.
//!
//! Buckets are geometric with ratio 2^(1/4) starting at 1 µs, so the
//! worst-case quantile error from bucketing is under ~19% — plenty for
//! p50/p90/p99 reporting — while the struct stays a flat array of
//! counters that merges with one addition per bucket (no allocation on
//! the record path, no unbounded memory under soak).

/// Number of geometric buckets. `2^(96/4)` µs ≈ 16.8 s; anything slower
/// lands in the overflow bucket.
const BUCKETS: usize = 96;

/// A latency histogram over microsecond samples.
#[derive(Debug, Clone)]
pub struct LatencyHist {
    counts: [u64; BUCKETS],
    overflow: u64,
    count: u64,
    sum_us: u64,
    min_us: u64,
    max_us: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist {
            counts: [0; BUCKETS],
            overflow: 0,
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }
}

/// Upper bound of bucket `i` in microseconds: `2^(i/4 + 1/4)` rounded up,
/// i.e. buckets step by a factor of 2^(1/4).
fn bucket_hi_us(i: usize) -> f64 {
    2f64.powf((i as f64 + 1.0) / 4.0)
}

/// The bucket a sample lands in: the first whose upper bound reaches it.
fn bucket_of(us: u64) -> Option<usize> {
    let us = us.max(1) as f64;
    // log2(us) * 4 - 1 rounds to the first index with hi >= us.
    let idx = (us.log2() * 4.0).ceil() as isize - 1;
    let idx = idx.max(0) as usize;
    if idx < BUCKETS {
        Some(idx)
    } else {
        None
    }
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> LatencyHist {
        LatencyHist::default()
    }

    /// Records one sample in microseconds.
    pub fn record_us(&mut self, us: u64) {
        // The ladder's resolution floor is 1 µs: a zero sample (e.g. a
        // sub-microsecond pipeline stage) lands there, keeping
        // `min_us <= max_us` for the quantile clamp.
        let us = us.max(1);
        match bucket_of(us) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum_us += us;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Folds another histogram in (worker merge at the end of a run).
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64 / 1e3
        }
    }

    /// Largest recorded sample in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.max_us as f64 / 1e3
    }

    /// Quantile `q` in `[0, 1]`, in milliseconds: walks the cumulative
    /// counts to the landing bucket and interpolates linearly inside it.
    /// Samples past the last bucket answer the recorded maximum.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c > rank {
                let lo = if i == 0 { 1.0 } else { bucket_hi_us(i - 1) };
                let hi = bucket_hi_us(i);
                let frac = (rank - seen) as f64 / c as f64;
                let us = (lo + (hi - lo) * frac).clamp(self.min_us as f64, self.max_us as f64);
                return us / 1e3;
            }
            seen += c;
        }
        self.max_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_sample_domain_monotonically() {
        let mut last = 0usize;
        for us in [1u64, 2, 10, 100, 1_000, 50_000, 1_000_000, 10_000_000] {
            let b = bucket_of(us).expect("in range");
            assert!(b >= last, "bucket index is monotone in the sample");
            assert!(bucket_hi_us(b) >= us as f64, "sample fits under its bucket bound");
            last = b;
        }
        assert!(bucket_of(60_000_000).is_none(), "a minute overflows");
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let mut h = LatencyHist::new();
        // 100 samples: 1 ms .. 100 ms.
        for ms in 1..=100u64 {
            h.record_us(ms * 1000);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ms(0.5);
        let p99 = h.quantile_ms(0.99);
        assert!((40.0..=62.0).contains(&p50), "p50 ≈ 50 ms, got {p50}");
        assert!((80.0..=100.0).contains(&p99), "p99 ≈ 99 ms, got {p99}");
        assert!(h.quantile_ms(0.0) <= h.quantile_ms(1.0));
        assert!((h.mean_ms() - 50.5).abs() < 0.01);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        let mut whole = LatencyHist::new();
        for i in 0..500u64 {
            let us = 37 * i + 11;
            if i % 2 == 0 {
                a.record_us(us)
            } else {
                b.record_us(us)
            }
            whole.record_us(us);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.quantile_ms(0.5), whole.quantile_ms(0.5));
        assert_eq!(a.quantile_ms(0.99), whole.quantile_ms(0.99));
        assert_eq!(a.max_ms(), whole.max_ms());
    }
}
