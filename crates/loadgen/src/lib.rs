//! # isum-loadgen: deterministic sustained-load generation
//!
//! A zero-dependency load generator for the isum daemon (DESIGN.md §15).
//! It separates **what** is sent from **when** it is sent:
//!
//! * [`plan`] materializes a [`plan::LoadPlan`] — every batch's tenant,
//!   per-tenant `seq` stamp, and SQL script — as a pure function of one
//!   seed, with a Zipf-skewed tenant and template mix and an optional
//!   mid-run **mix shift** that moves the head-heavy template mass onto
//!   rarely-seen templates to provoke the server's drift tracker.
//! * [`run()`] executes a plan over N concurrent keep-alive connections
//!   ([`conn::Conn`]) in closed- or open-loop mode, retrying per the
//!   server's backpressure vocabulary (429, ordering 503s with
//!   `Retry-After: 0`, transient 503s) and recording client-side
//!   latency histograms ([`hist::LatencyHist`]) plus a concurrent
//!   `/summary` tail-latency poll.
//!
//! Because the server sequences each tenant's stream by `seq` and the
//! plan is execution-independent, two runs of the same seed leave the
//! server in byte-identical state regardless of how connections and
//! retries interleave — the replay-identity property the integration
//! tests pin down with [`plan::LoadPlan::fingerprint`] and a serial
//! reference run.

pub mod conn;
pub mod hist;
pub mod plan;
pub mod run;

pub use conn::{server_timing, Conn};
pub use hist::LatencyHist;
pub use plan::{tenant_name, Batch, LoadPlan, PlanConfig, Window, DEFAULT_TENANT};
pub use run::{run, LoadReport, Mode, RunConfig};
