//! Deterministic load-plan generation.
//!
//! A [`LoadPlan`] is fully materialized from a [`PlanConfig`] before a
//! single byte hits the wire: every batch's tenant, per-tenant `seq`
//! stamp, and SQL script is a pure function of the seed. Execution
//! (worker interleaving, retries, pacing) can therefore never change
//! *what* is sent — only *when* — which is what makes a load run
//! replayable bit-identically: the server's sequencers apply each
//! tenant's stream in `seq` order, so two runs of the same plan leave the
//! server in byte-identical state no matter how the connections raced.
//!
//! The template mix is Zipf-skewed over a prefix of the TPC-H templates,
//! and an optional **mix shift** re-maps the Zipf ranks (rank `r` →
//! template `templates-1-r`) from a configured batch index onward: the
//! head-heavy probability mass jumps to templates the summarized history
//! has barely seen, which is exactly the template-distribution divergence
//! the server's drift tracker scores (DESIGN.md §12).

use isum_common::rng::{DetRng, Zipf};
use isum_workload::gen::tpch::instantiate_template;

/// Tenant name for single-tenant plans and rank 0 of multi-tenant plans:
/// the shard requests land on with no `X-Isum-Tenant` header.
pub const DEFAULT_TENANT: &str = "default";

/// Everything that determines a [`LoadPlan`], and nothing that does not.
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Seed for every stochastic choice (tenant, template, parameters).
    pub seed: u64,
    /// Number of tenants the batch stream is Zipf-spread over; `1` keeps
    /// everything on the default tenant.
    pub tenants: usize,
    /// Number of TPC-H templates in the mix (a prefix of the 22).
    pub templates: usize,
    /// Zipf exponent for both the tenant and template mixes; `0` is
    /// uniform, larger is more head-heavy.
    pub theta: f64,
    /// Statements per batch.
    pub batch_size: usize,
    /// Batches before the measurement window (excluded from stats).
    pub warmup_batches: usize,
    /// Batches in the measurement window.
    pub measure_batches: usize,
    /// Batches after the measurement window (sustained-load tail; sent
    /// and accounted, excluded from latency stats).
    pub soak_batches: usize,
    /// Batch index from which the template Zipf ranks are re-mapped to
    /// provoke drift; `None` keeps the mix stationary.
    pub mix_shift_at: Option<usize>,
}

impl PlanConfig {
    /// A small but representative default plan: 4 tenants, 12 templates,
    /// `theta = 1`, 8-statement batches, 8 warmup + 48 measured + 8 soak
    /// batches, mix shift at the middle of the measure window.
    pub fn new(seed: u64) -> PlanConfig {
        PlanConfig {
            seed,
            tenants: 4,
            templates: 12,
            theta: 1.0,
            batch_size: 8,
            warmup_batches: 8,
            measure_batches: 48,
            soak_batches: 8,
            mix_shift_at: Some(32),
        }
    }

    /// Total batches across all three windows.
    pub fn total_batches(&self) -> usize {
        self.warmup_batches + self.measure_batches + self.soak_batches
    }
}

/// One pre-generated ingest batch.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Global generation-order index (also the worker-assignment key).
    pub index: usize,
    /// The tenant this batch belongs to.
    pub tenant: String,
    /// Contiguous per-tenant sequence number (generation order).
    pub seq: u64,
    /// The `;`-separated SQL script, exactly as POSTed to `/ingest`.
    pub script: String,
}

/// Which window a batch index falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Window {
    /// Before measurement; excluded from stats.
    Warmup,
    /// The measurement window.
    Measure,
    /// The sustained tail after measurement.
    Soak,
}

/// A fully materialized load plan.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// The generating configuration (kept for reporting).
    pub config: PlanConfig,
    /// Batches in generation order.
    pub batches: Vec<Batch>,
}

impl LoadPlan {
    /// Materializes the plan for `config`. Pure: same config, same plan,
    /// byte for byte.
    ///
    /// # Panics
    /// Panics when `tenants`/`templates`/`batch_size` is zero or
    /// `templates > 22` (TPC-H has 22 templates) — configuration bugs,
    /// not runtime conditions.
    pub fn generate(config: &PlanConfig) -> LoadPlan {
        assert!(config.tenants >= 1, "need at least one tenant");
        assert!(
            (1..=22).contains(&config.templates),
            "templates must be 1..=22, got {}",
            config.templates
        );
        assert!(config.batch_size >= 1, "need at least one statement per batch");
        let mut rng = DetRng::seeded(config.seed);
        let tenant_zipf = Zipf::new(config.tenants, config.theta);
        let template_zipf = Zipf::new(config.templates, config.theta);
        let mut tenant_seq = vec![0u64; config.tenants];
        let mut batches = Vec::with_capacity(config.total_batches());
        for index in 0..config.total_batches() {
            let tenant_rank = if config.tenants == 1 { 0 } else { tenant_zipf.sample(&mut rng) };
            let shifted = config.mix_shift_at.is_some_and(|at| index >= at);
            let mut script = String::new();
            for _ in 0..config.batch_size {
                let rank = template_zipf.sample(&mut rng);
                // The shift reverses the rank→template mapping: the
                // head-heavy mass lands on templates the pre-shift stream
                // rarely exercised.
                let qno = if shifted { config.templates - rank } else { rank + 1 };
                let sql = instantiate_template(qno, &mut rng);
                script.push_str(sql.trim_end_matches(';'));
                script.push_str(";\n");
            }
            let tenant = tenant_name(tenant_rank);
            let seq = tenant_seq[tenant_rank];
            tenant_seq[tenant_rank] += 1;
            batches.push(Batch { index, tenant, seq, script });
        }
        LoadPlan { config: config.clone(), batches }
    }

    /// The window batch `index` falls into.
    pub fn window_of(&self, index: usize) -> Window {
        if index < self.config.warmup_batches {
            Window::Warmup
        } else if index < self.config.warmup_batches + self.config.measure_batches {
            Window::Measure
        } else {
            Window::Soak
        }
    }

    /// Total statements across the plan.
    pub fn total_statements(&self) -> usize {
        self.batches.len() * self.config.batch_size
    }

    /// Statements inside the measurement window.
    pub fn measure_statements(&self) -> usize {
        self.config.measure_batches * self.config.batch_size
    }

    /// FNV-1a fingerprint over every batch's `(index, tenant, seq,
    /// script)` — the replay-identity witness: two plans fingerprint
    /// equal iff they would put the same bytes on the wire.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for b in &self.batches {
            eat(&(b.index as u64).to_le_bytes());
            eat(b.tenant.as_bytes());
            eat(&b.seq.to_le_bytes());
            eat(b.script.as_bytes());
        }
        h
    }
}

/// Tenant name for a Zipf rank: rank 0 is the default tenant (so a
/// single-tenant plan hits the pre-sharding fast path), higher ranks get
/// `lt1`, `lt2`, … — names that pass the server's tenant validation.
pub fn tenant_name(rank: usize) -> String {
    if rank == 0 {
        DEFAULT_TENANT.to_string()
    } else {
        format!("lt{rank}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan_bit_for_bit() {
        let cfg = PlanConfig::new(7);
        let a = LoadPlan::generate(&cfg);
        let b = LoadPlan::generate(&cfg);
        assert_eq!(a.fingerprint(), b.fingerprint());
        for (x, y) in a.batches.iter().zip(b.batches.iter()) {
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.seq, y.seq);
            assert_eq!(x.script, y.script);
        }
        let mut other = cfg.clone();
        other.seed = 8;
        assert_ne!(
            LoadPlan::generate(&other).fingerprint(),
            a.fingerprint(),
            "a different seed produces a different stream"
        );
    }

    #[test]
    fn per_tenant_seqs_are_contiguous_from_zero() {
        let plan = LoadPlan::generate(&PlanConfig::new(11));
        let mut next: std::collections::BTreeMap<&str, u64> = Default::default();
        for b in &plan.batches {
            let n = next.entry(b.tenant.as_str()).or_insert(0);
            assert_eq!(b.seq, *n, "tenant {} jumped its seq stream", b.tenant);
            *n += 1;
        }
        assert!(next.len() > 1, "the default plan exercises several tenants");
        assert!(next.contains_key("default"), "rank 0 is the default tenant");
    }

    #[test]
    fn zipf_mix_is_head_heavy_and_shift_moves_the_mass() {
        let mut cfg = PlanConfig::new(3);
        cfg.tenants = 1;
        cfg.warmup_batches = 0;
        cfg.measure_batches = 60;
        cfg.soak_batches = 0;
        cfg.mix_shift_at = Some(30);
        let plan = LoadPlan::generate(&cfg);
        // The most common TPC-H template before the shift must differ
        // from the most common one after: that is the provoked drift.
        let head = |batches: &[Batch]| -> String {
            let mut counts: std::collections::HashMap<&str, usize> = Default::default();
            for b in batches {
                for stmt in b.script.split(';') {
                    let key = stmt.trim();
                    if !key.is_empty() {
                        *counts.entry(&key[..key.len().min(40)]).or_default() += 1;
                    }
                }
            }
            counts.into_iter().max_by_key(|(_, c)| *c).map(|(k, _)| k.to_string()).unwrap()
        };
        let before = head(&plan.batches[..30]);
        let after = head(&plan.batches[30..]);
        assert_ne!(before, after, "mix shift must change the dominant template");
    }

    #[test]
    fn windows_partition_the_plan() {
        let plan = LoadPlan::generate(&PlanConfig::new(1));
        let cfg = &plan.config;
        assert_eq!(plan.window_of(0), Window::Warmup);
        assert_eq!(plan.window_of(cfg.warmup_batches), Window::Measure);
        assert_eq!(plan.window_of(cfg.warmup_batches + cfg.measure_batches), Window::Soak);
        assert_eq!(plan.total_statements(), cfg.total_batches() * cfg.batch_size);
    }
}
