//! Plan execution: a worker pool of keep-alive connections, a concurrent
//! `/summary` poller, and client-side accounting.
//!
//! Batches are assigned to workers round-robin by batch index
//! (`index % connections`). Because the plan stamps per-tenant `seq`
//! numbers in generation order, a worker can hit a 503 + `Retry-After: 0`
//! when it races ahead of a sibling still delivering an earlier `seq` of
//! the same tenant — that is the server's ordering contract working as
//! designed, and the worker simply retries. The schedule is
//! deadlock-free: the lowest-indexed incomplete batch always has every
//! per-tenant predecessor complete (predecessors have lower indexes), so
//! its owner can always make progress.
//!
//! **Closed loop** sends each batch as soon as the previous one is acked;
//! latency is measured from the first delivery attempt. **Open loop**
//! paces each worker to a fixed schedule and measures latency from the
//! *scheduled* send time, so queueing delay under overload is charged to
//! the server rather than silently absorbed (no coordinated omission).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use isum_common::Json;

use crate::conn::{server_timing, Conn};
use crate::hist::LatencyHist;
use crate::plan::{LoadPlan, Window, DEFAULT_TENANT};

/// How batch sends are paced.
#[derive(Debug, Clone, Copy)]
pub enum Mode {
    /// Send-after-ack: each worker fires its next batch the moment the
    /// previous one is acknowledged.
    Closed,
    /// Paced: each worker schedules its k-th batch at `k / rate` seconds
    /// and charges latency from the scheduled time.
    Open {
        /// Batches per second per connection.
        batches_per_sec: f64,
    },
}

/// Execution knobs (everything about *how* to send; the *what* lives in
/// the [`LoadPlan`]).
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent keep-alive connections (worker threads).
    pub connections: usize,
    /// Pacing mode.
    pub mode: Mode,
    /// `k` for the concurrent `GET /summary?k=` poller.
    pub summary_k: usize,
    /// Poll interval for the summary thread; `None` disables it.
    pub summary_poll_ms: Option<u64>,
    /// Socket read/write timeout.
    pub timeout: Duration,
    /// Delivery attempts per batch before the run aborts.
    pub max_attempts: u32,
}

impl RunConfig {
    /// Closed-loop defaults against `addr`: 4 connections, summary k=10
    /// polled every 50 ms, 30 s socket timeout, 600 attempts.
    pub fn new(addr: impl Into<String>) -> RunConfig {
        RunConfig {
            addr: addr.into(),
            connections: 4,
            mode: Mode::Closed,
            summary_k: 10,
            summary_poll_ms: Some(50),
            timeout: Duration::from_secs(30),
            max_attempts: 600,
        }
    }
}

/// Client-side accounting for one run.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Batches acknowledged with 200.
    pub acked_batches: u64,
    /// Statements inside acknowledged batches.
    pub acked_statements: u64,
    /// 200 acks the server marked `duplicate` (idempotent redelivery).
    pub duplicate_acks: u64,
    /// 429 backpressure responses (each retried).
    pub retries_429: u64,
    /// 503 + `Retry-After: 0` ordering stalls (sequencer ahead-of-stream).
    pub retries_503_ahead: u64,
    /// Other 503s (drain race, WAL stall, timeout; each retried).
    pub retries_503_other: u64,
    /// 5xx statuses outside the documented backpressure vocabulary.
    pub unexpected_5xx: u64,
    /// Transport-level request failures that were retried.
    pub transport_errors: u64,
    /// Socket re-establishments across all connections.
    pub reconnects: u64,
    /// Ingest batch latencies, measurement window only.
    pub ingest_hist: LatencyHist,
    /// Server-side share of each measured ingest latency: the `total`
    /// entry of the response's `Server-Timing` header. Empty when the
    /// server does not send the header.
    pub server_hist: LatencyHist,
    /// The remainder (measured minus server-side): network transit plus
    /// client-side queueing — the share no server-side fix can remove.
    pub network_hist: LatencyHist,
    /// Per-stage server-side latencies keyed by stage name, from the
    /// same headers (`BTreeMap` for deterministic report order).
    pub stage_hists: BTreeMap<String, LatencyHist>,
    /// `/summary` latencies observed by the poller after warmup.
    pub summary_hist: LatencyHist,
    /// Wall-clock span of the measurement window in seconds.
    pub measure_secs: f64,
    /// Statements ingested inside the measurement window.
    pub measure_statements: u64,
    /// The plan fingerprint (replay-identity witness).
    pub fingerprint: u64,
}

impl LoadReport {
    /// Measured ingest throughput in statements per second.
    pub fn ingest_statements_per_sec(&self) -> f64 {
        if self.measure_secs > 0.0 {
            self.measure_statements as f64 / self.measure_secs
        } else {
            0.0
        }
    }

    /// The report as a JSON object (the `bench_load` payload core).
    pub fn to_json(&self) -> Json {
        let hist = |h: &LatencyHist| {
            Json::Obj(vec![
                ("count".into(), Json::from(h.count())),
                ("mean_ms".into(), Json::Num(h.mean_ms())),
                ("p50_ms".into(), Json::Num(h.quantile_ms(0.5))),
                ("p90_ms".into(), Json::Num(h.quantile_ms(0.9))),
                ("p99_ms".into(), Json::Num(h.quantile_ms(0.99))),
                ("max_ms".into(), Json::Num(h.max_ms())),
            ])
        };
        Json::Obj(vec![
            ("acked_batches".into(), Json::from(self.acked_batches)),
            ("acked_statements".into(), Json::from(self.acked_statements)),
            ("duplicate_acks".into(), Json::from(self.duplicate_acks)),
            ("retries_429".into(), Json::from(self.retries_429)),
            ("retries_503_ahead".into(), Json::from(self.retries_503_ahead)),
            ("retries_503_other".into(), Json::from(self.retries_503_other)),
            ("unexpected_5xx".into(), Json::from(self.unexpected_5xx)),
            ("transport_errors".into(), Json::from(self.transport_errors)),
            ("reconnects".into(), Json::from(self.reconnects)),
            ("measure_secs".into(), Json::Num(self.measure_secs)),
            ("measure_statements".into(), Json::from(self.measure_statements)),
            ("ingest_statements_per_sec".into(), Json::Num(self.ingest_statements_per_sec())),
            ("ingest_latency".into(), hist(&self.ingest_hist)),
            (
                "stage_attribution".into(),
                Json::Obj(vec![
                    ("server".into(), hist(&self.server_hist)),
                    ("network".into(), hist(&self.network_hist)),
                    (
                        "stages".into(),
                        Json::Obj(
                            self.stage_hists.iter().map(|(k, h)| (k.clone(), hist(h))).collect(),
                        ),
                    ),
                ]),
            ),
            ("summary_latency".into(), hist(&self.summary_hist)),
            ("plan_fingerprint".into(), Json::from(format!("{:016x}", self.fingerprint))),
        ])
    }
}

/// Per-worker tally, merged into the [`LoadReport`] after the join.
#[derive(Debug, Default)]
struct WorkerTally {
    acked_batches: u64,
    acked_statements: u64,
    duplicate_acks: u64,
    retries_429: u64,
    retries_503_ahead: u64,
    retries_503_other: u64,
    unexpected_5xx: u64,
    transport_errors: u64,
    reconnects: u64,
    hist: LatencyHist,
    server_hist: LatencyHist,
    network_hist: LatencyHist,
    stage_hists: BTreeMap<String, LatencyHist>,
    measure_statements: u64,
    /// Offsets from run start bracketing this worker's measure window.
    measure_first_us: Option<u64>,
    measure_last_us: Option<u64>,
}

/// `Retry-After` seconds from a raw response, capped at 2 (mirrors the
/// live client's backoff policy); `None` when absent or unparsable.
fn retry_after_secs(headers: &[(String, String)]) -> Option<u64> {
    headers
        .iter()
        .find(|(k, _)| k == "retry-after")
        .and_then(|(_, v)| v.parse::<u64>().ok())
        .map(|s| s.min(2))
}

/// Executes `plan` against a live server per `config`.
///
/// Returns an error on a fatal response (4xx), on transport failure that
/// outlives the retry budget, or when the server answers a status the
/// protocol does not document.
pub fn run(plan: &LoadPlan, config: &RunConfig) -> Result<LoadReport, String> {
    assert!(config.connections >= 1, "need at least one connection");
    let t0 = Instant::now();
    let warmup_total = config.warmup_batch_count(plan);
    let completed = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    let failure: Mutex<Option<String>> = Mutex::new(None);
    let tallies: Mutex<Vec<WorkerTally>> = Mutex::new(Vec::new());
    let summary_side: Mutex<(LatencyHist, u64)> = Mutex::new((LatencyHist::new(), 0));

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..config.connections)
            .map(|worker| {
                let completed = &completed;
                let done = &done;
                let failure = &failure;
                let tallies = &tallies;
                scope.spawn(move || {
                    let result = run_worker(plan, config, worker, t0, completed, done);
                    match result {
                        Ok(tally) => tallies.lock().expect("tallies").push(tally),
                        Err(e) => {
                            let mut slot = failure.lock().expect("failure");
                            slot.get_or_insert(e);
                            done.store(true, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        let poller = config.summary_poll_ms.map(|poll_ms| {
            let completed = &completed;
            let done = &done;
            let summary_side = &summary_side;
            scope.spawn(move || {
                let mut conn = Conn::new(config.addr.clone(), config.timeout);
                let target = format!("/summary?k={}", config.summary_k);
                let mut hist = LatencyHist::new();
                while !done.load(Ordering::SeqCst) {
                    let t = Instant::now();
                    let ok = matches!(conn.request("GET", &target, None, ""), Ok((200, _, _)));
                    // Record only steady-state samples: after warmup, and
                    // only successful renders.
                    if ok && completed.load(Ordering::SeqCst) >= warmup_total {
                        hist.record_us(t.elapsed().as_micros() as u64);
                    }
                    std::thread::sleep(Duration::from_millis(poll_ms));
                }
                // A short run can complete between two poll ticks; one
                // final sample (all batches acked, so past warmup by
                // definition) keeps an enabled poller from reporting an
                // empty histogram.
                if hist.count() == 0 {
                    let t = Instant::now();
                    if matches!(conn.request("GET", &target, None, ""), Ok((200, _, _))) {
                        hist.record_us(t.elapsed().as_micros() as u64);
                    }
                }
                *summary_side.lock().expect("summary") = (hist, conn.reconnects());
            })
        });
        for handle in workers {
            let _ = handle.join();
        }
        // Workers are drained; release the poller so the scope can close.
        done.store(true, Ordering::SeqCst);
        if let Some(handle) = poller {
            let _ = handle.join();
        }
    });

    if let Some(e) = failure.lock().expect("failure").take() {
        return Err(e);
    }
    let mut report = LoadReport { fingerprint: plan.fingerprint(), ..Default::default() };
    let mut first_us = u64::MAX;
    let mut last_us = 0u64;
    for t in tallies.lock().expect("tallies").iter() {
        report.acked_batches += t.acked_batches;
        report.acked_statements += t.acked_statements;
        report.duplicate_acks += t.duplicate_acks;
        report.retries_429 += t.retries_429;
        report.retries_503_ahead += t.retries_503_ahead;
        report.retries_503_other += t.retries_503_other;
        report.unexpected_5xx += t.unexpected_5xx;
        report.transport_errors += t.transport_errors;
        report.reconnects += t.reconnects;
        report.measure_statements += t.measure_statements;
        report.ingest_hist.merge(&t.hist);
        report.server_hist.merge(&t.server_hist);
        report.network_hist.merge(&t.network_hist);
        for (stage, h) in &t.stage_hists {
            report.stage_hists.entry(stage.clone()).or_default().merge(h);
        }
        if let Some(us) = t.measure_first_us {
            first_us = first_us.min(us);
        }
        if let Some(us) = t.measure_last_us {
            last_us = last_us.max(us);
        }
    }
    if last_us > first_us {
        report.measure_secs = (last_us - first_us) as f64 / 1e6;
    }
    let (summary_hist, summary_reconnects) = {
        let guard = summary_side.lock().expect("summary");
        (guard.0.clone(), guard.1)
    };
    report.summary_hist = summary_hist;
    report.reconnects += summary_reconnects;
    Ok(report)
}

impl RunConfig {
    /// Batches that must complete before the poller starts recording.
    fn warmup_batch_count(&self, plan: &LoadPlan) -> usize {
        plan.config.warmup_batches
    }
}

/// One worker: delivers every batch with `index % connections == worker`,
/// in index order, retrying per the server's backpressure vocabulary.
fn run_worker(
    plan: &LoadPlan,
    config: &RunConfig,
    worker: usize,
    t0: Instant,
    completed: &AtomicUsize,
    done: &AtomicBool,
) -> Result<WorkerTally, String> {
    let mut conn = Conn::new(config.addr.clone(), config.timeout);
    let mut tally = WorkerTally::default();
    let own_batches = plan.batches.iter().filter(|b| b.index % config.connections == worker);
    for (own_index, batch) in own_batches.enumerate() {
        if done.load(Ordering::SeqCst) {
            break;
        }
        let started = match config.mode {
            Mode::Closed => Instant::now(),
            Mode::Open { batches_per_sec } => {
                let scheduled = t0 + Duration::from_secs_f64(own_index as f64 / batches_per_sec);
                let now = Instant::now();
                if scheduled > now {
                    std::thread::sleep(scheduled - now);
                }
                scheduled
            }
        };
        let target = format!("/ingest?seq={}", batch.seq);
        let tenant =
            if batch.tenant == DEFAULT_TENANT { None } else { Some(batch.tenant.as_str()) };
        let mut delivered = false;
        // The acked response's `Server-Timing` timeline; empty when the
        // server does not attribute (or until the 200 lands).
        let mut acked_timing: Vec<(String, f64)> = Vec::new();
        for _attempt in 0..config.max_attempts {
            let (status, headers, body) = match conn.request("POST", &target, tenant, &batch.script)
            {
                Ok(resp) => resp,
                Err(e) => {
                    tally.transport_errors += 1;
                    if tally.transport_errors > u64::from(config.max_attempts) {
                        return Err(format!("batch {}: transport failure: {e}", batch.index));
                    }
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
            };
            match status {
                200 => {
                    if String::from_utf8_lossy(&body).contains("duplicate") {
                        tally.duplicate_acks += 1;
                    }
                    tally.acked_batches += 1;
                    tally.acked_statements += plan.config.batch_size as u64;
                    acked_timing = server_timing(&headers);
                    delivered = true;
                    break;
                }
                429 => {
                    tally.retries_429 += 1;
                    let wait = retry_after_secs(&headers).unwrap_or(1);
                    std::thread::sleep(Duration::from_millis(20 + wait * 150));
                }
                503 => {
                    if retry_after_secs(&headers) == Some(0) {
                        // Sequencer ordering stall: an earlier seq of this
                        // tenant is still in flight on a sibling worker.
                        tally.retries_503_ahead += 1;
                        std::thread::sleep(Duration::from_millis(1));
                    } else {
                        tally.retries_503_other += 1;
                        let wait = retry_after_secs(&headers).unwrap_or(1);
                        std::thread::sleep(Duration::from_millis(20 + wait * 150));
                    }
                }
                s if (500..600).contains(&s) => {
                    tally.unexpected_5xx += 1;
                    std::thread::sleep(Duration::from_millis(50));
                }
                s => {
                    return Err(format!(
                        "batch {} (tenant {}, seq {}) answered fatal {s}: {}",
                        batch.index,
                        batch.tenant,
                        batch.seq,
                        String::from_utf8_lossy(&body)
                    ));
                }
            }
        }
        if !delivered {
            return Err(format!(
                "batch {} not delivered after {} attempts",
                batch.index, config.max_attempts
            ));
        }
        if plan.window_of(batch.index) == Window::Measure {
            let acked = Instant::now();
            let measured_us = acked.duration_since(started).as_micros() as u64;
            tally.hist.record_us(measured_us);
            // Split the measured latency along the server's own timeline:
            // the header's `total` is the server-side share, the remainder
            // is network transit plus client/queue wait, and each named
            // stage feeds its own histogram. Purely subtractive — the
            // measured number above is untouched.
            if let Some((name, total_ms)) = acked_timing.last() {
                if name == "total" {
                    let server_us = ((total_ms * 1e3) as u64).min(measured_us);
                    tally.server_hist.record_us(server_us);
                    tally.network_hist.record_us(measured_us - server_us);
                    for (stage, ms) in &acked_timing[..acked_timing.len() - 1] {
                        tally
                            .stage_hists
                            .entry(stage.clone())
                            .or_default()
                            .record_us((ms * 1e3) as u64);
                    }
                }
            }
            tally.measure_statements += plan.config.batch_size as u64;
            let start_us = started.duration_since(t0).as_micros() as u64;
            let acked_us = acked.duration_since(t0).as_micros() as u64;
            tally.measure_first_us = Some(tally.measure_first_us.unwrap_or(start_us).min(start_us));
            tally.measure_last_us = Some(tally.measure_last_us.unwrap_or(0).max(acked_us));
        }
        completed.fetch_add(1, Ordering::SeqCst);
    }
    tally.reconnects = conn.reconnects();
    Ok(tally)
}
