//! Load-generator integration against a live daemon.
//!
//! The replay-identity test is the tentpole contract: a fixed seed
//! replays bit-identically — a concurrent 4-connection run and a serial
//! 1-connection reference leave the server in byte-identical state,
//! because the plan fixes per-tenant `seq` stamps and the server's
//! sequencers apply them in order no matter how the sockets race.
//!
//! The `#[ignore]`d soak test is the CI sustained-load job (DESIGN.md
//! §15): ~30 s of open-loop Zipf traffic with a mid-run mix shift over
//! durability-enabled ingest, asserting zero unexpected 5xx and that the
//! provoked drift excursion alerts exactly once (and, under
//! `ISUM_DRIFT_ACTION=resummarize`, rebuilds the summary exactly once).

use std::time::Duration;

use isum_loadgen::{run, LoadPlan, Mode, PlanConfig, RunConfig};
use isum_server::{Client, Server, ServerConfig};
use isum_workload::gen::tpch_catalog;

fn boot(configure: impl FnOnce(&mut ServerConfig)) -> (Server, Client) {
    let mut cfg = ServerConfig::new(tpch_catalog(1));
    configure(&mut cfg);
    let server = Server::bind("127.0.0.1:0", cfg).expect("binds");
    let client = Client::new(server.addr().to_string()).with_timeout(Duration::from_secs(30));
    (server, client)
}

fn small_plan() -> LoadPlan {
    let mut cfg = PlanConfig::new(5);
    cfg.tenants = 3;
    cfg.templates = 8;
    cfg.batch_size = 4;
    cfg.warmup_batches = 2;
    cfg.measure_batches = 12;
    cfg.soak_batches = 2;
    cfg.mix_shift_at = Some(9);
    LoadPlan::generate(&cfg)
}

#[test]
fn concurrent_run_replays_bit_identically_to_a_serial_reference() {
    let plan = small_plan();
    let (server_a, a) = boot(|_| {});
    let (server_b, b) = boot(|_| {});

    let mut concurrent = RunConfig::new(server_a.addr().to_string());
    concurrent.connections = 4;
    concurrent.summary_poll_ms = Some(20);
    let mut serial = RunConfig::new(server_b.addr().to_string());
    serial.connections = 1;
    serial.summary_poll_ms = None;

    let report_a = run(&plan, &concurrent).expect("concurrent run completes");
    let report_b = run(&plan, &serial).expect("serial run completes");

    assert_eq!(report_a.fingerprint, report_b.fingerprint, "same seed, same wire bytes");
    assert_eq!(report_a.acked_batches, plan.batches.len() as u64, "every batch delivered");
    assert_eq!(report_b.acked_batches, plan.batches.len() as u64);
    assert_eq!(report_a.unexpected_5xx, 0, "only documented backpressure may appear");
    assert_eq!(report_b.unexpected_5xx, 0);
    assert_eq!(report_a.reconnects, 0, "keep-alive sockets are reused for the whole run");
    assert!(report_a.ingest_hist.count() > 0, "measure window recorded latencies");
    assert!(
        report_a.summary_hist.count() > 0,
        "the concurrent poller sampled /summary during the run"
    );
    assert!(report_a.ingest_statements_per_sec() > 0.0);

    // The server-side witness: per-tenant observed counts and summaries
    // are byte-identical between the racing run and the serial one.
    drop((a, b));
    for tenant in ["default", "lt1", "lt2"] {
        let pin = |server: &Server| {
            Client::new(server.addr().to_string())
                .with_timeout(Duration::from_secs(30))
                .with_tenant(tenant)
                .expect("tenant pin")
        };
        let ta = pin(&server_a);
        let tb = pin(&server_b);
        let sa = ta.status(None).expect("status a");
        let sb = tb.status(None).expect("status b");
        assert_eq!(
            sa.field("observed").and_then(|v| v.as_u64()),
            sb.field("observed").and_then(|v| v.as_u64()),
            "tenant {tenant} observed the same statements"
        );
        for k in [1usize, 4] {
            let qa = ta.summary(k).expect("summary a");
            let qb = tb.summary(k).expect("summary b");
            assert_eq!(qa.status, 200, "{}", qa.body);
            assert_eq!(
                qa.body, qb.body,
                "tenant {tenant} k={k}: concurrency must not perturb state"
            );
        }
    }

    server_a.shutdown();
    server_b.shutdown();
    server_a.join();
    server_b.join();
}

#[test]
fn open_loop_latency_is_charged_from_the_schedule() {
    // One connection, a rate the server can trivially sustain: the run
    // must take at least total_batches / rate seconds (pacing is real)
    // and every batch must still be delivered.
    let mut cfg = PlanConfig::new(9);
    cfg.tenants = 1;
    cfg.templates = 4;
    cfg.batch_size = 2;
    cfg.warmup_batches = 1;
    cfg.measure_batches = 8;
    cfg.soak_batches = 1;
    cfg.mix_shift_at = None;
    let plan = LoadPlan::generate(&cfg);
    let (server, _client) = boot(|_| {});
    let mut run_config = RunConfig::new(server.addr().to_string());
    run_config.connections = 1;
    run_config.summary_poll_ms = None;
    run_config.mode = Mode::Open { batches_per_sec: 20.0 };
    let t0 = std::time::Instant::now();
    let report = run(&plan, &run_config).expect("open-loop run completes");
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(report.acked_batches, plan.batches.len() as u64);
    assert!(
        elapsed >= (plan.batches.len() - 1) as f64 / 20.0,
        "open loop paces sends: {elapsed:.3}s for {} batches at 20/s",
        plan.batches.len()
    );
    server.shutdown();
    server.join();
}

/// The CI soak: ~30 s of paced sustained load with durability on.
/// Ignored by default (`cargo test -- --ignored` runs it); the drift
/// trajectory depends only on the seeded statement stream, not on
/// pacing, so the alert count is deterministic.
#[test]
#[ignore = "30s sustained soak; run explicitly (CI soak job)"]
fn soak_sustained_load_alerts_exactly_once() {
    let mut plan_cfg = PlanConfig::new(42);
    plan_cfg.tenants = 1;
    plan_cfg.templates = 12;
    plan_cfg.batch_size = 4;
    plan_cfg.warmup_batches = 16;
    plan_cfg.measure_batches = 192;
    plan_cfg.soak_batches = 32;
    plan_cfg.mix_shift_at = Some(176);
    let plan = LoadPlan::generate(&plan_cfg);

    let dir = std::env::temp_dir().join(format!("isum_soak_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    // The CI resummarize step sets ISUM_DRIFT_ACTION; window and
    // threshold are pinned here to match the seeded plan.
    let mut cfg = ServerConfig::new(tpch_catalog(1)).apply_drift_env();
    cfg.drift_window = 128;
    cfg.drift_threshold = 0.35;
    cfg.checkpoint = Some(dir.join("ckpt.json"));
    let server = Server::bind("127.0.0.1:0", cfg).expect("binds");
    let client = Client::new(server.addr().to_string()).with_timeout(Duration::from_secs(30));

    let mut run_config = RunConfig::new(server.addr().to_string());
    run_config.connections = 4;
    run_config.summary_poll_ms = Some(100);
    // 4 connections x 2 batches/s = 8 batches/s over 240 batches ≈ 30 s.
    run_config.mode = Mode::Open { batches_per_sec: 2.0 };
    let report = run(&plan, &run_config).expect("soak completes");

    assert_eq!(report.acked_batches, plan.batches.len() as u64, "every batch delivered");
    assert_eq!(report.unexpected_5xx, 0, "no 5xx beyond the documented backpressure vocabulary");
    assert!(report.summary_hist.count() > 0, "summary stayed responsive under load");

    let status = client.status(None).expect("status");
    let drift = status.field("drift").expect("drift block");
    assert_eq!(
        drift.get("alerts").and_then(|v| v.as_u64()),
        Some(1),
        "the provoked mix shift alerts exactly once: {}",
        status.body
    );
    if drift.get("action").and_then(|v| v.as_str()) == Some("resummarize") {
        assert_eq!(
            drift.get("resummarizes").and_then(|v| v.as_u64()),
            Some(1),
            "one excursion, one rebuild: {}",
            status.body
        );
    }

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
