//! The cost model: access paths, join ordering, aggregation and sort costs.
//!
//! Costs are unitless "optimizer cost units" like SQL Server's; only
//! *relative* behaviour matters (who wins, by what factor). The model
//! captures the effects indexes actually have:
//!
//! * a seek on a key prefix replaces a scan, paying per *matched* row;
//! * covering indexes avoid per-row RID lookups and allow narrow
//!   index-only scans;
//! * indexes on join columns enable index-nested-loop joins that beat hash
//!   joins when the outer side is small;
//! * indexes whose leading key matches the grouping/ordering discharge
//!   sorts.

use isum_catalog::Catalog;
use isum_common::{ColumnId, TableId};
use isum_sql::{BoundJoin, BoundQuery};

use crate::index::{Index, IndexConfig};
use crate::plan::PlanNode;

/// Cost of sequentially reading one page.
pub const IO_PAGE: f64 = 1.0;
/// Cost of one random page access (seeks, RID lookups).
pub const RAND_IO: f64 = 4.0;
/// CPU cost of processing one row.
pub const CPU_ROW: f64 = 0.002;
/// B-tree descent cost (root-to-leaf).
pub const SEEK_BASE: f64 = 3.0 * RAND_IO;
/// Per-row hash-join build cost.
pub const HASH_BUILD: f64 = 0.004;
/// Per-row hash-join probe cost.
pub const HASH_PROBE: f64 = 0.002;
/// Per-row aggregation cost.
pub const CPU_AGG: f64 = 0.004;

/// Per-query cost breakdown, useful for debugging and the ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryCostBreakdown {
    /// Sum of access-path costs for all table instances.
    pub access: f64,
    /// Join (hash build/probe or nested-loop seek) costs.
    pub join: f64,
    /// Aggregation cost.
    pub aggregate: f64,
    /// Sort cost (zero when discharged by an index ordering).
    pub sort: f64,
}

impl QueryCostBreakdown {
    /// Total cost.
    pub fn total(&self) -> f64 {
        self.access + self.join + self.aggregate + self.sort
    }
}

/// The stateless cost model over a catalog.
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    catalog: &'a Catalog,
}

/// Result of access-path selection for one slot.
#[derive(Debug, Clone)]
struct AccessPath {
    cost: f64,
    /// Rows produced after applying all local predicates.
    out_rows: f64,
    /// Leading key column when the output is ordered by an index.
    ordered_by: Option<ColumnId>,
    /// The physical operator this path corresponds to.
    node: PlanNode,
}

/// Per-slot predicate summary extracted from a [`BoundQuery`].
#[derive(Debug, Clone)]
struct SlotInfo {
    table: TableId,
    rows: f64,
    /// Product of conjunctive filter selectivities.
    filter_sel: f64,
    /// Sargable equality predicates: (column, selectivity).
    eq: Vec<(ColumnId, f64)>,
    /// Sargable range predicates: (column, selectivity).
    range: Vec<(ColumnId, f64)>,
    /// Every column of this slot the query touches (covering check).
    used: Vec<ColumnId>,
    /// Join columns on this slot (for INL eligibility).
    join_cols: Vec<ColumnId>,
}

impl<'a> CostModel<'a> {
    /// Creates a model over a catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self { catalog }
    }

    /// Costs a bound query under a hypothetical index configuration.
    pub fn cost(&self, q: &BoundQuery, cfg: &IndexConfig) -> f64 {
        self.cost_breakdown(q, cfg).total()
    }

    /// Costs a bound query, returning the component breakdown.
    pub fn cost_breakdown(&self, q: &BoundQuery, cfg: &IndexConfig) -> QueryCostBreakdown {
        self.build(q, cfg).1
    }

    /// The physical plan the model priced — this library's `EXPLAIN`.
    /// Returns `None` for queries without table references.
    pub fn plan(&self, q: &BoundQuery, cfg: &IndexConfig) -> Option<PlanNode> {
        self.build(q, cfg).0
    }

    /// Builds the plan and its cost breakdown together, guaranteeing the
    /// two always agree.
    fn build(&self, q: &BoundQuery, cfg: &IndexConfig) -> (Option<PlanNode>, QueryCostBreakdown) {
        let slots = self.analyze_slots(q);
        if slots.is_empty() {
            return (None, QueryCostBreakdown::default());
        }
        let mut bd = QueryCostBreakdown::default();

        // Access path per slot.
        let paths: Vec<AccessPath> = slots.iter().map(|s| self.best_access_path(s, cfg)).collect();

        // Greedy join order: start from the smallest output, repeatedly take
        // the connected slot with the smallest output (falling back to a
        // cross product only when the graph is disconnected).
        let n = slots.len();
        let mut joined = vec![false; n];
        let start = (0..n)
            .min_by(|&a, &b| paths[a].out_rows.partial_cmp(&paths[b].out_rows).expect("finite"))
            .expect("non-empty");
        joined[start] = true;
        bd.access += paths[start].cost;
        let mut current_rows = paths[start].out_rows;
        let mut tree = paths[start].node.clone();
        let mut last_order: Option<(usize, ColumnId)> = paths[start].ordered_by.map(|c| (start, c));

        for _ in 1..n {
            // Pick the next slot: connected ones first, smallest output first.
            let next = (0..n)
                .filter(|&i| !joined[i])
                .min_by_key(|&i| {
                    let connected = connecting_edges(q, &joined, i).next().is_some();
                    (!connected, ordered_float(paths[i].out_rows))
                })
                .expect("remaining slot");
            let edges: Vec<&BoundJoin> = connecting_edges(q, &joined, next).collect();
            let s = &slots[next];
            let p = &paths[next];
            if edges.is_empty() {
                // Cross product (rare; keeps disconnected graphs costable).
                bd.access += p.cost;
                let join_cost = HASH_PROBE * (current_rows + p.out_rows);
                bd.join += join_cost;
                current_rows *= p.out_rows.max(1.0);
                tree = PlanNode::CrossJoin {
                    left: Box::new(tree),
                    right: Box::new(p.node.clone()),
                    rows: current_rows,
                    cost: join_cost,
                };
                joined[next] = true;
                last_order = None;
                continue;
            }
            let edge_sel: f64 = edges.iter().map(|e| e.selectivity).product();
            let semi = edges.iter().any(|e| e.semi);
            let mut result = current_rows * p.out_rows * edge_sel;
            if semi {
                result = result.min(current_rows);
            }
            // Hash join: build the smaller side, probe with both.
            let hash_cost = p.cost
                + HASH_BUILD * current_rows.min(p.out_rows)
                + HASH_PROBE * (current_rows + p.out_rows);
            // Index nested loop: requires an index whose leading key is one
            // of the join columns of this slot.
            let best_inl: Option<(f64, &Index)> = edges
                .iter()
                .filter_map(|e| {
                    let col =
                        if e.left.slot == next { e.left.gid.column } else { e.right.gid.column };
                    self.inl_seek_cost(s, col, cfg, edge_sel)
                })
                .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite costs"));
            let inl_cost = best_inl.map_or(f64::INFINITY, |(per_row, _)| per_row * current_rows);
            current_rows = result.max(0.0);
            if inl_cost < hash_cost {
                bd.join += inl_cost;
                let (_, ix) = best_inl.expect("finite INL cost implies an index");
                tree = PlanNode::IndexNestedLoopJoin {
                    outer: Box::new(tree),
                    table: s.table,
                    index: ix.clone(),
                    rows: current_rows,
                    cost: inl_cost,
                };
            } else {
                bd.access += p.cost;
                bd.join += hash_cost - p.cost;
                tree = PlanNode::HashJoin {
                    left: Box::new(tree),
                    right: Box::new(p.node.clone()),
                    semi,
                    rows: current_rows,
                    cost: hash_cost - p.cost,
                };
            }
            joined[next] = true;
            last_order = None;
        }

        // Aggregation.
        if q.n_aggregates > 0 || !q.group_by.is_empty() {
            bd.aggregate = current_rows * CPU_AGG;
            if !q.group_by.is_empty() {
                let groups: f64 = q
                    .group_by
                    .iter()
                    .map(|g| self.catalog.column(g.gid).stats.distinct as f64)
                    .product::<f64>()
                    .min(current_rows);
                current_rows = groups.max(1.0);
            } else {
                current_rows = 1.0;
            }
            tree = PlanNode::HashAggregate {
                input: Box::new(tree),
                groups: q.group_by.len(),
                rows: current_rows,
                cost: bd.aggregate,
            };
        }

        // Sort: discharged when the (single-table) access path already
        // delivers the order-by leading column's order.
        if !q.order_by.is_empty() && current_rows > 1.0 {
            let discharged = n == 1
                && matches!(
                    (last_order, q.order_by.first()),
                    (Some((slot, col)), Some(ob)) if ob.slot == slot && ob.gid.column == col
                );
            if !discharged {
                bd.sort = current_rows * current_rows.max(2.0).log2() * CPU_ROW;
                tree = PlanNode::Sort { input: Box::new(tree), rows: current_rows, cost: bd.sort };
            }
        }
        (Some(tree), bd)
    }

    /// Analyzes the query into per-slot predicate summaries.
    fn analyze_slots(&self, q: &BoundQuery) -> Vec<SlotInfo> {
        let mut slots: Vec<SlotInfo> = q
            .tables
            .iter()
            .map(|t| SlotInfo {
                table: t.table,
                rows: self.catalog.table(t.table).row_count as f64,
                filter_sel: 1.0,
                eq: Vec::new(),
                range: Vec::new(),
                used: Vec::new(),
                join_cols: Vec::new(),
            })
            .collect();
        let touch = |slots: &mut Vec<SlotInfo>, slot: usize, col: ColumnId| {
            let used = &mut slots[slot].used;
            if !used.contains(&col) {
                used.push(col);
            }
        };
        for f in &q.filters {
            let s = f.column.slot;
            touch(&mut slots, s, f.column.gid.column);
            if !f.in_disjunction {
                slots[s].filter_sel *= f.selectivity;
            } else {
                // Disjunctive filters restrict weakly; apply the square root
                // so OR-heavy queries (TPC-H Q19) still see some reduction.
                slots[s].filter_sel *= f.selectivity.sqrt();
            }
            if f.sargable && !f.in_disjunction {
                use isum_sql::FilterKind::*;
                match f.kind {
                    Eq | InList | Like | Null => {
                        slots[s].eq.push((f.column.gid.column, f.selectivity))
                    }
                    Range => slots[s].range.push((f.column.gid.column, f.selectivity)),
                    _ => {}
                }
            }
        }
        for j in &q.joins {
            for bc in [j.left, j.right] {
                touch(&mut slots, bc.slot, bc.gid.column);
                slots[bc.slot].join_cols.push(bc.gid.column);
            }
        }
        for g in q.group_by.iter().chain(&q.order_by).chain(&q.projections) {
            touch(&mut slots, g.slot, g.gid.column);
        }
        for s in &mut slots {
            s.filter_sel = s.filter_sel.clamp(0.0, 1.0);
        }
        slots
    }

    /// Chooses the cheapest access path for one slot.
    fn best_access_path(&self, s: &SlotInfo, cfg: &IndexConfig) -> AccessPath {
        let table = self.catalog.table(s.table);
        let out_rows = (s.rows * s.filter_sel).max(0.0);
        // Heap scan baseline.
        let scan_cost = table.pages() as f64 * IO_PAGE + s.rows * CPU_ROW;
        let mut best = AccessPath {
            cost: scan_cost,
            out_rows,
            ordered_by: None,
            node: PlanNode::SeqScan { table: s.table, rows: out_rows, cost: scan_cost },
        };
        for ix in cfg.on_table(s.table) {
            if let Some(p) = self.index_path(s, ix, out_rows) {
                if p.cost < best.cost {
                    best = p;
                }
            }
        }
        best
    }

    /// Costs one index for a slot: seek on the matched key prefix, or a
    /// covering index-only scan; `None` when the index is useless here.
    fn index_path(&self, s: &SlotInfo, ix: &Index, out_rows: f64) -> Option<AccessPath> {
        let covering = s.used.iter().all(|c| ix.contains(*c));
        // Key-prefix matching: consume equality predicates along the prefix,
        // then at most one range predicate.
        let mut matched_sel = 1.0;
        let mut matched_any = false;
        for &col in &ix.key_columns {
            if let Some(&(_, sel)) = s.eq.iter().find(|(c, _)| *c == col) {
                matched_sel *= sel;
                matched_any = true;
                continue;
            }
            if let Some(&(_, sel)) = s.range.iter().find(|(c, _)| *c == col) {
                matched_sel *= sel;
                matched_any = true;
            }
            break;
        }
        let ix_pages = ix.pages(self.catalog) as f64;
        if matched_any {
            let matched_rows = s.rows * matched_sel;
            let leaf_io = (ix_pages * matched_sel).max(1.0) * IO_PAGE;
            let lookup = if covering { 0.0 } else { matched_rows * RAND_IO };
            let cost = SEEK_BASE + leaf_io + matched_rows * CPU_ROW + lookup;
            Some(AccessPath {
                cost,
                out_rows,
                ordered_by: Some(ix.leading()),
                node: PlanNode::IndexSeek {
                    table: s.table,
                    index: ix.clone(),
                    covering,
                    rows: out_rows,
                    cost,
                },
            })
        } else if covering {
            // Index-only scan: narrower than the heap.
            let cost = ix_pages * IO_PAGE + s.rows * CPU_ROW;
            Some(AccessPath {
                cost,
                out_rows,
                ordered_by: Some(ix.leading()),
                node: PlanNode::IndexOnlyScan {
                    table: s.table,
                    index: ix.clone(),
                    rows: out_rows,
                    cost,
                },
            })
        } else {
            None
        }
    }

    /// Per-outer-row cost of an index-nested-loop probe into this slot via
    /// `join_col`; `None` when no index has that leading key.
    fn inl_seek_cost<'c>(
        &self,
        s: &SlotInfo,
        join_col: ColumnId,
        cfg: &'c IndexConfig,
        edge_sel: f64,
    ) -> Option<(f64, &'c Index)> {
        let ix = cfg.on_table(s.table).find(|ix| ix.leading() == join_col)?;
        let covering = s.used.iter().all(|c| ix.contains(*c));
        let matches = (s.rows * edge_sel * s.filter_sel).max(0.0);
        let lookup = if covering { 0.0 } else { matches * RAND_IO };
        Some((2.0 * RAND_IO + matches * CPU_ROW + lookup, ix))
    }
}

/// Edges between `slot` and the already-joined set.
fn connecting_edges<'q>(
    q: &'q BoundQuery,
    joined: &'q [bool],
    slot: usize,
) -> impl Iterator<Item = &'q BoundJoin> {
    q.joins.iter().filter(move |j| {
        (j.left.slot == slot && joined[j.right.slot])
            || (j.right.slot == slot && joined[j.left.slot])
    })
}

fn ordered_float(f: f64) -> u64 {
    // Total order for non-negative finite floats via the IEEE bit trick.
    f.max(0.0).to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_catalog::CatalogBuilder;
    use isum_sql::{parse, Binder};

    fn catalog() -> Catalog {
        CatalogBuilder::new()
            .table("orders", 1_500_000)
            .col_key("o_orderkey")
            .col_int("o_custkey", 100_000, 1, 150_000)
            .col_date("o_orderdate", 8035, 10_591)
            .col_float("o_totalprice", 1_000_000, 850.0, 560_000.0)
            .finish()
            .unwrap()
            .table("lineitem", 6_000_000)
            .col_int("l_orderkey", 1_500_000, 1, 1_500_000)
            .col_float("l_quantity", 50, 1.0, 50.0)
            .col_date("l_shipdate", 8035, 10_591)
            .col_float("l_extendedprice", 900_000, 900.0, 105_000.0)
            .finish()
            .unwrap()
            .build()
    }

    fn bound(c: &Catalog, sql: &str) -> BoundQuery {
        Binder::new(c).bind(&parse(sql).unwrap()).unwrap()
    }

    fn orders_ix(c: &Catalog, cols: &[&str]) -> Index {
        let t = c.table_id("orders").unwrap();
        let tab = c.table(t);
        Index::new(t, cols.iter().map(|n| tab.column_id(n).unwrap()).collect())
    }

    fn lineitem_ix(c: &Catalog, cols: &[&str]) -> Index {
        let t = c.table_id("lineitem").unwrap();
        let tab = c.table(t);
        Index::new(t, cols.iter().map(|n| tab.column_id(n).unwrap()).collect())
    }

    #[test]
    fn selective_filter_index_beats_scan() {
        let c = catalog();
        let m = CostModel::new(&c);
        let q = bound(&c, "SELECT o_totalprice FROM orders WHERE o_custkey = 42");
        let base = m.cost(&q, &IndexConfig::empty());
        let with = m.cost(&q, &IndexConfig::from_indexes([orders_ix(&c, &["o_custkey"])]));
        assert!(with < base / 10.0, "seek {with} should crush scan {base}");
    }

    #[test]
    fn unselective_range_prefers_scan() {
        let c = catalog();
        let m = CostModel::new(&c);
        // 90% of the table: lookups would dominate; scan must win.
        let q = bound(&c, "SELECT o_totalprice FROM orders WHERE o_orderdate >= DATE '1992-09-01'");
        let base = m.cost(&q, &IndexConfig::empty());
        let with = m.cost(&q, &IndexConfig::from_indexes([orders_ix(&c, &["o_orderdate"])]));
        assert!((with - base).abs() < 1e-9, "optimizer must not regress: {with} vs {base}");
    }

    #[test]
    fn covering_index_avoids_lookups() {
        let c = catalog();
        let m = CostModel::new(&c);
        let q = bound(
            &c,
            "SELECT o_totalprice FROM orders WHERE o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1995-03-31'",
        );
        let narrow = m.cost(&q, &IndexConfig::from_indexes([orders_ix(&c, &["o_orderdate"])]));
        let covering = m.cost(
            &q,
            &IndexConfig::from_indexes([orders_ix(&c, &["o_orderdate", "o_totalprice"])]),
        );
        assert!(covering < narrow, "covering {covering} vs lookups {narrow}");
    }

    #[test]
    fn multi_column_index_matches_eq_prefix_then_range() {
        let c = catalog();
        let m = CostModel::new(&c);
        let q = bound(
            &c,
            "SELECT o_orderkey FROM orders WHERE o_custkey = 7 AND o_orderdate < DATE '1994-01-01'",
        );
        let single = m.cost(&q, &IndexConfig::from_indexes([orders_ix(&c, &["o_custkey"])]));
        let compound =
            m.cost(&q, &IndexConfig::from_indexes([orders_ix(&c, &["o_custkey", "o_orderdate"])]));
        assert!(compound < single, "compound {compound} vs single {single}");
    }

    #[test]
    fn join_index_enables_nested_loops() {
        let c = catalog();
        let m = CostModel::new(&c);
        let q = bound(
            &c,
            "SELECT o_orderkey FROM orders, lineitem \
             WHERE o_orderkey = l_orderkey AND o_custkey = 42",
        );
        let base = m.cost(&q, &IndexConfig::empty());
        let cfg = IndexConfig::from_indexes([
            orders_ix(&c, &["o_custkey"]),
            lineitem_ix(&c, &["l_orderkey"]),
        ]);
        let with = m.cost(&q, &cfg);
        assert!(with < base / 20.0, "selective INL {with} vs hash over scans {base}");
    }

    #[test]
    fn sort_discharged_by_matching_index_order() {
        let c = catalog();
        let m = CostModel::new(&c);
        let q =
            bound(&c, "SELECT o_custkey FROM orders WHERE o_custkey > 140000 ORDER BY o_custkey");
        let bd_scan = m.cost_breakdown(&q, &IndexConfig::empty());
        assert!(bd_scan.sort > 0.0);
        let bd_ix =
            m.cost_breakdown(&q, &IndexConfig::from_indexes([orders_ix(&c, &["o_custkey"])]));
        assert_eq!(bd_ix.sort, 0.0, "index order discharges the sort");
    }

    #[test]
    fn aggregation_adds_cost_and_groups_reduce_rows() {
        let c = catalog();
        let m = CostModel::new(&c);
        let plain = bound(&c, "SELECT o_orderkey FROM orders");
        let agg = bound(&c, "SELECT count(*) FROM orders GROUP BY o_custkey");
        let bd_plain = m.cost_breakdown(&plain, &IndexConfig::empty());
        let bd_agg = m.cost_breakdown(&agg, &IndexConfig::empty());
        assert_eq!(bd_plain.aggregate, 0.0);
        assert!(bd_agg.aggregate > 0.0);
    }

    #[test]
    fn cost_is_monotone_in_indexes() {
        // Adding an index can never increase estimated cost (the optimizer
        // can ignore it) — a key invariant for greedy enumeration.
        let c = catalog();
        let m = CostModel::new(&c);
        let q = bound(
            &c,
            "SELECT o_orderkey, count(*) FROM orders, lineitem \
             WHERE o_orderkey = l_orderkey AND l_quantity < 5 AND o_orderdate > DATE '1997-01-01' \
             GROUP BY o_orderkey ORDER BY o_orderkey",
        );
        let mut cfg = IndexConfig::empty();
        let mut prev = m.cost(&q, &cfg);
        for ix in [
            lineitem_ix(&c, &["l_quantity"]),
            orders_ix(&c, &["o_orderdate"]),
            lineitem_ix(&c, &["l_orderkey"]),
            orders_ix(&c, &["o_orderkey", "o_orderdate"]),
        ] {
            cfg.add(ix);
            let now = m.cost(&q, &cfg);
            assert!(now <= prev + 1e-9, "cost regressed: {now} > {prev}");
            prev = now;
        }
    }

    #[test]
    fn irrelevant_index_changes_nothing() {
        let c = catalog();
        let m = CostModel::new(&c);
        let q = bound(&c, "SELECT l_quantity FROM lineitem WHERE l_quantity < 2");
        let base = m.cost(&q, &IndexConfig::empty());
        let with = m.cost(&q, &IndexConfig::from_indexes([orders_ix(&c, &["o_custkey"])]));
        assert_eq!(base, with);
    }

    #[test]
    fn semi_join_caps_cardinality() {
        let c = catalog();
        let m = CostModel::new(&c);
        let q = bound(
            &c,
            "SELECT o_orderkey FROM orders WHERE o_orderkey IN \
             (SELECT l_orderkey FROM lineitem WHERE l_quantity > 49)",
        );
        // Mostly a sanity check: costable, positive, finite.
        let cost = m.cost(&q, &IndexConfig::empty());
        assert!(cost.is_finite() && cost > 0.0);
    }

    #[test]
    fn breakdown_totals_add_up() {
        let c = catalog();
        let m = CostModel::new(&c);
        let q = bound(
            &c,
            "SELECT o_custkey, count(*) FROM orders, lineitem \
             WHERE o_orderkey = l_orderkey GROUP BY o_custkey ORDER BY o_custkey",
        );
        let bd = m.cost_breakdown(&q, &IndexConfig::empty());
        assert!((bd.total() - (bd.access + bd.join + bd.aggregate + bd.sort)).abs() < 1e-12);
        assert!(bd.access > 0.0 && bd.join > 0.0);
    }
}
