//! Hypothetical index definitions and configurations.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use isum_catalog::Catalog;
use isum_common::{ColumnId, TableId};

/// A (hypothetical) B-tree index: an ordered list of key columns on one
/// table. Equality on `(table, key_columns)` defines index identity, which
/// is what configuration enumeration deduplicates on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Index {
    /// Indexed table.
    pub table: TableId,
    /// Key columns in index order (leading column first).
    pub key_columns: Vec<ColumnId>,
}

impl Index {
    /// Creates an index; duplicate key columns are removed (keeping first
    /// occurrence) so rule-generated combinations are always well-formed.
    pub fn new(table: TableId, key_columns: Vec<ColumnId>) -> Self {
        let mut seen = Vec::new();
        let mut cols = Vec::with_capacity(key_columns.len());
        for c in key_columns {
            if !seen.contains(&c) {
                seen.push(c);
                cols.push(c);
            }
        }
        assert!(!cols.is_empty(), "index needs at least one key column");
        Self { table, key_columns: cols }
    }

    /// Leading key column.
    pub fn leading(&self) -> ColumnId {
        self.key_columns[0]
    }

    /// True when `col` is among the key columns.
    pub fn contains(&self, col: ColumnId) -> bool {
        self.key_columns.contains(&col)
    }

    /// Estimated size in bytes: one entry per row holding the key columns
    /// plus a row locator, matching how advisors charge storage budgets.
    pub fn size_bytes(&self, catalog: &Catalog) -> u64 {
        let t = catalog.table(self.table);
        let key_width: u64 =
            self.key_columns.iter().map(|&c| t.column(c).stats.avg_width as u64).sum();
        t.row_count * (key_width + 12)
    }

    /// Leaf pages of the index under the catalog page size.
    pub fn pages(&self, catalog: &Catalog) -> u64 {
        self.size_bytes(catalog).div_ceil(isum_catalog::schema::PAGE_SIZE).max(1)
    }

    /// Human-readable rendering, e.g. `lineitem(l_shipdate, l_quantity)`.
    pub fn display(&self, catalog: &Catalog) -> String {
        let t = catalog.table(self.table);
        let cols: Vec<&str> = self.key_columns.iter().map(|&c| t.column(c).name.as_str()).collect();
        format!("{}({})", t.name, cols.join(", "))
    }
}

/// A set of hypothetical indexes with per-table lookup.
#[derive(Debug, Clone, Default)]
pub struct IndexConfig {
    indexes: Vec<Index>,
    by_table: HashMap<TableId, Vec<usize>>,
}

impl IndexConfig {
    /// Empty configuration (the existing physical design: heaps only).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a configuration from indexes, deduplicating exact repeats.
    pub fn from_indexes(indexes: impl IntoIterator<Item = Index>) -> Self {
        let mut cfg = Self::default();
        for i in indexes {
            cfg.add(i);
        }
        cfg
    }

    /// Adds an index; returns false when an identical index was present.
    pub fn add(&mut self, index: Index) -> bool {
        if self.indexes.contains(&index) {
            return false;
        }
        let idx = self.indexes.len();
        self.by_table.entry(index.table).or_default().push(idx);
        self.indexes.push(index);
        true
    }

    /// Removes an index by identity; returns true when it was present.
    pub fn remove(&mut self, index: &Index) -> bool {
        match self.indexes.iter().position(|i| i == index) {
            Some(pos) => {
                self.indexes.remove(pos);
                self.by_table.clear();
                for (i, ix) in self.indexes.iter().enumerate() {
                    self.by_table.entry(ix.table).or_default().push(i);
                }
                true
            }
            None => false,
        }
    }

    /// All indexes.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Indexes on one table.
    pub fn on_table(&self, table: TableId) -> impl Iterator<Item = &Index> {
        self.by_table.get(&table).into_iter().flatten().map(move |&i| &self.indexes[i])
    }

    /// Number of indexes.
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// True when no indexes are configured.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    /// True when an identical index is present.
    pub fn contains(&self, index: &Index) -> bool {
        self.indexes.contains(index)
    }

    /// Total storage of the configuration in bytes.
    pub fn total_bytes(&self, catalog: &Catalog) -> u64 {
        self.indexes.iter().map(|i| i.size_bytes(catalog)).sum()
    }

    /// Order-insensitive fingerprint of the indexes relevant to `tables`;
    /// used as the what-if cache key.
    pub fn fingerprint_for(&self, tables: &[TableId]) -> u64 {
        let mut hashes: Vec<u64> = Vec::new();
        for &t in tables {
            for ix in self.on_table(t) {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                ix.hash(&mut h);
                hashes.push(h.finish());
            }
        }
        hashes.sort_unstable();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        hashes.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_catalog::CatalogBuilder;

    fn catalog() -> Catalog {
        CatalogBuilder::new()
            .table("t", 1000)
            .col_key("a")
            .col_int("b", 100, 0, 100)
            .col_int("c", 10, 0, 10)
            .finish()
            .unwrap()
            .table("u", 10)
            .col_key("x")
            .finish()
            .unwrap()
            .build()
    }

    #[test]
    fn index_dedups_key_columns() {
        let i = Index::new(TableId(0), vec![ColumnId(1), ColumnId(0), ColumnId(1)]);
        assert_eq!(i.key_columns, vec![ColumnId(1), ColumnId(0)]);
        assert_eq!(i.leading(), ColumnId(1));
        assert!(i.contains(ColumnId(0)));
        assert!(!i.contains(ColumnId(9)));
    }

    #[test]
    #[should_panic(expected = "at least one key column")]
    fn empty_index_panics() {
        let _ = Index::new(TableId(0), vec![]);
    }

    #[test]
    fn size_scales_with_rows_and_width() {
        let c = catalog();
        let t = c.table_id("t").unwrap();
        let one = Index::new(t, vec![ColumnId(0)]);
        let two = Index::new(t, vec![ColumnId(0), ColumnId(1)]);
        assert_eq!(one.size_bytes(&c), 1000 * 20);
        assert_eq!(two.size_bytes(&c), 1000 * 28);
        assert!(two.pages(&c) >= one.pages(&c));
        assert_eq!(one.display(&c), "t(a)");
    }

    #[test]
    fn config_dedup_and_lookup() {
        let c = catalog();
        let t = c.table_id("t").unwrap();
        let u = c.table_id("u").unwrap();
        let mut cfg = IndexConfig::empty();
        assert!(cfg.add(Index::new(t, vec![ColumnId(0)])));
        assert!(!cfg.add(Index::new(t, vec![ColumnId(0)])), "duplicate rejected");
        assert!(cfg.add(Index::new(t, vec![ColumnId(0), ColumnId(1)])));
        assert!(cfg.add(Index::new(u, vec![ColumnId(0)])));
        assert_eq!(cfg.len(), 3);
        assert_eq!(cfg.on_table(t).count(), 2);
        assert_eq!(cfg.on_table(u).count(), 1);
        assert_eq!(cfg.on_table(TableId(9)).count(), 0);
    }

    #[test]
    fn remove_keeps_lookup_consistent() {
        let c = catalog();
        let t = c.table_id("t").unwrap();
        let a = Index::new(t, vec![ColumnId(0)]);
        let b = Index::new(t, vec![ColumnId(1)]);
        let mut cfg = IndexConfig::from_indexes([a.clone(), b.clone()]);
        assert!(cfg.remove(&a));
        assert!(!cfg.remove(&a));
        assert_eq!(cfg.on_table(t).collect::<Vec<_>>(), vec![&b]);
    }

    #[test]
    fn fingerprint_is_order_insensitive_and_table_scoped() {
        let c = catalog();
        let t = c.table_id("t").unwrap();
        let u = c.table_id("u").unwrap();
        let a = Index::new(t, vec![ColumnId(0)]);
        let b = Index::new(t, vec![ColumnId(1)]);
        let z = Index::new(u, vec![ColumnId(0)]);
        let cfg1 = IndexConfig::from_indexes([a.clone(), b.clone(), z.clone()]);
        let cfg2 = IndexConfig::from_indexes([b, z.clone(), a]);
        assert_eq!(cfg1.fingerprint_for(&[t]), cfg2.fingerprint_for(&[t]));
        // Indexes on unrelated tables don't perturb the fingerprint.
        let cfg3 =
            IndexConfig::from_indexes(cfg1.indexes().iter().filter(|&i| i.table == t).cloned());
        assert_eq!(cfg1.fingerprint_for(&[t]), cfg3.fingerprint_for(&[t]));
        assert_ne!(cfg1.fingerprint_for(&[t, u]), cfg3.fingerprint_for(&[t, u]));
    }

    #[test]
    fn total_bytes_sums() {
        let c = catalog();
        let t = c.table_id("t").unwrap();
        let cfg = IndexConfig::from_indexes([
            Index::new(t, vec![ColumnId(0)]),
            Index::new(t, vec![ColumnId(1)]),
        ]);
        assert_eq!(cfg.total_bytes(&c), 2 * 1000 * 20);
    }
}
