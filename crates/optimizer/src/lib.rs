//! Cost-based what-if query optimizer.
//!
//! This crate is the substrate that replaces the commercial optimizer's
//! "what-if" API (Sec 2.1 of the ISUM paper, \[15\]): given a bound query and
//! a *hypothetical* [`IndexConfig`], it estimates the query's execution cost
//! without building anything. Every improvement number in the evaluation —
//! `C(q)`, `C_I(q)`, `Improvement (%)` — comes from this model, exactly as
//! the paper's numbers come from SQL Server's optimizer-estimated costs.
//!
//! The model is deliberately classical: per-table access-path selection
//! (heap scan vs. index seek vs. covering index-only scan with key-prefix
//! matching), greedy join ordering over the equi-join graph with hash-join /
//! index-nested-loop choice, and sort/aggregate costs that index orderings
//! can discharge. [`WhatIfOptimizer`] adds what production what-if
//! implementations add: an optimizer-call counter and a cost cache keyed by
//! the subset of indexes relevant to each query.

pub mod cost;
pub mod index;
pub mod plan;
pub mod whatif;

pub use cost::{CostModel, QueryCostBreakdown};
pub use index::{Index, IndexConfig};
pub use plan::PlanNode;
pub use whatif::{populate_costs, WhatIfBudget, WhatIfOptimizer};
