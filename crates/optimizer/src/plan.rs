//! Physical plan trees and EXPLAIN-style rendering.
//!
//! The cost model doesn't just produce a number — it materializes the
//! physical plan it priced (scans, seeks, join order and methods,
//! aggregation, sorts), so users can ask *why* a configuration helps:
//! [`crate::CostModel::plan`] is this library's `EXPLAIN`.

use isum_common::TableId;

use crate::index::Index;

/// A node of a physical plan. Every node carries the *incremental* cost it
/// adds (child costs excluded) and its output row estimate.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Sequential heap scan with residual filters applied.
    SeqScan {
        /// Scanned table.
        table: TableId,
        /// Output rows after local predicates.
        rows: f64,
        /// Node cost.
        cost: f64,
    },
    /// B-tree seek on a key prefix, optionally followed by RID lookups.
    IndexSeek {
        /// Base table.
        table: TableId,
        /// Index used.
        index: Index,
        /// True when the index covers every referenced column (no lookups).
        covering: bool,
        /// Output rows after local predicates.
        rows: f64,
        /// Node cost.
        cost: f64,
    },
    /// Full scan of a narrow covering index instead of the heap.
    IndexOnlyScan {
        /// Base table.
        table: TableId,
        /// Index scanned.
        index: Index,
        /// Output rows after local predicates.
        rows: f64,
        /// Node cost.
        cost: f64,
    },
    /// Hash join between the accumulated left side and a new right input.
    HashJoin {
        /// Accumulated input.
        left: Box<PlanNode>,
        /// Newly joined input.
        right: Box<PlanNode>,
        /// Semi-join flag (IN/EXISTS flattening).
        semi: bool,
        /// Output rows.
        rows: f64,
        /// Node cost (build + probe).
        cost: f64,
    },
    /// Index nested-loop join: for each outer row, seek into `index`.
    IndexNestedLoopJoin {
        /// Outer (driving) input.
        outer: Box<PlanNode>,
        /// Inner table.
        table: TableId,
        /// Index seeked per outer row.
        index: Index,
        /// Output rows.
        rows: f64,
        /// Node cost (all inner seeks).
        cost: f64,
    },
    /// Cross product (disconnected join graphs only).
    CrossJoin {
        /// Accumulated input.
        left: Box<PlanNode>,
        /// New input.
        right: Box<PlanNode>,
        /// Output rows.
        rows: f64,
        /// Node cost.
        cost: f64,
    },
    /// Hash aggregation (also models scalar aggregates, `groups = 0`).
    HashAggregate {
        /// Input plan.
        input: Box<PlanNode>,
        /// Number of grouping columns.
        groups: usize,
        /// Output rows.
        rows: f64,
        /// Node cost.
        cost: f64,
    },
    /// Sort for `ORDER BY` (absent when an index discharges the order).
    Sort {
        /// Input plan.
        input: Box<PlanNode>,
        /// Output rows.
        rows: f64,
        /// Node cost.
        cost: f64,
    },
}

impl PlanNode {
    /// This node's output row estimate.
    pub fn rows(&self) -> f64 {
        match self {
            PlanNode::SeqScan { rows, .. }
            | PlanNode::IndexSeek { rows, .. }
            | PlanNode::IndexOnlyScan { rows, .. }
            | PlanNode::HashJoin { rows, .. }
            | PlanNode::IndexNestedLoopJoin { rows, .. }
            | PlanNode::CrossJoin { rows, .. }
            | PlanNode::HashAggregate { rows, .. }
            | PlanNode::Sort { rows, .. } => *rows,
        }
    }

    /// This node's incremental cost.
    pub fn node_cost(&self) -> f64 {
        match self {
            PlanNode::SeqScan { cost, .. }
            | PlanNode::IndexSeek { cost, .. }
            | PlanNode::IndexOnlyScan { cost, .. }
            | PlanNode::HashJoin { cost, .. }
            | PlanNode::IndexNestedLoopJoin { cost, .. }
            | PlanNode::CrossJoin { cost, .. }
            | PlanNode::HashAggregate { cost, .. }
            | PlanNode::Sort { cost, .. } => *cost,
        }
    }

    /// Total cost of the subtree (must equal the cost model's estimate).
    pub fn total_cost(&self) -> f64 {
        self.node_cost()
            + match self {
                PlanNode::SeqScan { .. }
                | PlanNode::IndexSeek { .. }
                | PlanNode::IndexOnlyScan { .. } => 0.0,
                PlanNode::HashJoin { left, right, .. }
                | PlanNode::CrossJoin { left, right, .. } => left.total_cost() + right.total_cost(),
                PlanNode::IndexNestedLoopJoin { outer, .. } => outer.total_cost(),
                PlanNode::HashAggregate { input, .. } | PlanNode::Sort { input, .. } => {
                    input.total_cost()
                }
            }
    }

    /// True when any node in the subtree uses an index.
    pub fn uses_index(&self) -> bool {
        match self {
            PlanNode::SeqScan { .. } => false,
            PlanNode::IndexSeek { .. }
            | PlanNode::IndexOnlyScan { .. }
            | PlanNode::IndexNestedLoopJoin { .. } => true,
            PlanNode::HashJoin { left, right, .. } | PlanNode::CrossJoin { left, right, .. } => {
                left.uses_index() || right.uses_index()
            }
            PlanNode::HashAggregate { input, .. } | PlanNode::Sort { input, .. } => {
                input.uses_index()
            }
        }
    }

    /// EXPLAIN-style indented rendering; table and index names resolved
    /// through the catalog.
    pub fn render(&self, catalog: &isum_catalog::Catalog) -> String {
        let mut out = String::new();
        self.render_into(catalog, 0, &mut out);
        out
    }

    fn render_into(&self, catalog: &isum_catalog::Catalog, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let line = match self {
            PlanNode::SeqScan { table, rows, cost } => format!(
                "{pad}SeqScan {} (rows≈{:.0}, cost≈{:.0})",
                catalog.table(*table).name,
                rows,
                cost
            ),
            PlanNode::IndexSeek { index, covering, rows, cost, .. } => format!(
                "{pad}IndexSeek {}{} (rows≈{:.0}, cost≈{:.0})",
                index.display(catalog),
                if *covering { " [covering]" } else { "" },
                rows,
                cost
            ),
            PlanNode::IndexOnlyScan { index, rows, cost, .. } => format!(
                "{pad}IndexOnlyScan {} (rows≈{:.0}, cost≈{:.0})",
                index.display(catalog),
                rows,
                cost
            ),
            PlanNode::HashJoin { semi, rows, cost, .. } => format!(
                "{pad}HashJoin{} (rows≈{:.0}, cost≈{:.0})",
                if *semi { " [semi]" } else { "" },
                rows,
                cost
            ),
            PlanNode::IndexNestedLoopJoin { index, rows, cost, .. } => format!(
                "{pad}IndexNestedLoopJoin via {} (rows≈{:.0}, cost≈{:.0})",
                index.display(catalog),
                rows,
                cost
            ),
            PlanNode::CrossJoin { rows, cost, .. } => {
                format!("{pad}CrossJoin (rows≈{rows:.0}, cost≈{cost:.0})")
            }
            PlanNode::HashAggregate { groups, rows, cost, .. } => {
                format!("{pad}HashAggregate [{groups} group cols] (rows≈{rows:.0}, cost≈{cost:.0})")
            }
            PlanNode::Sort { rows, cost, .. } => {
                format!("{pad}Sort (rows≈{rows:.0}, cost≈{cost:.0})")
            }
        };
        out.push_str(&line);
        out.push('\n');
        match self {
            PlanNode::HashJoin { left, right, .. } | PlanNode::CrossJoin { left, right, .. } => {
                left.render_into(catalog, depth + 1, out);
                right.render_into(catalog, depth + 1, out);
            }
            PlanNode::IndexNestedLoopJoin { outer, .. } => {
                outer.render_into(catalog, depth + 1, out)
            }
            PlanNode::HashAggregate { input, .. } | PlanNode::Sort { input, .. } => {
                input.render_into(catalog, depth + 1, out)
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_catalog::CatalogBuilder;
    use isum_common::ColumnId;

    fn sample() -> PlanNode {
        PlanNode::Sort {
            input: Box::new(PlanNode::HashJoin {
                left: Box::new(PlanNode::SeqScan { table: TableId(0), rows: 100.0, cost: 10.0 }),
                right: Box::new(PlanNode::IndexSeek {
                    table: TableId(1),
                    index: Index::new(TableId(1), vec![ColumnId(0)]),
                    covering: true,
                    rows: 5.0,
                    cost: 2.0,
                }),
                semi: false,
                rows: 50.0,
                cost: 3.0,
            }),
            rows: 50.0,
            cost: 1.0,
        }
    }

    #[test]
    fn totals_sum_over_subtree() {
        let p = sample();
        assert!((p.total_cost() - 16.0).abs() < 1e-12);
        assert_eq!(p.rows(), 50.0);
        assert!(p.uses_index());
    }

    #[test]
    fn render_is_indented_and_named() {
        let catalog = CatalogBuilder::new()
            .table("orders", 10)
            .col_key("o_id")
            .finish()
            .expect("fresh table")
            .table("lineitem", 10)
            .col_key("l_id")
            .finish()
            .expect("unique tables")
            .build();
        let text = sample().render(&catalog);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("Sort"));
        assert!(lines[1].starts_with("  HashJoin"));
        assert!(lines[2].contains("SeqScan orders"));
        assert!(lines[3].contains("IndexSeek lineitem(l_id) [covering]"));
    }

    #[test]
    fn scan_only_plan_uses_no_index() {
        let p = PlanNode::SeqScan { table: TableId(0), rows: 1.0, cost: 1.0 };
        assert!(!p.uses_index());
        assert_eq!(p.total_cost(), 1.0);
    }
}
