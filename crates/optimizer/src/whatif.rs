//! The what-if API: cached, call-counted hypothetical costing.
//!
//! Mirrors the AutoAdmin what-if interface \[15\]: the advisor asks "what
//! would query `q` cost under configuration `C`?" without materializing
//! anything. Two production realities are modeled because the paper's
//! Fig 2 measures them: every (query, relevant-config) costing counts as an
//! *optimizer call* (70–80% of tuning time in the paper), and a cache keyed
//! by the per-query relevant index subset absorbs repeats, mirroring the
//! optimizer-call–reduction techniques cited in Sec 9.

use std::cell::RefCell;
use std::collections::HashMap;

use isum_catalog::Catalog;
use isum_common::telemetry::{self, Counter};
use isum_common::{count, record_ns, QueryId};
use isum_sql::BoundQuery;
use isum_workload::Workload;

use crate::cost::CostModel;
use crate::index::IndexConfig;

/// Cached what-if optimizer over one catalog.
///
/// Per-instance call/hit counters are [`Counter`] atomics so callers can
/// attribute calls to one tuning run; the same increments also feed the
/// process-wide telemetry registry under `optimizer.whatif.*` when
/// telemetry is enabled.
#[derive(Debug)]
pub struct WhatIfOptimizer<'a> {
    catalog: &'a Catalog,
    model: CostModel<'a>,
    calls: Counter,
    cache_hits: Counter,
    cache: RefCell<HashMap<(u64, QueryId, u64), f64>>,
}

impl<'a> WhatIfOptimizer<'a> {
    /// Creates an optimizer over a catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self {
            catalog,
            model: CostModel::new(catalog),
            calls: Counter::new(),
            cache_hits: Counter::new(),
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &'a Catalog {
        self.catalog
    }

    /// Costs one workload query under a configuration, caching by the
    /// query's *relevant* index subset (indexes on referenced tables).
    /// The cache also keys on the workload's process-unique
    /// [`Workload::uid`], so one optimizer can safely serve several
    /// workloads over the same catalog (e.g. a workload and its
    /// `restricted_to` subsets) without QueryId collisions — including
    /// when an earlier workload has been dropped and its heap addresses
    /// recycled, which an address-based identity would alias.
    pub fn cost_query(&self, w: &Workload, id: QueryId, cfg: &IndexConfig) -> f64 {
        let q = w.query(id);
        let key = (w.uid(), id, cfg.fingerprint_for(&q.bound.referenced_tables()));
        if let Some(&c) = self.cache.borrow().get(&key) {
            self.cache_hits.inc();
            count!("optimizer.whatif.cache_hits");
            return c;
        }
        let c = self.cost_bound(&q.bound, cfg);
        self.cache.borrow_mut().insert(key, c);
        if telemetry::enabled() {
            telemetry::gauge("optimizer.whatif.cache_entries")
                .set(self.cache.borrow().len() as i64);
        }
        c
    }

    /// Costs a bound query directly (uncached); each call counts as one
    /// optimizer invocation.
    pub fn cost_bound(&self, bound: &BoundQuery, cfg: &IndexConfig) -> f64 {
        self.calls.inc();
        count!("optimizer.whatif.calls");
        if telemetry::enabled() {
            let start = std::time::Instant::now();
            let c = self.model.cost(bound, cfg);
            record_ns!("optimizer.whatif.cost_ns", start.elapsed().as_nanos() as u64);
            c
        } else {
            self.model.cost(bound, cfg)
        }
    }

    /// Total workload cost `C_I(W)` under a configuration.
    pub fn workload_cost(&self, w: &Workload, cfg: &IndexConfig) -> f64 {
        w.queries.iter().map(|q| self.cost_query(w, q.id, cfg)).sum()
    }

    /// The paper's Improvement (%) metric:
    /// `(C(W) − C_cfg(W)) / C(W) × 100` where `C(W)` uses the queries'
    /// stored costs (the existing design).
    pub fn improvement_pct(&self, w: &Workload, cfg: &IndexConfig) -> f64 {
        let base = w.total_cost();
        if base <= 0.0 {
            return 0.0;
        }
        let tuned = self.workload_cost(w, cfg);
        (base - tuned) / base * 100.0
    }

    /// Fills `C(q)` for every query using the existing design (no
    /// hypothetical indexes) — the pre-processing step the paper assumes
    /// Query Store provides.
    pub fn populate_costs(&self, w: &mut Workload) {
        let empty = IndexConfig::empty();
        let costs: Vec<f64> = w.queries.iter().map(|q| self.cost_bound(&q.bound, &empty)).collect();
        w.set_costs(&costs);
    }

    /// Number of optimizer invocations so far (cache hits excluded), for
    /// this instance.
    pub fn optimizer_calls(&self) -> u64 {
        self.calls.get()
    }

    /// Number of costings answered from the cache, for this instance.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.get()
    }

    /// Clears the cost cache (counters are preserved).
    pub fn clear_cache(&self) {
        self.cache.borrow_mut().clear();
    }
}

/// Fills `C(q)` for every query with a scoped optimizer, sidestepping the
/// borrow conflict of holding a [`WhatIfOptimizer`] (which borrows the
/// workload's catalog) while mutating the workload.
pub fn populate_costs(workload: &mut Workload) {
    let costs: Vec<f64> = {
        let opt = WhatIfOptimizer::new(&workload.catalog);
        let empty = IndexConfig::empty();
        workload.queries.iter().map(|q| opt.cost_bound(&q.bound, &empty)).collect()
    };
    workload.set_costs(&costs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Index;
    use isum_workload::gen::tpch::{tpch_catalog, tpch_workload};

    #[test]
    fn populate_costs_fills_positive_costs() {
        let mut w = tpch_workload(1, 22, 1).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        assert!(w.queries.iter().all(|q| q.cost > 0.0));
        assert_eq!(opt.optimizer_calls(), 22);
        // Costs vary by orders of magnitude across TPC-H templates.
        let max = w.queries.iter().map(|q| q.cost).fold(0.0, f64::max);
        let min = w.queries.iter().map(|q| q.cost).fold(f64::MAX, f64::min);
        assert!(max / min > 10.0, "cost spread {min}..{max}");
    }

    #[test]
    fn cache_absorbs_repeat_costings() {
        let mut w = tpch_workload(1, 22, 1).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        let cfg = IndexConfig::empty();
        let a = opt.workload_cost(&w, &cfg);
        let calls_after_first = opt.optimizer_calls();
        let b = opt.workload_cost(&w, &cfg);
        assert_eq!(a, b);
        assert_eq!(opt.optimizer_calls(), calls_after_first, "second pass fully cached");
        assert!(opt.cache_hits() >= 22);
    }

    #[test]
    fn cache_distinguishes_relevant_configs() {
        let mut w = tpch_workload(1, 6, 1).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        let li = catalog.table_id("lineitem").unwrap();
        let t = catalog.table(li);
        // Covering index for Q6's shipdate-range aggregation: a bare
        // shipdate index loses to the scan (RID lookups dominate at ~14%
        // selectivity), which is itself correct optimizer behaviour.
        let cfg = IndexConfig::from_indexes([Index::new(
            li,
            ["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"]
                .iter()
                .map(|n| t.column_id(n).unwrap())
                .collect(),
        )]);
        let base = opt.workload_cost(&w, &IndexConfig::empty());
        let tuned = opt.workload_cost(&w, &cfg);
        assert!(tuned < base, "covering shipdate index helps TPC-H: {tuned} vs {base}");
    }

    #[test]
    fn cache_survives_workload_drop_and_reallocation() {
        // Regression test for address-based cache identity: dropping a
        // cached workload and building a different one often puts the new
        // query buffer at the recycled address, which an `as_ptr`-keyed
        // cache would alias to the dead workload's entries. Uids never
        // recycle, so every fresh workload must cost exactly as if the
        // cache were empty.
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        let cfg = IndexConfig::empty();
        for round in 0..10 {
            // Vary the query count so buffers of several sizes cycle
            // through the allocator.
            let n = 3 + (round % 4);
            let mut w = tpch_workload(1, n, round as u64 + 1).unwrap();
            opt.populate_costs(&mut w);
            for q in &w.queries {
                let direct = opt.cost_bound(&q.bound, &cfg);
                let cached = opt.cost_query(&w, q.id, &cfg);
                assert_eq!(
                    cached, direct,
                    "round {round}: cached cost for query {:?} aliased a dropped workload",
                    q.id
                );
            }
            // `w` drops here; its heap buffers return to the allocator.
        }
    }

    #[test]
    fn improvement_pct_bounds() {
        let mut w = tpch_workload(1, 22, 2).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        assert_eq!(opt.improvement_pct(&w, &IndexConfig::empty()), 0.0);
        let li = catalog.table_id("lineitem").unwrap();
        let t = catalog.table(li);
        let cfg = IndexConfig::from_indexes([
            Index::new(li, vec![t.column_id("l_shipdate").unwrap()]),
            Index::new(li, vec![t.column_id("l_orderkey").unwrap()]),
        ]);
        let imp = opt.improvement_pct(&w, &cfg);
        assert!((0.0..=100.0).contains(&imp), "improvement {imp}");
        assert!(imp > 0.0);
    }
}
