//! The what-if API: cached, call-counted hypothetical costing.
//!
//! Mirrors the AutoAdmin what-if interface \[15\]: the advisor asks "what
//! would query `q` cost under configuration `C`?" without materializing
//! anything. Two production realities are modeled because the paper's
//! Fig 2 measures them: every (query, relevant-config) costing counts as an
//! *optimizer call* (70–80% of tuning time in the paper), and a cache keyed
//! by the per-query relevant index subset absorbs repeats, mirroring the
//! optimizer-call–reduction techniques cited in Sec 9.
//!
//! # Thread safety
//!
//! [`WhatIfOptimizer`] is `Sync`: the advisor's greedy rounds fan
//! per-candidate costings out over [`isum_exec`]'s thread pool, so many
//! threads cost queries against one optimizer concurrently. The cost
//! cache is lock-striped across [`CACHE_SHARDS`] shards (keyed by a
//! deterministic hash of the cache key), so concurrent costings of
//! different keys rarely contend, and no shard lock is ever held across a
//! cost-model evaluation. Costing itself ([`CostModel::cost`]) is a pure
//! function of `(query, configuration)`, which makes cached values
//! deterministic regardless of which thread inserted them. Two threads
//! racing to cost the same uncached key may both invoke the cost model —
//! both compute the identical value, the first insert wins, and each
//! invocation is (correctly) counted as an optimizer call; counters are
//! atomics, so no increment is ever lost.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use isum_catalog::Catalog;
use isum_common::telemetry::{self, Counter};
use isum_common::{count, record_ns, IsumError, IsumResult, QueryId};
use isum_faults::{FaultInjector, WhatIfFault};
use isum_sql::BoundQuery;
use isum_workload::Workload;

use crate::cost::{CostModel, CPU_ROW, IO_PAGE};
use crate::index::IndexConfig;

/// Number of lock stripes in the what-if cost cache. Power of two, sized
/// so a pool of a few dozen threads rarely collides on a stripe.
pub const CACHE_SHARDS: usize = 32;

/// One cache key: (workload uid, query, relevant-config fingerprint).
type CacheKey = (u64, QueryId, u64);

/// Picks the shard of a key with `DefaultHasher::new()`, whose keys are
/// fixed (unlike `RandomState`), keeping shard assignment deterministic
/// across runs — shard contents then depend only on the key set, not on
/// per-process hash seeds.
fn shard_of(key: &CacheKey) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % CACHE_SHARDS
}

/// Resource budget and retry policy for what-if costing (DESIGN.md §9).
///
/// * `max_calls` — hard cap on optimizer invocations for this instance;
///   once reached, every further costing returns the heuristic fallback.
///   The cutoff is by call-arrival order, so under a multi-thread pool
///   *which* costings fall back is scheduling-dependent — budgets are a
///   production-degradation knob, not an experiment knob, and default to
///   unlimited (experiments keep bit-identical results at any thread
///   count because the unlimited budget never engages).
/// * `call_timeout` — per-call latency bound. The pure cost model is
///   effectively instantaneous, so the timeout engages only against
///   injected latency spikes ([`isum_faults`]); a spike longer than the
///   timeout is reported as a transient timeout (no sleep is performed —
///   the simulated call is abandoned at its deadline).
/// * `max_retries` / `backoff_base` / `backoff_cap` — transient failures
///   are retried up to `max_retries` times with exponential backoff
///   `min(backoff_base · 2^attempt, backoff_cap)` before falling back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WhatIfBudget {
    /// Maximum optimizer invocations (`None` = unlimited).
    pub max_calls: Option<u64>,
    /// Per-call latency bound (`None` = no timeout).
    pub call_timeout: Option<Duration>,
    /// Retry attempts after a transient failure.
    pub max_retries: u32,
    /// First-retry backoff.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for WhatIfBudget {
    fn default() -> Self {
        Self {
            max_calls: None,
            call_timeout: None,
            max_retries: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(16),
        }
    }
}

impl WhatIfBudget {
    /// The default budget overridden by environment knobs:
    /// `ISUM_WHATIF_MAX_CALLS`, `ISUM_WHATIF_TIMEOUT_MS`,
    /// `ISUM_WHATIF_RETRIES` (unparseable values are ignored).
    pub fn from_env() -> Self {
        let mut b = Self::default();
        if let Ok(v) = std::env::var("ISUM_WHATIF_MAX_CALLS") {
            if let Ok(n) = v.trim().parse::<u64>() {
                b.max_calls = Some(n);
            }
        }
        if let Ok(v) = std::env::var("ISUM_WHATIF_TIMEOUT_MS") {
            if let Ok(ms) = v.trim().parse::<u64>() {
                b.call_timeout = Some(Duration::from_millis(ms));
            }
        }
        if let Ok(v) = std::env::var("ISUM_WHATIF_RETRIES") {
            if let Ok(n) = v.trim().parse::<u32>() {
                b.max_retries = n;
            }
        }
        b
    }

    /// Backoff before retry `attempt` (0-based):
    /// `min(backoff_base · 2^attempt, backoff_cap)`.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let mult = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.backoff_base.checked_mul(mult).map_or(self.backoff_cap, |d| d.min(self.backoff_cap))
    }

    /// True when the budget can change costing behaviour on its own
    /// (without an active fault injector).
    fn is_limiting(&self) -> bool {
        self.max_calls.is_some()
    }
}

/// Cached what-if optimizer over one catalog.
///
/// Per-instance call/hit counters are [`Counter`] atomics so callers can
/// attribute calls to one tuning run; the same increments also feed the
/// process-wide telemetry registry under `optimizer.whatif.*` when
/// telemetry is enabled. The instance is `Sync` — see the module docs for
/// the sharded-cache thread-safety argument.
#[derive(Debug)]
pub struct WhatIfOptimizer<'a> {
    catalog: &'a Catalog,
    model: CostModel<'a>,
    calls: Counter,
    cache_hits: Counter,
    retries: Counter,
    fallbacks: Counter,
    timeouts: Counter,
    budget: WhatIfBudget,
    injector: Arc<FaultInjector>,
    shards: Vec<Mutex<HashMap<CacheKey, f64>>>,
    /// Total entries across all shards, maintained on insert/clear so the
    /// `optimizer.whatif.cache_entries` gauge reports the true total
    /// without sweeping (and locking) every shard.
    entries: AtomicI64,
}

impl<'a> WhatIfOptimizer<'a> {
    /// Creates an optimizer over a catalog, with the process-wide fault
    /// injector and the environment-configured [`WhatIfBudget`].
    pub fn new(catalog: &'a Catalog) -> Self {
        Self {
            catalog,
            model: CostModel::new(catalog),
            calls: Counter::new(),
            cache_hits: Counter::new(),
            retries: Counter::new(),
            fallbacks: Counter::new(),
            timeouts: Counter::new(),
            budget: WhatIfBudget::from_env(),
            injector: isum_faults::global(),
            shards: (0..CACHE_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            entries: AtomicI64::new(0),
        }
    }

    /// Replaces the budget (builder style).
    pub fn with_budget(mut self, budget: WhatIfBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the fault injector (builder style) — tests inject faults
    /// explicitly without touching the process-wide injector.
    pub fn with_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.injector = injector;
        self
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &'a Catalog {
        self.catalog
    }

    /// Costs one workload query under a configuration, caching by the
    /// query's *relevant* index subset (indexes on referenced tables).
    /// The cache also keys on the workload's process-unique
    /// [`Workload::uid`], so one optimizer can safely serve several
    /// workloads over the same catalog (e.g. a workload and its
    /// `restricted_to` subsets) without QueryId collisions — including
    /// when an earlier workload has been dropped and its heap addresses
    /// recycled, which an address-based identity would alias.
    pub fn cost_query(&self, w: &Workload, id: QueryId, cfg: &IndexConfig) -> f64 {
        let q = w.query(id);
        let key = (w.uid(), id, cfg.fingerprint_for(&q.bound.referenced_tables()));
        let shard = &self.shards[shard_of(&key)];
        if let Some(&c) = lock(shard).get(&key) {
            self.cache_hits.inc();
            count!("optimizer.whatif.cache_hits");
            return c;
        }
        // Compute outside the shard lock: the cost model is pure, so a
        // racing thread that also misses produces the identical value.
        let (c, degraded) = self.cost_bound_outcome(&q.bound, cfg);
        // A heuristic fallback is an *estimate in lieu of* an optimizer
        // answer, never cached as authoritative: the next costing of this
        // key retries the real optimizer, and the entry gauge stays exact
        // (it counts genuine what-if answers only).
        if !degraded && lock(shard).insert(key, c).is_none() {
            let total = self.entries.fetch_add(1, Ordering::Relaxed) + 1;
            if telemetry::enabled() {
                telemetry::gauge("optimizer.whatif.cache_entries").set(total);
            }
        }
        c
    }

    /// Costs a bound query directly (uncached); each call counts as one
    /// optimizer invocation. Never fails: transient faults are retried
    /// with capped backoff, and a permanent fault or exhausted budget
    /// degrades to [`Self::heuristic_cost`].
    pub fn cost_bound(&self, bound: &BoundQuery, cfg: &IndexConfig) -> f64 {
        self.cost_bound_outcome(bound, cfg).0
    }

    /// [`Self::cost_bound`] plus a `degraded` flag: `true` when the value
    /// is the heuristic fallback rather than a real optimizer answer.
    fn cost_bound_outcome(&self, bound: &BoundQuery, cfg: &IndexConfig) -> (f64, bool) {
        // Zero-fault, unlimited-budget runs take the exact pre-existing
        // hot path: no key hashing, no retry loop, bit-identical output.
        if !self.injector.is_active() && !self.budget.is_limiting() {
            return (self.cost_raw(bound, cfg), false);
        }
        self.cost_resilient(fault_key(bound, cfg), bound, cfg)
    }

    /// One real cost-model invocation (counts as an optimizer call).
    fn cost_raw(&self, bound: &BoundQuery, cfg: &IndexConfig) -> f64 {
        self.calls.inc();
        count!("optimizer.whatif.calls");
        if telemetry::enabled() {
            let start = std::time::Instant::now();
            let c = self.model.cost(bound, cfg);
            record_ns!("optimizer.whatif.cost_ns", start.elapsed().as_nanos() as u64);
            c
        } else {
            self.model.cost(bound, cfg)
        }
    }

    /// The degradation pipeline (DESIGN.md §9): budget check, then up to
    /// `1 + max_retries` attempts with capped exponential backoff between
    /// transient failures, then the heuristic fallback. Injection
    /// decisions are pure functions of `(fault key, attempt)`, so the
    /// outcome is deterministic at any thread count.
    fn cost_resilient(&self, key: u64, bound: &BoundQuery, cfg: &IndexConfig) -> (f64, bool) {
        if let Some(max) = self.budget.max_calls {
            if self.calls.get() >= max {
                return (self.fallback(bound, "call budget exhausted"), true);
            }
        }
        let mut attempt = 0u32;
        loop {
            match self.cost_attempt(key, attempt, bound, cfg) {
                Ok(c) => return (c, false),
                Err(e) if e.is_transient() && attempt < self.budget.max_retries => {
                    self.retries.inc();
                    count!("optimizer.whatif.retries");
                    isum_common::debug!(
                        "optimizer.whatif",
                        format!("transient what-if failure; retrying: {}", e.message()),
                        attempt = attempt
                    );
                    std::thread::sleep(self.budget.backoff_for(attempt));
                    attempt += 1;
                }
                Err(e) => return (self.fallback(bound, e.message()), true),
            }
        }
    }

    /// One costing attempt against the (possibly faulty) optimizer.
    fn cost_attempt(
        &self,
        key: u64,
        attempt: u32,
        bound: &BoundQuery,
        cfg: &IndexConfig,
    ) -> IsumResult<f64> {
        match self.injector.whatif_fault(key, attempt) {
            Some(WhatIfFault::Permanent) => {
                self.calls.inc();
                count!("optimizer.whatif.calls");
                return Err(IsumError::permanent("injected permanent what-if failure"));
            }
            Some(WhatIfFault::Transient) => {
                self.calls.inc();
                count!("optimizer.whatif.calls");
                return Err(IsumError::transient("injected transient what-if failure"));
            }
            Some(WhatIfFault::Latency(spike)) => {
                if let Some(limit) = self.budget.call_timeout {
                    if spike > limit {
                        // The simulated call is abandoned at its deadline;
                        // a timed-out call still counts as an invocation.
                        self.calls.inc();
                        count!("optimizer.whatif.calls");
                        self.timeouts.inc();
                        count!("optimizer.whatif.timeouts");
                        return Err(IsumError::transient(format!(
                            "what-if call exceeded {limit:?} (injected {spike:?} spike)"
                        )));
                    }
                }
                std::thread::sleep(spike);
            }
            None => {}
        }
        Ok(self.cost_raw(bound, cfg))
    }

    /// Records one degradation to the heuristic estimate. The first
    /// fallback of an optimizer instance warns (results are about to be
    /// degraded); the rest are debug-level so a budget-exhausted sweep
    /// does not emit one warning per query.
    fn fallback(&self, bound: &BoundQuery, reason: &str) -> f64 {
        self.fallbacks.inc();
        count!("optimizer.whatif.fallbacks");
        if self.fallbacks.get() == 1 {
            isum_common::warn!(
                "optimizer.whatif",
                format!("degrading to heuristic cost: {reason}"),
                fallbacks = 1u64
            );
        } else {
            isum_common::debug!(
                "optimizer.whatif",
                format!("degrading to heuristic cost: {reason}"),
                fallbacks = self.fallbacks.get()
            );
        }
        self.heuristic_cost(bound)
    }

    /// Heuristic cost used when the what-if optimizer is unavailable: the
    /// table-scan estimate from catalog statistics,
    /// `Σ_{t ∈ tables(q)} pages(t)·IO_PAGE + rows(t)·CPU_ROW` — the cost
    /// of scanning every referenced table once, ignoring predicates and
    /// hypothetical indexes. A deliberate over-estimate: queries costed by
    /// the fallback look expensive, which keeps them conservatively
    /// represented in compression rather than silently dropped.
    pub fn heuristic_cost(&self, bound: &BoundQuery) -> f64 {
        bound
            .referenced_tables()
            .iter()
            .map(|&tid| {
                let t = self.catalog.table(tid);
                t.pages() as f64 * IO_PAGE + t.row_count as f64 * CPU_ROW
            })
            .sum::<f64>()
            .max(1.0)
    }

    /// Total workload cost `C_I(W)` under a configuration.
    pub fn workload_cost(&self, w: &Workload, cfg: &IndexConfig) -> f64 {
        w.queries.iter().map(|q| self.cost_query(w, q.id, cfg)).sum()
    }

    /// The paper's Improvement (%) metric:
    /// `(C(W) − C_cfg(W)) / C(W) × 100` where `C(W)` uses the queries'
    /// stored costs (the existing design).
    pub fn improvement_pct(&self, w: &Workload, cfg: &IndexConfig) -> f64 {
        let base = w.total_cost();
        if base <= 0.0 {
            return 0.0;
        }
        let tuned = self.workload_cost(w, cfg);
        (base - tuned) / base * 100.0
    }

    /// Fills `C(q)` for every query using the existing design (no
    /// hypothetical indexes) — the pre-processing step the paper assumes
    /// Query Store provides.
    pub fn populate_costs(&self, w: &mut Workload) {
        let empty = IndexConfig::empty();
        let costs = isum_exec::par_map(&w.queries, |q| self.cost_bound(&q.bound, &empty));
        w.set_costs(&costs);
    }

    /// Number of optimizer invocations so far (cache hits excluded), for
    /// this instance.
    pub fn optimizer_calls(&self) -> u64 {
        self.calls.get()
    }

    /// Number of costings answered from the cache, for this instance.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.get()
    }

    /// Number of transient-failure retries, for this instance.
    pub fn whatif_retries(&self) -> u64 {
        self.retries.get()
    }

    /// Number of heuristic-cost fallbacks, for this instance.
    pub fn whatif_fallbacks(&self) -> u64 {
        self.fallbacks.get()
    }

    /// Number of per-call timeouts, for this instance.
    pub fn whatif_timeouts(&self) -> u64 {
        self.timeouts.get()
    }

    /// Clears the cost cache (counters are preserved).
    pub fn clear_cache(&self) {
        for shard in &self.shards {
            lock(shard).clear();
        }
        self.entries.store(0, Ordering::Relaxed);
        if telemetry::enabled() {
            telemetry::gauge("optimizer.whatif.cache_entries").set(0);
        }
    }

    /// Number of cached (workload, query, relevant-config) entries across
    /// all shards.
    pub fn cache_entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed).max(0) as u64
    }
}

/// Fault-site key for one costing: a deterministic hash of the query's
/// structure (referenced tables, predicate/join/grouping shape) and the
/// relevant-config fingerprint. Deliberately *not* keyed on workload uid
/// or [`QueryId`] — those depend on construction order, which would let
/// harness layout changes move faults around. Structurally identical
/// costings share one fault decision, which is fine for sampling.
fn fault_key(bound: &BoundQuery, cfg: &IndexConfig) -> u64 {
    let tables = bound.referenced_tables();
    let mut h = std::collections::hash_map::DefaultHasher::new();
    tables.hash(&mut h);
    bound.filters.len().hash(&mut h);
    bound.joins.len().hash(&mut h);
    bound.group_by.len().hash(&mut h);
    bound.n_aggregates.hash(&mut h);
    cfg.fingerprint_for(&tables).hash(&mut h);
    h.finish()
}

/// Locks a shard, recovering from poisoning: a panic inside the cost
/// model can never corrupt a `HashMap<_, f64>` mid-operation because no
/// costing happens under a shard lock.
fn lock<K, V>(m: &Mutex<HashMap<K, V>>) -> std::sync::MutexGuard<'_, HashMap<K, V>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Fills `C(q)` for every query with a scoped optimizer, sidestepping the
/// borrow conflict of holding a [`WhatIfOptimizer`] (which borrows the
/// workload's catalog) while mutating the workload.
pub fn populate_costs(workload: &mut Workload) {
    let costs: Vec<f64> = {
        let opt = WhatIfOptimizer::new(&workload.catalog);
        let empty = IndexConfig::empty();
        isum_exec::par_map(&workload.queries, |q| opt.cost_bound(&q.bound, &empty))
    };
    workload.set_costs(&costs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Index;
    use isum_workload::gen::tpch::{tpch_catalog, tpch_workload};

    #[test]
    fn populate_costs_fills_positive_costs() {
        let mut w = tpch_workload(1, 22, 1).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        assert!(w.queries.iter().all(|q| q.cost > 0.0));
        assert_eq!(opt.optimizer_calls(), 22);
        // Costs vary by orders of magnitude across TPC-H templates.
        let max = w.queries.iter().map(|q| q.cost).fold(0.0, f64::max);
        let min = w.queries.iter().map(|q| q.cost).fold(f64::MAX, f64::min);
        assert!(max / min > 10.0, "cost spread {min}..{max}");
    }

    #[test]
    fn cache_absorbs_repeat_costings() {
        let mut w = tpch_workload(1, 22, 1).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        let cfg = IndexConfig::empty();
        let a = opt.workload_cost(&w, &cfg);
        let calls_after_first = opt.optimizer_calls();
        let b = opt.workload_cost(&w, &cfg);
        assert_eq!(a, b);
        assert_eq!(opt.optimizer_calls(), calls_after_first, "second pass fully cached");
        assert!(opt.cache_hits() >= 22);
    }

    #[test]
    fn cache_distinguishes_relevant_configs() {
        let mut w = tpch_workload(1, 6, 1).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        let li = catalog.table_id("lineitem").unwrap();
        let t = catalog.table(li);
        // Covering index for Q6's shipdate-range aggregation: a bare
        // shipdate index loses to the scan (RID lookups dominate at ~14%
        // selectivity), which is itself correct optimizer behaviour.
        let cfg = IndexConfig::from_indexes([Index::new(
            li,
            ["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"]
                .iter()
                .map(|n| t.column_id(n).unwrap())
                .collect(),
        )]);
        let base = opt.workload_cost(&w, &IndexConfig::empty());
        let tuned = opt.workload_cost(&w, &cfg);
        assert!(tuned < base, "covering shipdate index helps TPC-H: {tuned} vs {base}");
    }

    #[test]
    fn cache_survives_workload_drop_and_reallocation() {
        // Regression test for address-based cache identity: dropping a
        // cached workload and building a different one often puts the new
        // query buffer at the recycled address, which an `as_ptr`-keyed
        // cache would alias to the dead workload's entries. Uids never
        // recycle, so every fresh workload must cost exactly as if the
        // cache were empty.
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        let cfg = IndexConfig::empty();
        for round in 0..10 {
            // Vary the query count so buffers of several sizes cycle
            // through the allocator.
            let n = 3 + (round % 4);
            let mut w = tpch_workload(1, n, round as u64 + 1).unwrap();
            opt.populate_costs(&mut w);
            for q in &w.queries {
                let direct = opt.cost_bound(&q.bound, &cfg);
                let cached = opt.cost_query(&w, q.id, &cfg);
                assert_eq!(
                    cached, direct,
                    "round {round}: cached cost for query {:?} aliased a dropped workload",
                    q.id
                );
            }
            // `w` drops here; its heap buffers return to the allocator.
        }
    }

    #[test]
    fn optimizer_is_send_and_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<WhatIfOptimizer<'_>>();
    }

    #[test]
    fn concurrent_costing_matches_sequential_and_counts_entries() {
        let mut w = tpch_workload(1, 22, 3).unwrap();
        let catalog = tpch_catalog(1);
        let reference = WhatIfOptimizer::new(&catalog);
        reference.populate_costs(&mut w);
        let cfg = IndexConfig::empty();
        let expected: Vec<f64> =
            w.queries.iter().map(|q| reference.cost_query(&w, q.id, &cfg)).collect();
        let expected_entries = reference.cache_entries();

        // Many threads hammer one shared optimizer with the same costings;
        // values must match the sequential reference bit-for-bit and the
        // entry count must equal the distinct-key count, not the number of
        // insert attempts.
        let opt = WhatIfOptimizer::new(&catalog);
        let pool = isum_exec::ThreadPool::new(8);
        pool.scope(|s| {
            for _ in 0..8 {
                let opt = &opt;
                let w = &w;
                let cfg = &cfg;
                let expected = &expected;
                s.spawn(move || {
                    for (q, want) in w.queries.iter().zip(expected) {
                        let got = opt.cost_query(w, q.id, cfg);
                        assert_eq!(got.to_bits(), want.to_bits());
                    }
                });
            }
        });
        assert_eq!(opt.cache_entries(), expected_entries, "one entry per distinct key");
        opt.clear_cache();
        assert_eq!(opt.cache_entries(), 0);
    }

    #[test]
    fn improvement_pct_bounds() {
        let mut w = tpch_workload(1, 22, 2).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        assert_eq!(opt.improvement_pct(&w, &IndexConfig::empty()), 0.0);
        let li = catalog.table_id("lineitem").unwrap();
        let t = catalog.table(li);
        let cfg = IndexConfig::from_indexes([
            Index::new(li, vec![t.column_id("l_shipdate").unwrap()]),
            Index::new(li, vec![t.column_id("l_orderkey").unwrap()]),
        ]);
        let imp = opt.improvement_pct(&w, &cfg);
        assert!((0.0..=100.0).contains(&imp), "improvement {imp}");
        assert!(imp > 0.0);
    }
}
