//! The what-if API: cached, call-counted hypothetical costing.
//!
//! Mirrors the AutoAdmin what-if interface \[15\]: the advisor asks "what
//! would query `q` cost under configuration `C`?" without materializing
//! anything. Two production realities are modeled because the paper's
//! Fig 2 measures them: every (query, relevant-config) costing counts as an
//! *optimizer call* (70–80% of tuning time in the paper), and a cache keyed
//! by the per-query relevant index subset absorbs repeats, mirroring the
//! optimizer-call–reduction techniques cited in Sec 9.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use isum_catalog::Catalog;
use isum_common::QueryId;
use isum_sql::BoundQuery;
use isum_workload::Workload;

use crate::cost::CostModel;
use crate::index::IndexConfig;

/// Cached what-if optimizer over one catalog.
#[derive(Debug)]
pub struct WhatIfOptimizer<'a> {
    catalog: &'a Catalog,
    model: CostModel<'a>,
    calls: Cell<u64>,
    cache_hits: Cell<u64>,
    cache: RefCell<HashMap<(usize, QueryId, u64), f64>>,
}

impl<'a> WhatIfOptimizer<'a> {
    /// Creates an optimizer over a catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self {
            catalog,
            model: CostModel::new(catalog),
            calls: Cell::new(0),
            cache_hits: Cell::new(0),
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &'a Catalog {
        self.catalog
    }

    /// Costs one workload query under a configuration, caching by the
    /// query's *relevant* index subset (indexes on referenced tables).
    /// The cache also keys on the workload's identity (the address of its
    /// query buffer), so one optimizer can safely serve several workloads
    /// over the same catalog (e.g. a workload and its `restricted_to`
    /// subsets) without QueryId collisions.
    pub fn cost_query(&self, w: &Workload, id: QueryId, cfg: &IndexConfig) -> f64 {
        let q = w.query(id);
        let workload_identity = w.queries.as_ptr() as usize;
        let key = (workload_identity, id, cfg.fingerprint_for(&q.bound.referenced_tables()));
        if let Some(&c) = self.cache.borrow().get(&key) {
            self.cache_hits.set(self.cache_hits.get() + 1);
            return c;
        }
        let c = self.cost_bound(&q.bound, cfg);
        self.cache.borrow_mut().insert(key, c);
        c
    }

    /// Costs a bound query directly (uncached); each call counts as one
    /// optimizer invocation.
    pub fn cost_bound(&self, bound: &BoundQuery, cfg: &IndexConfig) -> f64 {
        self.calls.set(self.calls.get() + 1);
        self.model.cost(bound, cfg)
    }

    /// Total workload cost `C_I(W)` under a configuration.
    pub fn workload_cost(&self, w: &Workload, cfg: &IndexConfig) -> f64 {
        w.queries.iter().map(|q| self.cost_query(w, q.id, cfg)).sum()
    }

    /// The paper's Improvement (%) metric:
    /// `(C(W) − C_cfg(W)) / C(W) × 100` where `C(W)` uses the queries'
    /// stored costs (the existing design).
    pub fn improvement_pct(&self, w: &Workload, cfg: &IndexConfig) -> f64 {
        let base = w.total_cost();
        if base <= 0.0 {
            return 0.0;
        }
        let tuned = self.workload_cost(w, cfg);
        (base - tuned) / base * 100.0
    }

    /// Fills `C(q)` for every query using the existing design (no
    /// hypothetical indexes) — the pre-processing step the paper assumes
    /// Query Store provides.
    pub fn populate_costs(&self, w: &mut Workload) {
        let empty = IndexConfig::empty();
        let costs: Vec<f64> =
            w.queries.iter().map(|q| self.cost_bound(&q.bound, &empty)).collect();
        w.set_costs(&costs);
    }

    /// Number of optimizer invocations so far (cache hits excluded).
    pub fn optimizer_calls(&self) -> u64 {
        self.calls.get()
    }

    /// Number of costings answered from the cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.get()
    }

    /// Clears the cost cache (counters are preserved).
    pub fn clear_cache(&self) {
        self.cache.borrow_mut().clear();
    }
}

/// Fills `C(q)` for every query with a scoped optimizer, sidestepping the
/// borrow conflict of holding a [`WhatIfOptimizer`] (which borrows the
/// workload's catalog) while mutating the workload.
pub fn populate_costs(workload: &mut Workload) {
    let costs: Vec<f64> = {
        let opt = WhatIfOptimizer::new(&workload.catalog);
        let empty = IndexConfig::empty();
        workload.queries.iter().map(|q| opt.cost_bound(&q.bound, &empty)).collect()
    };
    workload.set_costs(&costs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Index;
    use isum_workload::gen::tpch::{tpch_catalog, tpch_workload};

    #[test]
    fn populate_costs_fills_positive_costs() {
        let mut w = tpch_workload(1, 22, 1).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        assert!(w.queries.iter().all(|q| q.cost > 0.0));
        assert_eq!(opt.optimizer_calls(), 22);
        // Costs vary by orders of magnitude across TPC-H templates.
        let max = w.queries.iter().map(|q| q.cost).fold(0.0, f64::max);
        let min = w.queries.iter().map(|q| q.cost).fold(f64::MAX, f64::min);
        assert!(max / min > 10.0, "cost spread {min}..{max}");
    }

    #[test]
    fn cache_absorbs_repeat_costings() {
        let mut w = tpch_workload(1, 22, 1).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        let cfg = IndexConfig::empty();
        let a = opt.workload_cost(&w, &cfg);
        let calls_after_first = opt.optimizer_calls();
        let b = opt.workload_cost(&w, &cfg);
        assert_eq!(a, b);
        assert_eq!(opt.optimizer_calls(), calls_after_first, "second pass fully cached");
        assert!(opt.cache_hits() >= 22);
    }

    #[test]
    fn cache_distinguishes_relevant_configs() {
        let mut w = tpch_workload(1, 6, 1).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        let li = catalog.table_id("lineitem").unwrap();
        let t = catalog.table(li);
        // Covering index for Q6's shipdate-range aggregation: a bare
        // shipdate index loses to the scan (RID lookups dominate at ~14%
        // selectivity), which is itself correct optimizer behaviour.
        let cfg = IndexConfig::from_indexes([Index::new(
            li,
            ["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"]
                .iter()
                .map(|n| t.column_id(n).unwrap())
                .collect(),
        )]);
        let base = opt.workload_cost(&w, &IndexConfig::empty());
        let tuned = opt.workload_cost(&w, &cfg);
        assert!(tuned < base, "covering shipdate index helps TPC-H: {tuned} vs {base}");
    }

    #[test]
    fn improvement_pct_bounds() {
        let mut w = tpch_workload(1, 22, 2).unwrap();
        let catalog = tpch_catalog(1);
        let opt = WhatIfOptimizer::new(&catalog);
        opt.populate_costs(&mut w);
        assert_eq!(opt.improvement_pct(&w, &IndexConfig::empty()), 0.0);
        let li = catalog.table_id("lineitem").unwrap();
        let t = catalog.table(li);
        let cfg = IndexConfig::from_indexes([
            Index::new(li, vec![t.column_id("l_shipdate").unwrap()]),
            Index::new(li, vec![t.column_id("l_orderkey").unwrap()]),
        ]);
        let imp = opt.improvement_pct(&w, &cfg);
        assert!((0.0..=100.0).contains(&imp), "improvement {imp}");
        assert!(imp > 0.0);
    }
}
