//! The `optimizer.whatif.cache_entries` gauge must report the true entry
//! total across every cache shard, not the occupancy of whichever stripe
//! happened to take the last insert.
//!
//! This file deliberately holds a single test: it flips the process-wide
//! telemetry flag, so it runs alone in its own test binary where no
//! concurrent test can interleave gauge writes.

use isum_common::telemetry;
use isum_optimizer::index::IndexConfig;
use isum_optimizer::whatif::WhatIfOptimizer;
use isum_workload::gen::tpch::{tpch_catalog, tpch_workload};

#[test]
fn cache_entries_gauge_reports_total_across_shards() {
    telemetry::set_enabled(true);
    let mut w = tpch_workload(1, 22, 4).unwrap();
    let catalog = tpch_catalog(1);
    let opt = WhatIfOptimizer::new(&catalog);
    opt.populate_costs(&mut w);
    let cfg = IndexConfig::empty();
    let _ = opt.workload_cost(&w, &cfg);
    telemetry::set_enabled(false);
    // 22 distinct keys spread across the lock stripes: any single stripe
    // holds only a handful, so a gauge fed from inside one shard's lock
    // would under-report badly.
    assert_eq!(opt.cache_entries(), 22);
    let snap = telemetry::snapshot();
    assert_eq!(snap.gauge("optimizer.whatif.cache_entries"), Some(22));

    // Clearing must drive both the accessor and the gauge back to zero.
    telemetry::set_enabled(true);
    opt.clear_cache();
    telemetry::set_enabled(false);
    assert_eq!(opt.cache_entries(), 0);
    assert_eq!(telemetry::snapshot().gauge("optimizer.whatif.cache_entries"), Some(0));
}
