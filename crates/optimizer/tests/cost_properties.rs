//! Property tests for the what-if cost model.
//!
//! The invariants here are the ones greedy enumeration relies on: adding
//! indexes never increases estimated cost, costs are finite and positive,
//! and caching never changes answers.

use proptest::prelude::*;

use isum_catalog::{Catalog, CatalogBuilder};
use isum_common::{ColumnId, TableId};
use isum_optimizer::{CostModel, Index, IndexConfig, WhatIfOptimizer};
use isum_sql::{parse, Binder, BoundQuery};

fn catalog() -> Catalog {
    CatalogBuilder::new()
        .table("f", 2_000_000)
        .col_int("fk1", 10_000, 1, 10_000)
        .col_int("fk2", 500, 1, 500)
        .col_int("v1", 1_000, 0, 100_000)
        .col_int("v2", 50, 0, 50)
        .finish()
        .expect("fresh table")
        .table("d1", 10_000)
        .col_key("d1k")
        .col_int("d1a", 100, 0, 100)
        .finish()
        .expect("unique tables")
        .table("d2", 500)
        .col_key("d2k")
        .col_int("d2a", 20, 0, 20)
        .finish()
        .expect("unique tables")
        .build()
}

/// Random conjunctive star queries over the fixed schema.
fn arb_query() -> impl Strategy<Value = String> {
    (
        any::<bool>(), // join d1
        any::<bool>(), // join d2
        prop::collection::vec((0usize..4, 0i64..100_000), 0..3),
        any::<bool>(), // group by
        any::<bool>(), // order by
    )
        .prop_map(|(j1, j2, filters, group, order)| {
            let mut from = vec!["f"];
            let mut preds: Vec<String> = Vec::new();
            if j1 {
                from.push("d1");
                preds.push("f.fk1 = d1.d1k".into());
            }
            if j2 {
                from.push("d2");
                preds.push("f.fk2 = d2.d2k".into());
            }
            let cols = ["v1", "v2", "fk1", "fk2"];
            for (c, v) in filters {
                preds.push(format!("f.{} <= {}", cols[c], v));
            }
            let mut sql = if group {
                format!("SELECT f.v2, count(*) FROM {}", from.join(", "))
            } else {
                format!("SELECT f.v1 FROM {}", from.join(", "))
            };
            if !preds.is_empty() {
                sql.push_str(&format!(" WHERE {}", preds.join(" AND ")));
            }
            if group {
                sql.push_str(" GROUP BY f.v2");
            }
            if order && group {
                sql.push_str(" ORDER BY f.v2");
            }
            sql
        })
}

/// Random index configurations over the schema's columns.
fn arb_config() -> impl Strategy<Value = Vec<(u32, Vec<u32>)>> {
    prop::collection::vec((0u32..3, prop::collection::vec(0u32..4, 1..3)), 0..4)
}

fn build_config(catalog: &Catalog, spec: &[(u32, Vec<u32>)]) -> IndexConfig {
    let mut cfg = IndexConfig::empty();
    for (t, cols) in spec {
        let table = TableId(*t);
        let ncols = catalog.table(table).columns.len() as u32;
        let keys: Vec<ColumnId> = cols.iter().map(|c| ColumnId(c % ncols)).collect();
        cfg.add(Index::new(table, keys));
    }
    cfg
}

fn bind(catalog: &Catalog, sql: &str) -> BoundQuery {
    Binder::new(catalog).bind(&parse(sql).expect("generated SQL parses")).expect("binds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn costs_are_finite_and_positive(sql in arb_query(), spec in arb_config()) {
        let cat = catalog();
        let q = bind(&cat, &sql);
        let cfg = build_config(&cat, &spec);
        let cost = CostModel::new(&cat).cost(&q, &cfg);
        prop_assert!(cost.is_finite());
        prop_assert!(cost > 0.0, "cost {cost} for `{sql}`");
    }

    #[test]
    fn adding_an_index_never_increases_cost(sql in arb_query(), spec in arb_config(), extra in (0u32..3, prop::collection::vec(0u32..4, 1..3))) {
        let cat = catalog();
        let q = bind(&cat, &sql);
        let cfg = build_config(&cat, &spec);
        let before = CostModel::new(&cat).cost(&q, &cfg);
        let mut bigger = cfg.clone();
        let (t, cols) = extra;
        let table = TableId(t);
        let ncols = cat.table(table).columns.len() as u32;
        bigger.add(Index::new(table, cols.iter().map(|c| ColumnId(c % ncols)).collect()));
        let after = CostModel::new(&cat).cost(&q, &bigger);
        prop_assert!(after <= before + 1e-9, "`{sql}`: {after} > {before}");
    }

    #[test]
    fn cached_and_uncached_costs_agree(sql in arb_query(), spec in arb_config()) {
        let cat = catalog();
        let mut w = isum_workload::Workload::from_sql(cat, &[sql]).expect("binds");
        isum_optimizer::populate_costs(&mut w);
        let cfg = build_config(&w.catalog, &spec);
        let opt = WhatIfOptimizer::new(&w.catalog);
        let direct = opt.cost_bound(&w.queries[0].bound, &cfg);
        let cached1 = opt.cost_query(&w, w.queries[0].id, &cfg);
        let cached2 = opt.cost_query(&w, w.queries[0].id, &cfg);
        prop_assert_eq!(direct, cached1);
        prop_assert_eq!(cached1, cached2);
    }

    #[test]
    fn irrelevant_table_indexes_never_change_cost(sql in arb_query()) {
        // Indexes on a table the query doesn't touch must be no-ops.
        let cat = CatalogBuilder::new()
            .table("f", 2_000_000)
            .col_int("fk1", 10_000, 1, 10_000)
            .col_int("fk2", 500, 1, 500)
            .col_int("v1", 1_000, 0, 100_000)
            .col_int("v2", 50, 0, 50)
            .finish()
            .expect("fresh table")
            .table("d1", 10_000)
            .col_key("d1k")
            .col_int("d1a", 100, 0, 100)
            .finish()
            .expect("unique tables")
            .table("d2", 500)
            .col_key("d2k")
            .col_int("d2a", 20, 0, 20)
            .finish()
            .expect("unique tables")
            .table("unrelated", 1_000_000)
            .col_key("uk")
            .col_int("ua", 10, 0, 10)
            .finish()
            .expect("unique tables")
            .build();
        let q = bind(&cat, &sql);
        let m = CostModel::new(&cat);
        let base = m.cost(&q, &IndexConfig::empty());
        let t = cat.table_id("unrelated").expect("table exists");
        let cfg = IndexConfig::from_indexes([
            Index::new(t, vec![ColumnId(0)]),
            Index::new(t, vec![ColumnId(1), ColumnId(0)]),
        ]);
        prop_assert_eq!(base, m.cost(&q, &cfg));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The plan tree and the cost breakdown are built together; their
    /// totals must agree exactly.
    #[test]
    fn plan_total_equals_breakdown_total(sql in arb_query(), spec in arb_config()) {
        let cat = catalog();
        let q = bind(&cat, &sql);
        let cfg = build_config(&cat, &spec);
        let m = CostModel::new(&cat);
        let bd = m.cost_breakdown(&q, &cfg);
        let plan = m.plan(&q, &cfg).expect("query has tables");
        prop_assert!(
            (plan.total_cost() - bd.total()).abs() < 1e-6 * bd.total().max(1.0),
            "plan {} vs breakdown {} for `{sql}`",
            plan.total_cost(),
            bd.total()
        );
    }

    /// When an index strictly lowers the cost, the chosen plan must
    /// actually use an index somewhere.
    #[test]
    fn cheaper_config_shows_up_in_the_plan(sql in arb_query(), spec in arb_config()) {
        let cat = catalog();
        let q = bind(&cat, &sql);
        let cfg = build_config(&cat, &spec);
        let m = CostModel::new(&cat);
        let base = m.cost(&q, &IndexConfig::empty());
        let with = m.cost(&q, &cfg);
        if with < base - 1e-9 {
            let plan = m.plan(&q, &cfg).expect("query has tables");
            prop_assert!(plan.uses_index(), "cost dropped {base} -> {with} but plan uses no index");
        }
    }
}
