//! The what-if degradation contract under injected faults (DESIGN.md §9):
//! transient faults retry with capped backoff, permanent faults fall back
//! to the heuristic exactly once, budgets degrade instead of failing, and
//! the cache never stores a fallback cost as authoritative (the shard
//! entry gauge stays exact under injection).

use std::sync::Arc;
use std::time::Duration;

use isum_faults::FaultInjector;
use isum_optimizer::{IndexConfig, WhatIfBudget, WhatIfOptimizer};
use isum_workload::gen::tpch::{tpch_catalog, tpch_workload};

/// A budget with zero backoff so fault-saturated tests run instantly.
fn fast_budget() -> WhatIfBudget {
    WhatIfBudget {
        backoff_base: Duration::ZERO,
        backoff_cap: Duration::ZERO,
        ..WhatIfBudget::default()
    }
}

fn injector(spec: &str) -> Arc<FaultInjector> {
    Arc::new(FaultInjector::from_spec(spec).expect("valid fault spec"))
}

#[test]
fn transient_faults_retry_then_fall_back() {
    let catalog = tpch_catalog(1);
    let w = tpch_workload(1, 1, 1).unwrap();
    let q = &w.queries[0];
    let cfg = IndexConfig::empty();

    // Rate 1.0: every attempt fails, so each costing burns the full retry
    // budget and then degrades to the heuristic.
    let opt = WhatIfOptimizer::new(&catalog)
        .with_injector(injector("whatif_transient:1.0,seed:3"))
        .with_budget(WhatIfBudget { max_retries: 2, ..fast_budget() });
    let cost = opt.cost_bound(&q.bound, &cfg);
    assert_eq!(cost.to_bits(), opt.heuristic_cost(&q.bound).to_bits());
    assert_eq!(opt.whatif_retries(), 2, "retries capped at max_retries");
    assert_eq!(opt.whatif_fallbacks(), 1, "one fallback per costing");
    assert_eq!(opt.optimizer_calls(), 3, "initial attempt + 2 retries each count");
}

#[test]
fn transient_faults_can_recover_on_retry() {
    let catalog = tpch_catalog(1);
    let mut w = tpch_workload(1, 22, 1).unwrap();
    let cfg = IndexConfig::empty();

    // Baseline: the true costs with no injection.
    let clean = WhatIfOptimizer::new(&catalog).with_injector(injector(""));
    clean.populate_costs(&mut w);

    // Rate 0.5: attempts draw independently, so most costings recover on
    // some retry and return the *real* cost; the rest fall back.
    let opt = WhatIfOptimizer::new(&catalog)
        .with_injector(injector("whatif_transient:0.5,seed:9"))
        .with_budget(fast_budget());
    let mut recovered = 0;
    for q in &w.queries {
        let got = opt.cost_bound(&q.bound, &cfg);
        let real = q.cost;
        let heuristic = opt.heuristic_cost(&q.bound);
        assert!(
            got.to_bits() == real.to_bits() || got.to_bits() == heuristic.to_bits(),
            "cost is either the real answer or the documented heuristic"
        );
        if got.to_bits() == real.to_bits() {
            recovered += 1;
        }
    }
    // P(4 consecutive 0.5 failures) = 1/16 per costing: most recover.
    assert!(recovered >= 15, "only {recovered}/22 costings recovered");
    assert!(opt.whatif_retries() > 0, "rate 0.5 must trigger retries");

    // Determinism: a second identical pass makes identical decisions.
    let again = WhatIfOptimizer::new(&catalog)
        .with_injector(injector("whatif_transient:0.5,seed:9"))
        .with_budget(fast_budget());
    for q in &w.queries {
        assert_eq!(
            again.cost_bound(&q.bound, &cfg).to_bits(),
            opt.cost_bound(&q.bound, &cfg).to_bits()
        );
    }
}

#[test]
fn permanent_faults_fall_back_exactly_once_per_costing() {
    let catalog = tpch_catalog(1);
    let w = tpch_workload(1, 1, 1).unwrap();
    let q = &w.queries[0];
    let cfg = IndexConfig::empty();

    let opt = WhatIfOptimizer::new(&catalog)
        .with_injector(injector("whatif_permanent:1.0,seed:5"))
        .with_budget(fast_budget());
    let cost = opt.cost_bound(&q.bound, &cfg);
    assert_eq!(cost.to_bits(), opt.heuristic_cost(&q.bound).to_bits());
    assert_eq!(opt.whatif_retries(), 0, "permanent failures are never retried");
    assert_eq!(opt.whatif_fallbacks(), 1, "exactly one fallback");
    assert_eq!(opt.optimizer_calls(), 1, "exactly one (failed) attempt");
}

#[test]
fn cache_never_stores_fallback_costs_and_gauge_stays_exact() {
    let catalog = tpch_catalog(1);
    let mut w = tpch_workload(1, 22, 1).unwrap();
    let cfg = IndexConfig::empty();
    isum_optimizer::populate_costs(&mut w);

    // All-permanent: every cost_query degrades; nothing may be cached.
    let opt = WhatIfOptimizer::new(&catalog)
        .with_injector(injector("whatif_permanent:1.0,seed:2"))
        .with_budget(fast_budget());
    for q in &w.queries {
        let _ = opt.cost_query(&w, q.id, &cfg);
    }
    assert_eq!(opt.cache_entries(), 0, "fallback costs must not be cached");
    assert_eq!(opt.whatif_fallbacks(), w.len() as u64);
    // Degraded costings are re-attempted (not served a stale fallback).
    let calls_before = opt.optimizer_calls();
    for q in &w.queries {
        let _ = opt.cost_query(&w, q.id, &cfg);
    }
    assert!(opt.optimizer_calls() > calls_before, "degraded keys retry the optimizer");

    // Mixed rates: the gauge must equal genuine cached answers exactly.
    let opt = WhatIfOptimizer::new(&catalog)
        .with_injector(injector("whatif_transient:0.6,whatif_permanent:0.2,seed:11"))
        .with_budget(fast_budget());
    let mut real_answers = 0;
    for q in &w.queries {
        let got = opt.cost_query(&w, q.id, &cfg);
        if got.to_bits() != opt.heuristic_cost(&q.bound).to_bits() {
            real_answers += 1;
        }
    }
    assert!(real_answers > 0, "seed 11 should let some costings through");
    assert_eq!(
        opt.cache_entries(),
        real_answers,
        "entry gauge counts exactly the non-fallback answers"
    );
}

#[test]
fn call_budget_exhaustion_degrades_remaining_costings() {
    let catalog = tpch_catalog(1);
    let w = tpch_workload(1, 22, 1).unwrap();
    let cfg = IndexConfig::empty();

    let opt = WhatIfOptimizer::new(&catalog)
        .with_injector(injector(""))
        .with_budget(WhatIfBudget { max_calls: Some(5), ..fast_budget() });
    for (i, q) in w.queries.iter().enumerate() {
        let got = opt.cost_bound(&q.bound, &cfg);
        if i >= 5 {
            assert_eq!(got.to_bits(), opt.heuristic_cost(&q.bound).to_bits());
        }
    }
    assert_eq!(opt.optimizer_calls(), 5, "budget caps real invocations");
    assert_eq!(opt.whatif_fallbacks(), 17, "the rest degrade to the heuristic");
}

#[test]
fn latency_spikes_trip_the_call_timeout() {
    let catalog = tpch_catalog(1);
    let w = tpch_workload(1, 1, 1).unwrap();
    let q = &w.queries[0];
    let cfg = IndexConfig::empty();

    // Spike (20ms) exceeds the timeout (1ms) on every attempt: the call
    // times out, retries, and ultimately falls back.
    let opt = WhatIfOptimizer::new(&catalog)
        .with_injector(injector("latency:1.0,latency_ms:20,seed:1"))
        .with_budget(WhatIfBudget {
            call_timeout: Some(Duration::from_millis(1)),
            max_retries: 1,
            ..fast_budget()
        });
    let got = opt.cost_bound(&q.bound, &cfg);
    assert_eq!(got.to_bits(), opt.heuristic_cost(&q.bound).to_bits());
    assert_eq!(opt.whatif_timeouts(), 2, "initial attempt + 1 retry both time out");
    assert_eq!(opt.whatif_retries(), 1);

    // Without a timeout the spike just delays the real answer.
    let patient = WhatIfOptimizer::new(&catalog)
        .with_injector(injector("latency:1.0,latency_ms:1,seed:1"))
        .with_budget(fast_budget());
    let clean = WhatIfOptimizer::new(&catalog).with_injector(injector(""));
    assert_eq!(
        patient.cost_bound(&q.bound, &cfg).to_bits(),
        clean.cost_bound(&q.bound, &cfg).to_bits()
    );
    assert_eq!(patient.whatif_timeouts(), 0);
    assert_eq!(patient.whatif_fallbacks(), 0);
}

#[test]
fn backoff_schedule_is_capped() {
    let b = WhatIfBudget {
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(16),
        ..WhatIfBudget::default()
    };
    assert_eq!(b.backoff_for(0), Duration::from_millis(1));
    assert_eq!(b.backoff_for(1), Duration::from_millis(2));
    assert_eq!(b.backoff_for(4), Duration::from_millis(16));
    assert_eq!(b.backoff_for(10), Duration::from_millis(16), "capped");
    assert_eq!(b.backoff_for(63), Duration::from_millis(16), "shift overflow capped");

    // Monotone non-decreasing up to the cap.
    for a in 0..20 {
        assert!(b.backoff_for(a + 1) >= b.backoff_for(a));
    }
}

#[test]
fn zero_fault_injector_is_bit_identical_to_plain_costing() {
    let catalog = tpch_catalog(1);
    let w = tpch_workload(1, 22, 4).unwrap();
    let cfg = IndexConfig::empty();
    let plain = WhatIfOptimizer::new(&catalog).with_injector(injector(""));
    let guarded = WhatIfOptimizer::new(&catalog)
        .with_injector(injector("whatif_transient:0.0,parse:0.0"))
        .with_budget(WhatIfBudget::default());
    for q in &w.queries {
        assert_eq!(
            plain.cost_bound(&q.bound, &cfg).to_bits(),
            guarded.cost_bound(&q.bound, &cfg).to_bits()
        );
    }
    assert_eq!(guarded.whatif_fallbacks(), 0);
    assert_eq!(guarded.whatif_retries(), 0);
}
