//! WAL-durability benchmark: fsync-per-batch ingest throughput against
//! the no-durability serving path (DESIGN.md §14).
//!
//! ```text
//! cargo run -p isum-server --release --bin bench_wal [-- <out.json> [<baseline.json>]]
//! ```
//!
//! Boots a daemon with a checkpoint configured in a scratch directory —
//! so every acknowledged batch is appended to the write-ahead log and
//! `fsync`ed before the ack — streams the quick-scale TPC-H workload
//! through sequenced HTTP ingest, samples `GET /summary?k=10`, and
//! writes statements/sec plus p50/p99 latency to `BENCH_wal.json` (or
//! the path given as the first argument). A second argument names a
//! baseline JSON (CI passes the WAL-less `BENCH_shard.json`), whose
//! headline numbers and the resulting ratios are embedded in the
//! output; the CI gate bounds the throughput ratio so per-batch
//! durability cannot silently regress the serving path beyond the cost
//! of the fsyncs themselves.
//!
//! Fatal errors are reported as structured `error!` events (visible on
//! stderr under the default `ISUM_LOG` filter) before exiting nonzero.

use std::time::{Duration, Instant};

use isum_common::Json;
use isum_server::{Client, Server, ServerConfig};
use isum_workload::gen::{tpch_catalog, tpch_workload};

const N_QUERIES: usize = 120;
const BATCH: usize = 16;
const SUMMARY_SAMPLES: usize = 60;
const SUMMARY_K: usize = 10;

fn quantile(sorted_ms: &[f64], q: f64) -> f64 {
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

/// Reports a fatal benchmark error and exits.
fn fail(message: String) -> ! {
    isum_common::error!("bench.wal", message);
    std::process::exit(1);
}

/// Reads a numeric field of a baseline benchmark JSON.
fn baseline_num(doc: &Json, field: &str) -> Option<f64> {
    doc.get(field).and_then(Json::as_f64)
}

fn main() {
    isum_common::trace::init_from_env();
    let out = std::env::args().nth(1).unwrap_or_else(|| "BENCH_wal.json".into());
    let baseline_path = std::env::args().nth(2);
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let mut workload = tpch_workload(1, N_QUERIES, 42)
        .unwrap_or_else(|e| fail(format!("cannot generate TPC-H workload: {e}")));
    isum_optimizer::populate_costs(&mut workload);

    // Render sequenced ingest batches exactly like `isum client ingest`.
    let batches: Vec<String> = workload
        .queries
        .chunks(BATCH)
        .map(|chunk| {
            chunk
                .iter()
                .map(|q| format!("-- cost: {}\n{};\n", q.cost, q.sql.trim_end_matches(';')))
                .collect()
        })
        .collect();

    let dir = std::env::temp_dir().join(format!("isum_bench_wal_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        fail(format!("cannot create scratch dir {}: {e}", dir.display()));
    }
    let mut config = ServerConfig::new(tpch_catalog(1)).apply_drift_env().apply_wal_env();
    config.checkpoint = Some(dir.join("ckpt.json"));
    let server = Server::bind("127.0.0.1:0", config)
        .unwrap_or_else(|e| fail(format!("cannot bind benchmark server: {e}")));
    let client = Client::new(server.addr().to_string()).with_timeout(Duration::from_secs(30));
    let _ = client.healthz();

    let t0 = Instant::now();
    for (seq, batch) in batches.iter().enumerate() {
        let resp = client
            .ingest_with_retry(batch, Some(seq as u64), 600)
            .unwrap_or_else(|e| fail(format!("ingest seq {seq} failed: {e}")));
        if resp.status != 200 {
            fail(format!("ingest seq {seq} answered {}: {}", resp.status, resp.body));
        }
    }
    let ingest_secs = t0.elapsed().as_secs_f64();

    let mut latencies_ms: Vec<f64> = (0..SUMMARY_SAMPLES)
        .map(|_| {
            let t = Instant::now();
            let resp =
                client.summary(SUMMARY_K).unwrap_or_else(|e| fail(format!("summary failed: {e}")));
            if resp.status != 200 {
                fail(format!("summary answered {}: {}", resp.status, resp.body));
            }
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);

    let ingest_sps = N_QUERIES as f64 / ingest_secs;
    let p50 = quantile(&latencies_ms, 0.5);
    let p99 = quantile(&latencies_ms, 0.99);
    let mut fields = vec![
        ("bench".into(), Json::from("wal_quick_tpch")),
        (
            "workload".into(),
            Json::from(format!(
                "TPC-H quick ({N_QUERIES} queries), {BATCH}-statement batches with \
                 fsync-per-batch WAL durability, summary k={SUMMARY_K}"
            )),
        ),
        ("cpus".into(), Json::from(cpus)),
        ("ingest_statements".into(), Json::from(N_QUERIES)),
        ("ingest_batches".into(), Json::from(batches.len())),
        ("ingest_secs".into(), Json::Num(ingest_secs)),
        ("ingest_statements_per_sec".into(), Json::Num(ingest_sps)),
        ("summary_samples".into(), Json::from(SUMMARY_SAMPLES)),
        ("summary_p50_ms".into(), Json::Num(p50)),
        ("summary_p99_ms".into(), Json::Num(p99)),
        (
            "summary_mean_ms".into(),
            Json::Num(latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64),
        ),
    ];
    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(format!("cannot read baseline {path}: {e}")));
        let base = Json::parse(&text)
            .unwrap_or_else(|e| fail(format!("baseline {path} is not JSON: {e}")));
        let mut cmp = vec![("path".into(), Json::from(path.as_str()))];
        if let Some(b) = baseline_num(&base, "ingest_statements_per_sec") {
            cmp.push(("ingest_statements_per_sec".into(), Json::Num(b)));
            cmp.push(("ingest_throughput_ratio".into(), Json::Num(ingest_sps / b)));
        }
        if let Some(b) = baseline_num(&base, "summary_p50_ms") {
            cmp.push(("summary_p50_ms".into(), Json::Num(b)));
            cmp.push(("summary_p50_ratio".into(), Json::Num(p50 / b)));
        }
        if let Some(b) = baseline_num(&base, "summary_p99_ms") {
            cmp.push(("summary_p99_ms".into(), Json::Num(b)));
            cmp.push(("summary_p99_ratio".into(), Json::Num(p99 / b)));
        }
        fields.push(("baseline".into(), Json::Obj(cmp)));
    }
    let doc = Json::Obj(fields);
    if let Err(e) = std::fs::write(&out, format!("{}\n", doc.to_pretty())) {
        fail(format!("cannot write {out}: {e}"));
    }
    println!("{}", doc.to_pretty());
}
