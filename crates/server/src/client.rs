//! A std-only HTTP client for the daemon's wire API, used by the test
//! suite, the CI serve job, and `isum client`.
//!
//! One TCP connection per request (the server speaks `Connection: close`)
//! keeps the client stateless: it can hammer the server from many threads
//! without connection management, which is exactly what the concurrency
//! tests need.

use std::io::{self, Write};
use std::net::TcpStream;
use std::time::Duration;

use isum_common::Json;

use crate::http::read_response;

/// A client for one server address, optionally pinned to a tenant.
pub struct Client {
    addr: String,
    timeout: Duration,
    tenant: Option<String>,
}

/// One response: status code, headers (lowercased names), parsed body.
#[derive(Debug)]
pub struct ApiResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// Body parsed as JSON (`Json::Null` when empty or not JSON).
    pub json: Json,
    /// Raw body text.
    pub body: String,
}

impl ApiResponse {
    /// First value of header `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// `Retry-After` in seconds, when the server sent one.
    pub fn retry_after(&self) -> Option<u64> {
        self.header("retry-after").and_then(|v| v.parse().ok())
    }

    /// Looks up a top-level field of the JSON body.
    pub fn field(&self, name: &str) -> Option<&Json> {
        self.json.as_object()?.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

impl Client {
    /// A client for `addr` (e.g. `127.0.0.1:7071`) with a 30 s timeout.
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into(), timeout: Duration::from_secs(30), tenant: None }
    }

    /// Overrides the per-request read/write timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// Pins every request to `tenant` via the `X-Isum-Tenant` header.
    /// The name must pass [`crate::validate_tenant`] — the same rule the
    /// server enforces — so a bad name fails here, before any bytes hit
    /// the wire.
    ///
    /// # Errors
    /// The validation failure, phrased like the server's typed 400.
    pub fn with_tenant(mut self, tenant: &str) -> Result<Client, String> {
        crate::validate_tenant(tenant).map_err(|why| format!("tenant name {why}"))?;
        self.tenant = Some(tenant.to_string());
        Ok(self)
    }

    /// Sends one request and reads the response.
    pub fn request(&self, method: &str, target: &str, body: &str) -> io::Result<ApiResponse> {
        self.request_with_headers(method, target, body, &[])
    }

    /// Sends one request with extra headers (e.g. a client-chosen
    /// `X-Isum-Request-Id`) and reads the response.
    pub fn request_with_headers(
        &self,
        method: &str,
        target: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> io::Result<ApiResponse> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        {
            let mut w = &stream;
            write!(
                w,
                "{method} {target} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n",
                self.addr,
                body.len()
            )?;
            if let Some(tenant) = &self.tenant {
                write!(w, "X-Isum-Tenant: {tenant}\r\n")?;
            }
            for (name, value) in headers {
                write!(w, "{name}: {value}\r\n")?;
            }
            w.write_all(b"Connection: close\r\n\r\n")?;
            w.write_all(body.as_bytes())?;
            w.flush()?;
        }
        let (status, headers, raw) = read_response(&stream)?;
        let body = String::from_utf8_lossy(&raw).into_owned();
        let json = Json::parse(&body).unwrap_or(Json::Null);
        Ok(ApiResponse { status, headers, json, body })
    }

    /// `GET target`.
    pub fn get(&self, target: &str) -> io::Result<ApiResponse> {
        self.request("GET", target, "")
    }

    /// `POST target` with a body.
    pub fn post(&self, target: &str, body: &str) -> io::Result<ApiResponse> {
        self.request("POST", target, body)
    }

    /// `GET /healthz`.
    pub fn healthz(&self) -> io::Result<ApiResponse> {
        self.get("/healthz")
    }

    /// `GET /summary?k=N`.
    pub fn summary(&self, k: usize) -> io::Result<ApiResponse> {
        self.get(&format!("/summary?k={k}"))
    }

    /// `GET /summary/explain?k=N` (per-member attribution + coverage).
    pub fn explain(&self, k: usize) -> io::Result<ApiResponse> {
        self.get(&format!("/summary/explain?k={k}"))
    }

    /// `GET /status` (one-document operational rollup); `k` overrides the
    /// summary size the coverage gauge is computed at.
    pub fn status(&self, k: Option<usize>) -> io::Result<ApiResponse> {
        match k {
            Some(k) => self.get(&format!("/status?k={k}")),
            None => self.get("/status"),
        }
    }

    /// `GET /telemetry`.
    pub fn telemetry(&self) -> io::Result<ApiResponse> {
        self.get("/telemetry")
    }

    /// `GET /metrics` (Prometheus text exposition in `body`).
    pub fn metrics(&self) -> io::Result<ApiResponse> {
        self.get("/metrics")
    }

    /// `GET /events?n=N` (JSONL tail of recent events in `body`).
    pub fn events(&self, n: usize) -> io::Result<ApiResponse> {
        self.get(&format!("/events?n={n}"))
    }

    /// `POST /shutdown`.
    pub fn shutdown(&self) -> io::Result<ApiResponse> {
        self.post("/shutdown", "")
    }

    /// `POST /ingest` of one script, optionally stamped with a sequence
    /// number (see the server docs for the ordering contract).
    pub fn ingest(&self, script: &str, seq: Option<u64>) -> io::Result<ApiResponse> {
        let target = match seq {
            Some(s) => format!("/ingest?seq={s}"),
            None => "/ingest".to_string(),
        };
        self.post(&target, script)
    }

    /// [`Client::ingest`] with the retry loop a well-behaved producer
    /// runs: 429 (backpressure) and 503 (transient fault, drain race, or
    /// timeout) are retried with the same `seq` — the server's duplicate
    /// detection makes the retry idempotent — honoring `Retry-After`
    /// (capped at 2 s) for up to `max_attempts` deliveries.
    pub fn ingest_with_retry(
        &self,
        script: &str,
        seq: Option<u64>,
        max_attempts: u32,
    ) -> io::Result<ApiResponse> {
        let mut last: Option<ApiResponse> = None;
        for _ in 0..max_attempts.max(1) {
            match self.ingest(script, seq) {
                Ok(resp) if resp.status == 429 || resp.status == 503 => {
                    let wait = resp.retry_after().unwrap_or(1).min(2);
                    std::thread::sleep(Duration::from_millis(50 + wait * 200));
                    last = Some(resp);
                }
                Ok(resp) => return Ok(resp),
                Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(100)),
            }
        }
        last.ok_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "ingest retries exhausted"))
    }
}
