//! Workload-drift detection on the ingest path.
//!
//! The sequencer keeps a bounded sliding window of the most recently
//! observed `(template, utility mass)` pairs. After each applied batch it
//! compares the window's normalized per-template mass distribution
//! against the distribution over *everything* observed, using total
//! variation distance (half the L1 norm): `0` means the recent stream
//! looks exactly like the long-run workload, `1` means the recent
//! templates carry none of the historical mass — the summary selected
//! from history no longer represents what is arriving.
//!
//! The tracker is deterministic (pure arithmetic over engine state, no
//! clocks, no randomness) and **observation-only**: nothing it computes
//! feeds back into selection, weighting, or checkpoints, so `/summary`
//! stays byte-identical with drift tracking on, off, or at any window
//! size. Threshold crossings are edge-triggered — [`DriftSample::crossed`]
//! is true only on the transition from below to above — which is the
//! rate limit on the operator-facing `warn!` the server emits (one alert
//! per excursion, not one per batch).

use std::collections::VecDeque;

use isum_common::TemplateId;

/// Sliding-window drift detector; one per sequencer thread.
#[derive(Debug)]
pub struct DriftTracker {
    /// Recent observations as `(template index, unnormalized mass)`.
    window: VecDeque<(usize, f64)>,
    /// Window capacity in observations; `0` disables tracking entirely.
    cap: usize,
    /// Score above which a crossing is reported.
    threshold: f64,
    /// Engine observations already consumed into the window.
    seen: usize,
    /// Whether the last computed score was above the threshold
    /// (edge-trigger state for the rate-limited alert).
    above: bool,
}

/// One post-batch drift measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSample {
    /// Total variation distance in `[0, 1]` between the window's and the
    /// full history's normalized template-mass distributions.
    pub score: f64,
    /// Observations currently in the window.
    pub window_len: usize,
    /// True exactly when this sample crossed the threshold from below.
    pub crossed: bool,
}

impl DriftTracker {
    /// A tracker holding at most `window` recent observations; `window`
    /// of `0` disables tracking ([`on_batch`](Self::on_batch) returns
    /// `None` and consumes nothing).
    pub fn new(window: usize, threshold: f64) -> DriftTracker {
        DriftTracker { window: VecDeque::new(), cap: window, threshold, seen: 0, above: false }
    }

    /// True when a nonzero window was configured.
    pub fn enabled(&self) -> bool {
        self.cap > 0
    }

    /// Starts consumption at observation `seen` instead of `0`, so a
    /// checkpoint-restored history does not flood the window at startup.
    pub fn starting_at(mut self, seen: usize) -> DriftTracker {
        self.seen = seen;
        self
    }

    /// Engine observations consumed so far — pass to
    /// `Engine::observations_since` to fetch only the new arrivals.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Folds a batch's fresh observations into the window and scores the
    /// window against `total_mass` (per-template unnormalized mass over
    /// the whole observed history, indexed by [`TemplateId`]).
    pub fn on_batch(
        &mut self,
        fresh: &[(TemplateId, f64)],
        total_mass: &[f64],
    ) -> Option<DriftSample> {
        if !self.enabled() {
            return None;
        }
        self.seen += fresh.len();
        for &(t, mass) in fresh {
            if self.window.len() == self.cap {
                self.window.pop_front();
            }
            self.window.push_back((t.index(), mass));
        }
        let score = self.score(total_mass);
        let crossed = score > self.threshold && !self.above;
        self.above = score > self.threshold;
        Some(DriftSample { score, window_len: self.window.len(), crossed })
    }

    /// Total variation distance between the window's and the history's
    /// normalized template-mass distributions; `0.0` when either carries
    /// no positive mass.
    fn score(&self, total_mass: &[f64]) -> f64 {
        let total: f64 = total_mass.iter().sum();
        let mut window_mass = vec![0.0; total_mass.len()];
        let mut window_total = 0.0;
        for &(t, mass) in &self.window {
            if t < window_mass.len() {
                window_mass[t] += mass;
                window_total += mass;
            }
        }
        if total <= 0.0 || window_total <= 0.0 {
            return 0.0;
        }
        let l1: f64 = total_mass
            .iter()
            .zip(&window_mass)
            .map(|(&all, &win)| (all / total - win / window_total).abs())
            .sum();
        0.5 * l1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> TemplateId {
        TemplateId::from_index(i)
    }

    #[test]
    fn zero_window_disables_tracking() {
        let mut d = DriftTracker::new(0, 0.5);
        assert!(!d.enabled());
        assert_eq!(d.on_batch(&[(t(0), 1.0)], &[1.0]), None);
        assert_eq!(d.seen(), 0);
    }

    #[test]
    fn identical_stream_scores_zero() {
        let mut d = DriftTracker::new(8, 0.5);
        let fresh: Vec<_> = (0..4).map(|i| (t(i % 2), 1.0)).collect();
        let total = [2.0, 2.0];
        let s = d.on_batch(&fresh, &total).expect("enabled");
        assert_eq!(s.score, 0.0);
        assert!(!s.crossed);
        assert_eq!(s.window_len, 4);
        assert_eq!(d.seen(), 4);
    }

    #[test]
    fn template_shift_drives_score_up_and_crosses_once() {
        let mut d = DriftTracker::new(4, 0.5);
        // History: templates 0 and 1 half-and-half; first batch matches.
        let s = d.on_batch(&[(t(0), 1.0), (t(1), 1.0)], &[4.0, 4.0]).unwrap();
        assert!(s.score < 0.5 && !s.crossed);
        // The stream shifts entirely to template 2. After the window fills
        // with template-2 mass, the distributions are nearly disjoint.
        let s = d.on_batch(&[(t(2), 1.0); 4], &[4.0, 4.0, 4.0]).unwrap();
        assert!(s.score > 0.5, "window all template 2, history 2/3 elsewhere: {}", s.score);
        assert!(s.crossed, "first excursion above the threshold alerts");
        // Staying above the threshold does not re-alert.
        let s = d.on_batch(&[(t(2), 1.0); 2], &[4.0, 4.0, 6.0]).unwrap();
        assert!(s.score > 0.5);
        assert!(!s.crossed, "alert is edge-triggered");
        assert_eq!(s.window_len, 4, "window is bounded at its capacity");
    }

    #[test]
    fn recovering_below_threshold_rearms_the_alert() {
        let mut d = DriftTracker::new(2, 0.4);
        let total = [1.0, 1.0];
        assert!(d.on_batch(&[(t(0), 1.0), (t(0), 1.0)], &total).unwrap().crossed);
        // Window returns to the historical mix: below threshold, re-armed.
        let s = d.on_batch(&[(t(0), 1.0), (t(1), 1.0)], &total).unwrap();
        assert!(s.score < 0.4 && !s.crossed);
        // A second excursion alerts again.
        assert!(d.on_batch(&[(t(1), 1.0), (t(1), 1.0)], &total).unwrap().crossed);
    }

    #[test]
    fn empty_mass_is_zero_not_nan() {
        let mut d = DriftTracker::new(4, 0.5);
        let s = d.on_batch(&[(t(0), 0.0)], &[0.0]).unwrap();
        assert_eq!(s.score, 0.0);
    }
}
