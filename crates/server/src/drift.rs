//! Workload-drift detection on the ingest path.
//!
//! The sequencer keeps a bounded sliding window of the most recently
//! observed `(template, utility mass)` pairs. After each applied batch it
//! compares the window's normalized per-template mass distribution
//! against the distribution over *everything* observed, using total
//! variation distance (half the L1 norm): `0` means the recent stream
//! looks exactly like the long-run workload, `1` means the recent
//! templates carry none of the historical mass — the summary selected
//! from history no longer represents what is arriving.
//!
//! The tracker is deterministic (pure arithmetic over engine state, no
//! clocks, no randomness). Under the default `ISUM_DRIFT_ACTION=warn` it
//! is **observation-only**: nothing it computes feeds back into
//! selection, weighting, or checkpoints, so `/summary` stays
//! byte-identical with drift tracking on, off, or at any window size.
//! Under `ISUM_DRIFT_ACTION=resummarize` a crossing additionally triggers
//! an adaptive re-summarization of the shard over the recent window (see
//! `shards::observe_drift`). Threshold crossings are edge-triggered —
//! [`DriftSample::crossed`] is true only on the transition from below to
//! above — which is the rate limit on the operator-facing `warn!` the
//! server emits (one alert per excursion, not one per batch). The
//! edge-trigger state and window contents serialize into shard snapshots
//! ([`DriftTracker::snapshot`]) so a restart neither double-fires an
//! alert already raised nor forgets an excursion in progress.

use std::collections::VecDeque;

use isum_common::{hex_bits, unhex_bits, Json, TemplateId};

/// What a shard's sequencer does when the drift score crosses the
/// threshold (`ISUM_DRIFT_ACTION`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftAction {
    /// Raise the edge-triggered `warn!` alert only — the default, and
    /// strictly observation-only (pre-existing behavior, byte-identical).
    Warn,
    /// Raise the alert *and* re-summarize the shard over the recent
    /// window: the engine keeps only the window's statements, so the
    /// summary adapts to what is arriving now. Runs behind the
    /// sequencer, so the result is deterministic for a fixed request
    /// stream.
    Resummarize,
}

/// Sliding-window drift detector; one per sequencer thread.
#[derive(Debug)]
pub struct DriftTracker {
    /// Recent observations as `(template index, unnormalized mass)`.
    window: VecDeque<(usize, f64)>,
    /// Window capacity in observations; `0` disables tracking entirely.
    cap: usize,
    /// Score above which a crossing is reported.
    threshold: f64,
    /// Engine observations already consumed into the window.
    seen: usize,
    /// Whether the last computed score was above the threshold
    /// (edge-trigger state for the rate-limited alert).
    above: bool,
    /// Set by [`reset_after_resummarize`](Self::reset_after_resummarize):
    /// the window was just emptied while the engine history was not, so a
    /// partially refilled window is a noise sample, not a workload
    /// estimate — tiny windows routinely sit at high total-variation
    /// distance from any mixed history and would re-fire the alert
    /// immediately after every rebuild. While set, `on_batch` consumes
    /// observations but reports no sample until the window refills to
    /// capacity.
    refilling: bool,
}

/// One post-batch drift measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSample {
    /// Total variation distance in `[0, 1]` between the window's and the
    /// full history's normalized template-mass distributions.
    pub score: f64,
    /// Observations currently in the window.
    pub window_len: usize,
    /// True exactly when this sample crossed the threshold from below.
    pub crossed: bool,
}

impl DriftTracker {
    /// A tracker holding at most `window` recent observations; `window`
    /// of `0` disables tracking ([`on_batch`](Self::on_batch) returns
    /// `None` and consumes nothing).
    pub fn new(window: usize, threshold: f64) -> DriftTracker {
        DriftTracker {
            window: VecDeque::new(),
            cap: window,
            threshold,
            seen: 0,
            above: false,
            refilling: false,
        }
    }

    /// True when a nonzero window was configured.
    pub fn enabled(&self) -> bool {
        self.cap > 0
    }

    /// Starts consumption at observation `seen` instead of `0`, so a
    /// checkpoint-restored history does not flood the window at startup.
    pub fn starting_at(mut self, seen: usize) -> DriftTracker {
        self.seen = seen;
        self
    }

    /// Engine observations consumed so far — pass to
    /// `Engine::observations_since` to fetch only the new arrivals.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Folds a batch's fresh observations into the window and scores the
    /// window against `total_mass` (per-template unnormalized mass over
    /// the whole observed history, indexed by [`TemplateId`]).
    pub fn on_batch(
        &mut self,
        fresh: &[(TemplateId, f64)],
        total_mass: &[f64],
    ) -> Option<DriftSample> {
        if !self.enabled() {
            return None;
        }
        self.seen += fresh.len();
        for &(t, mass) in fresh {
            if self.window.len() == self.cap {
                self.window.pop_front();
            }
            self.window.push_back((t.index(), mass));
        }
        if self.refilling {
            if self.window.len() < self.cap {
                return None;
            }
            self.refilling = false;
        }
        let score = self.score(total_mass);
        let crossed = score > self.threshold && !self.above;
        self.above = score > self.threshold;
        Some(DriftSample { score, window_len: self.window.len(), crossed })
    }

    /// Serializes the window contents and edge-trigger state for
    /// embedding in a shard snapshot. Masses carry exact IEEE-754 bit
    /// patterns so a restore replays scoring bit-identically.
    pub fn snapshot(&self) -> Json {
        let window: Vec<Json> = self
            .window
            .iter()
            .map(|&(t, mass)| Json::Arr(vec![Json::from(t), Json::from(hex_bits(mass))]))
            .collect();
        Json::Obj(vec![
            ("window".into(), Json::Arr(window)),
            ("above".into(), Json::from(self.above)),
            ("refilling".into(), Json::from(self.refilling)),
        ])
    }

    /// Restores window contents and edge-trigger state from a
    /// [`DriftTracker::snapshot`] document. Best-effort: entries that do
    /// not parse are skipped and a missing document leaves the tracker
    /// fresh — drift state is advisory, never worth failing a recovery
    /// over. Capacity still binds: excess restored entries are dropped
    /// oldest-first.
    pub fn restore_state(mut self, snap: &Json) -> DriftTracker {
        if !self.enabled() {
            return self;
        }
        let obj = snap.as_object().unwrap_or(&[]);
        let field = |name: &str| obj.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        if let Some(entries) = field("window").and_then(Json::as_array) {
            for entry in entries {
                let Some([t, bits]) = entry.as_array().and_then(|a| <&[Json; 2]>::try_from(a).ok())
                else {
                    continue;
                };
                let (Some(t), Some(mass)) = (t.as_u64(), bits.as_str().and_then(unhex_bits)) else {
                    continue;
                };
                if self.window.len() == self.cap {
                    self.window.pop_front();
                }
                self.window.push_back((t as usize, mass));
            }
        }
        self.above = field("above").and_then(Json::as_bool).unwrap_or(false);
        self.refilling = field("refilling").and_then(Json::as_bool).unwrap_or(false);
        self
    }

    /// Resets the tracker after an adaptive re-summarization: the engine
    /// history now *is* the recent window, so the window clears, the
    /// consumption cursor moves to the engine's new observation count,
    /// and the alert re-arms. Scoring stays suppressed until the window
    /// has refilled to capacity — a half-refilled window compared against
    /// the kept history is sampling noise and would re-cross the
    /// threshold right after every rebuild.
    pub fn reset_after_resummarize(&mut self, observed: usize) {
        self.window.clear();
        self.seen = observed;
        self.above = false;
        self.refilling = true;
    }

    /// Total variation distance between the window's and the history's
    /// normalized template-mass distributions; `0.0` when either carries
    /// no positive mass.
    fn score(&self, total_mass: &[f64]) -> f64 {
        let total: f64 = total_mass.iter().sum();
        let mut window_mass = vec![0.0; total_mass.len()];
        let mut window_total = 0.0;
        for &(t, mass) in &self.window {
            if t < window_mass.len() {
                window_mass[t] += mass;
                window_total += mass;
            }
        }
        if total <= 0.0 || window_total <= 0.0 {
            return 0.0;
        }
        let l1: f64 = total_mass
            .iter()
            .zip(&window_mass)
            .map(|(&all, &win)| (all / total - win / window_total).abs())
            .sum();
        0.5 * l1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> TemplateId {
        TemplateId::from_index(i)
    }

    #[test]
    fn zero_window_disables_tracking() {
        let mut d = DriftTracker::new(0, 0.5);
        assert!(!d.enabled());
        assert_eq!(d.on_batch(&[(t(0), 1.0)], &[1.0]), None);
        assert_eq!(d.seen(), 0);
    }

    #[test]
    fn identical_stream_scores_zero() {
        let mut d = DriftTracker::new(8, 0.5);
        let fresh: Vec<_> = (0..4).map(|i| (t(i % 2), 1.0)).collect();
        let total = [2.0, 2.0];
        let s = d.on_batch(&fresh, &total).expect("enabled");
        assert_eq!(s.score, 0.0);
        assert!(!s.crossed);
        assert_eq!(s.window_len, 4);
        assert_eq!(d.seen(), 4);
    }

    #[test]
    fn template_shift_drives_score_up_and_crosses_once() {
        let mut d = DriftTracker::new(4, 0.5);
        // History: templates 0 and 1 half-and-half; first batch matches.
        let s = d.on_batch(&[(t(0), 1.0), (t(1), 1.0)], &[4.0, 4.0]).unwrap();
        assert!(s.score < 0.5 && !s.crossed);
        // The stream shifts entirely to template 2. After the window fills
        // with template-2 mass, the distributions are nearly disjoint.
        let s = d.on_batch(&[(t(2), 1.0); 4], &[4.0, 4.0, 4.0]).unwrap();
        assert!(s.score > 0.5, "window all template 2, history 2/3 elsewhere: {}", s.score);
        assert!(s.crossed, "first excursion above the threshold alerts");
        // Staying above the threshold does not re-alert.
        let s = d.on_batch(&[(t(2), 1.0); 2], &[4.0, 4.0, 6.0]).unwrap();
        assert!(s.score > 0.5);
        assert!(!s.crossed, "alert is edge-triggered");
        assert_eq!(s.window_len, 4, "window is bounded at its capacity");
    }

    #[test]
    fn recovering_below_threshold_rearms_the_alert() {
        let mut d = DriftTracker::new(2, 0.4);
        let total = [1.0, 1.0];
        assert!(d.on_batch(&[(t(0), 1.0), (t(0), 1.0)], &total).unwrap().crossed);
        // Window returns to the historical mix: below threshold, re-armed.
        let s = d.on_batch(&[(t(0), 1.0), (t(1), 1.0)], &total).unwrap();
        assert!(s.score < 0.4 && !s.crossed);
        // A second excursion alerts again.
        assert!(d.on_batch(&[(t(1), 1.0), (t(1), 1.0)], &total).unwrap().crossed);
    }

    #[test]
    fn empty_mass_is_zero_not_nan() {
        let mut d = DriftTracker::new(4, 0.5);
        let s = d.on_batch(&[(t(0), 0.0)], &[0.0]).unwrap();
        assert_eq!(s.score, 0.0);
    }

    #[test]
    fn snapshot_round_trip_preserves_window_and_edge_trigger() {
        let mut d = DriftTracker::new(2, 0.4);
        let total = [1.0, 1.0];
        // Drive above the threshold so `above` is set, then snapshot.
        assert!(d.on_batch(&[(t(0), 1.0), (t(0), 1.0)], &total).unwrap().crossed);
        let snap = d.snapshot();
        let reparsed = Json::parse(&snap.to_pretty()).expect("snapshot parses");

        let mut restored = DriftTracker::new(2, 0.4).starting_at(d.seen()).restore_state(&reparsed);
        assert_eq!(restored.seen(), d.seen());
        // Still above: another above-threshold batch must NOT re-fire.
        let s = restored.on_batch(&[(t(0), 1.0)], &total).unwrap();
        assert!(s.score > 0.4 && !s.crossed, "restored edge-trigger suppresses double-fire");
        // Dropping below re-arms, exactly like the live tracker.
        let s = restored.on_batch(&[(t(0), 1.0), (t(1), 1.0)], &total).unwrap();
        assert!(s.score < 0.4 && !s.crossed);
        assert!(restored.on_batch(&[(t(1), 1.0), (t(1), 1.0)], &total).unwrap().crossed);
    }

    #[test]
    fn restore_is_lenient_and_capacity_bounded() {
        // Garbage documents leave a fresh tracker rather than failing.
        let fresh = DriftTracker::new(4, 0.5).snapshot().to_pretty();
        let d = DriftTracker::new(4, 0.5).restore_state(&Json::parse("[1, 2]").unwrap());
        assert_eq!(d.snapshot().to_pretty(), fresh);
        let garbage = r#"{"window": [[0], "x", [1, "nothex"]], "above": 3}"#;
        let d = DriftTracker::new(4, 0.5).restore_state(&Json::parse(garbage).unwrap());
        assert_eq!(d.snapshot().to_pretty(), fresh);

        // More restored entries than capacity: keep the newest.
        let mut big = DriftTracker::new(8, 0.5);
        let _ =
            big.on_batch(&(0..8).map(|i| (t(i), i as f64 + 1.0)).collect::<Vec<_>>(), &[1.0; 8]);
        let small = DriftTracker::new(2, 0.5).restore_state(&big.snapshot());
        let snap = small.snapshot();
        let window = snap.as_object().unwrap()[0].1.as_array().unwrap();
        assert_eq!(window.len(), 2, "restore respects the configured capacity");
        assert_eq!(window[0].as_array().unwrap()[0].as_u64(), Some(6), "newest entries win");
    }

    #[test]
    fn reset_after_resummarize_rearms_and_suppresses_until_refilled() {
        let mut d = DriftTracker::new(2, 0.4);
        let total = [1.0, 1.0];
        assert!(d.on_batch(&[(t(0), 1.0), (t(0), 1.0)], &total).unwrap().crossed);
        d.reset_after_resummarize(7);
        assert_eq!(d.seen(), 7);
        let snap = d.snapshot();
        let window = snap.as_object().unwrap()[0].1.as_array().unwrap();
        assert!(window.is_empty(), "window clears on reset");
        // A half-refilled window is noise, not a sample: no score, and in
        // particular no instant re-fire against the truncated history.
        assert_eq!(d.on_batch(&[(t(0), 1.0)], &total), None, "suppressed while refilling");
        assert_eq!(d.seen(), 8, "suppressed batches are still consumed");
        // Once refilled to capacity, scoring resumes and the re-armed
        // tracker crosses on a genuine excursion.
        assert!(d.on_batch(&[(t(0), 1.0)], &total).unwrap().crossed);
    }

    #[test]
    fn refill_suppression_survives_a_snapshot_round_trip() {
        let mut d = DriftTracker::new(4, 0.4);
        let total = [1.0, 1.0];
        let _ = d.on_batch(&[(t(0), 1.0); 4], &total);
        d.reset_after_resummarize(4);
        let mut restored =
            DriftTracker::new(4, 0.4).starting_at(d.seen()).restore_state(&d.snapshot());
        // A checkpoint taken right after a rebuild (forced compaction)
        // must not turn the refill gap into an instant post-boot re-fire.
        assert_eq!(restored.on_batch(&[(t(0), 1.0); 3], &total), None, "still refilling");
        let s = restored.on_batch(&[(t(0), 1.0)], &total).expect("refilled");
        assert!(s.crossed, "scoring resumes at capacity");
    }
}
