//! The serving engine: an incrementally grown [`Workload`] paired with an
//! [`IncrementalIsum`] observer, plus a crash-safe checkpoint of both.
//!
//! # Bit-identity contract
//!
//! Every statement accepted here goes through exactly the pipeline the
//! batch CLI uses: [`split_script`] carves up the script, `push_sql`
//! parses/binds/interns, missing costs are filled by
//! [`WhatIfOptimizer::cost_bound`] against the empty configuration, and
//! the query is handed to [`IncrementalIsum::observe`]. Because the
//! incremental observer shares the batch weighting code (`weigh_selected`
//! over the observed template slice), a live `/summary` over ingested
//! statements is bit-identical to `isum compress` over the same script.
//!
//! # Snapshot format
//!
//! The snapshot is a JSON document written atomically (temp file +
//! rename). Since the write-ahead log became the primary durability
//! mechanism (DESIGN.md §14) it is a periodic *compaction artifact* —
//! written every N batches / M bytes of WAL growth and at drain, not
//! after every batch:
//!
//! ```text
//! { "version": 1,
//!   "next_seq": <u64>,                     // sequencer high-water mark
//!   "wal_seq": <u64>,                      // WAL records already folded in
//!   "statements": [[<sql>, <cost bits>]],  // accepted statements in order
//!   "isum": { ... },                       // IncrementalIsum snapshot
//!   "drift": { ... } }                     // DriftTracker snapshot (optional)
//! ```
//!
//! `wal_seq` is the per-shard WAL record watermark: recovery replays only
//! log records with `wal_seq >=` the snapshot's value, so a crash between
//! snapshot rotation and WAL truncation converges instead of
//! double-applying. Snapshots written before the WAL existed carry no
//! `wal_seq` field and restore as watermark 0. `drift` carries the
//! sequencer's drift-tracker window and edge-trigger state
//! ([`crate::drift::DriftTracker::snapshot`]); snapshots written before
//! drift state was persisted carry no `drift` field and restore a fresh
//! tracker.
//!
//! Costs are serialized as 16-hex-digit IEEE-754 bit patterns
//! ([`isum_common::hex_bits`]), so a restore rebuilds the observed
//! workload bit-identically without re-running the what-if optimizer.

use std::path::Path;

use isum_advisor::{DexterAdvisor, DtaAdvisor, IndexAdvisor, TuningConstraints};
use isum_catalog::Catalog;
use isum_common::{count, hex_bits, unhex_bits, Error, Json, Result};
use isum_core::{IncrementalIsum, IsumConfig};
use isum_optimizer::{IndexConfig, WhatIfOptimizer};
use isum_workload::{split_script, Workload};

/// Per-batch ingest outcome: how many statements were applied and which
/// were rejected (with the statement's index within the batch and the
/// rejection reason). A rejected statement never mutates engine state.
#[derive(Debug)]
pub struct IngestOutcome {
    /// Statements parsed, bound, costed, and observed.
    pub accepted: usize,
    /// `(statement index within the batch, reason)` for each reject.
    pub rejected: Vec<(usize, String)>,
    /// Total statements in the batch.
    pub total: usize,
}

impl IngestOutcome {
    /// Renders the outcome as the `/ingest` response body.
    pub fn to_json(&self, seq: Option<u64>, observed: usize) -> Json {
        let mut fields = vec![("status".into(), Json::from("ok"))];
        if let Some(s) = seq {
            fields.push(("seq".into(), Json::from(s)));
        }
        fields.push(("applied".into(), Json::from(self.accepted)));
        fields.push(("total".into(), Json::from(self.total)));
        fields.push((
            "rejected".into(),
            Json::Arr(
                self.rejected
                    .iter()
                    .map(|(i, reason)| {
                        Json::Obj(vec![
                            ("statement".into(), Json::from(*i)),
                            ("error".into(), Json::from(reason.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ));
        fields.push(("observed".into(), Json::from(observed)));
        Json::Obj(fields)
    }
}

/// The observed workload plus its incremental compression state.
pub struct Engine {
    workload: Workload,
    isum: IncrementalIsum,
}

impl Engine {
    /// An engine with no observed queries.
    pub fn new(catalog: Catalog, config: IsumConfig) -> Engine {
        Engine { workload: Workload::empty(catalog), isum: IncrementalIsum::new(config) }
    }

    /// Number of observed queries.
    pub fn observed(&self) -> usize {
        self.workload.len()
    }

    /// Number of distinct templates among observed queries.
    pub fn template_count(&self) -> usize {
        self.isum.template_count()
    }

    /// Applies one `;`-separated script: each statement is parsed, bound,
    /// costed (missing costs filled exactly like the batch CLI, via
    /// `cost_bound` against the empty index configuration), and observed.
    /// Statement failures are lenient — recorded per statement, never
    /// aborting the batch — and leave no partial state behind.
    pub fn apply_script(&mut self, script: &str) -> IngestOutcome {
        let (sqls, costs) = split_script(script);
        let stmts: Vec<(String, Option<f64>)> = sqls.into_iter().zip(costs).collect();
        self.apply_statements(&stmts)
    }

    /// Applies pre-split `(sql, explicit cost)` statements — the shard
    /// router uses this to apply a hash-routed slice of a batch without
    /// re-splitting. Identical semantics to [`Engine::apply_script`].
    pub fn apply_statements(&mut self, stmts: &[(String, Option<f64>)]) -> IngestOutcome {
        let mut outcome = IngestOutcome { accepted: 0, rejected: Vec::new(), total: stmts.len() };
        for (i, (sql, cost)) in stmts.iter().enumerate() {
            match self.apply_one(sql, cost.unwrap_or(0.0)) {
                Ok(()) => {
                    outcome.accepted += 1;
                    count!("server.ingest.statements");
                }
                Err(e) => {
                    count!("server.ingest.rejected_statements");
                    outcome.rejected.push((i, e.to_string()));
                }
            }
        }
        outcome
    }

    /// This engine's contribution to a cross-shard merge; see
    /// [`isum_core::IncrementalIsum::shard_partial`].
    pub fn shard_partial(&self) -> isum_core::ShardPartial {
        self.isum.shard_partial()
    }

    /// Applies a single statement; see [`Engine::apply_script`].
    fn apply_one(&mut self, sql: &str, cost: f64) -> Result<()> {
        let id = self.workload.push_sql(sql, cost)?;
        if self.workload.queries[id.index()].cost <= 0.0 {
            let filled = {
                let opt = WhatIfOptimizer::new(&self.workload.catalog);
                opt.cost_bound(&self.workload.queries[id.index()].bound, &IndexConfig::empty())
            };
            self.workload.queries[id.index()].cost = filled;
        }
        let Engine { workload, isum } = self;
        if let Err(e) = isum.observe(&workload.queries[id.index()], &workload.catalog) {
            // Unreachable in practice (`push_sql` already parsed this
            // statement), but keep workload and observer in lockstep.
            self.workload.queries.pop();
            return Err(e);
        }
        Ok(())
    }

    /// Compresses the observed workload to `k` queries and renders the
    /// `/summary` response body — the same JSON `isum compress --json`
    /// prints, so live and batch output can be compared byte for byte.
    pub fn summary_json(&self, k: usize) -> Result<Json> {
        let compressed = self.isum.select(k)?;
        Ok(summary_to_json(k, self.observed(), self.template_count(), &compressed.entries))
    }

    /// Selects `k` queries and derives attribution + coverage for the
    /// result (observation-only; see [`IncrementalIsum::explain`]).
    ///
    /// # Errors
    /// Same failure modes as [`Engine::summary_json`].
    pub fn explain(&self, k: usize) -> Result<isum_core::SummaryExplanation> {
        self.isum.explain(k)
    }

    /// Renders the `/summary/explain` response body: the summary members
    /// with per-template attribution and the coverage gauges. Weights and
    /// shares carry exact IEEE-754 bit patterns next to their decimal
    /// renderings, like `/summary`.
    pub fn explain_json(&self, k: usize) -> Result<Json> {
        let e = self.explain(k)?;
        let selected: Vec<Json> = e
            .members
            .iter()
            .map(|m| {
                Json::Obj(vec![
                    ("query".into(), Json::from(m.query.index())),
                    ("weight".into(), Json::from(m.weight)),
                    ("weight_bits".into(), Json::from(hex_bits(m.weight))),
                    ("template".into(), Json::from(m.template.index())),
                    ("instances".into(), Json::from(m.instances)),
                    ("selected_instances".into(), Json::from(m.selected_instances)),
                    ("utility_share".into(), Json::from(m.utility_share)),
                    ("fingerprint".into(), Json::from(self.isum.template_fingerprint(m.template))),
                ])
            })
            .collect();
        Ok(Json::Obj(vec![
            ("k".into(), Json::from(e.k)),
            ("observed".into(), Json::from(e.observed)),
            ("templates".into(), Json::from(e.templates)),
            ("coverage".into(), Json::from(e.coverage)),
            ("coverage_bits".into(), Json::from(hex_bits(e.coverage))),
            ("represented".into(), Json::from(e.represented)),
            ("represented_fraction".into(), Json::from(e.represented_fraction())),
            ("selected".into(), Json::Arr(selected)),
        ]))
    }

    /// Per-template unnormalized utility mass over everything observed;
    /// see [`IncrementalIsum::template_mass`].
    pub fn template_mass(&self) -> Vec<f64> {
        self.isum.template_mass()
    }

    /// `(template, mass)` of observations `from..observed()`, in arrival
    /// order; see [`IncrementalIsum::observations_since`].
    pub fn observations_since(&self, from: usize) -> Vec<(isum_common::TemplateId, f64)> {
        self.isum.observations_since(from)
    }

    /// Runs an index advisor on the compressed workload and renders the
    /// `/tune` response body.
    pub fn tune_json(
        &self,
        k: usize,
        advisor_name: &str,
        constraints: &TuningConstraints,
    ) -> Result<Json> {
        let compressed = self.isum.select(k)?;
        let advisor: Box<dyn IndexAdvisor> = match advisor_name {
            "dta" => Box::new(DtaAdvisor::new()),
            "dexter" => Box::new(DexterAdvisor::new()),
            other => {
                return Err(Error::InvalidConfig(format!(
                    "unknown advisor `{other}` (dta | dexter)"
                )))
            }
        };
        let opt = WhatIfOptimizer::new(&self.workload.catalog);
        let config = advisor.recommend(&opt, &self.workload, &compressed, constraints);
        let indexes: Vec<Json> = config
            .indexes()
            .iter()
            .map(|ix| Json::from(ix.display(&self.workload.catalog)))
            .collect();
        Ok(Json::Obj(vec![
            ("advisor".into(), Json::from(advisor.name())),
            ("k".into(), Json::from(k)),
            ("observed".into(), Json::from(self.observed())),
            ("indexes".into(), Json::Arr(indexes)),
            ("improvement_pct".into(), Json::from(opt.improvement_pct(&self.workload, &config))),
        ]))
    }

    /// Rebuilds the engine keeping only the most recent `n` observed
    /// statements — the adaptive re-summarization action behind
    /// `ISUM_DRIFT_ACTION=resummarize`. Costs were populated at ingest
    /// time, so the rebuild re-parses and re-binds with the existing
    /// cost values and never calls the what-if optimizer: for a fixed
    /// request stream the result is a pure function of the retained
    /// statements, exactly like a checkpoint restore of those statements.
    /// Returns the number of statements retained.
    pub fn resummarize_keep_last(&mut self, n: usize) -> usize {
        let start = self.workload.len().saturating_sub(n);
        let kept: Vec<(String, f64)> =
            self.workload.queries[start..].iter().map(|q| (q.sql.clone(), q.cost)).collect();
        let catalog = self.workload.catalog.clone();
        let config = self.isum.config();
        self.workload = Workload::empty(catalog);
        self.isum = IncrementalIsum::new(config);
        for (sql, cost) in &kept {
            // Each statement already parsed, bound, and observed once, so
            // failures are unreachable — but stay lenient like ingest.
            if let Ok(id) = self.workload.push_sql(sql, *cost) {
                let Engine { workload, isum } = self;
                if isum.observe(&workload.queries[id.index()], &workload.catalog).is_err() {
                    workload.queries.pop();
                }
            }
        }
        count!("server.resummarize");
        self.workload.len()
    }

    /// Serializes the full engine state plus the sequencer high-water
    /// mark, the WAL record watermark, and (when present) the drift
    /// tracker's window/edge-trigger state; see the module docs for the
    /// format.
    pub fn snapshot(&self, next_seq: u64, wal_seq: u64, drift: Option<&Json>) -> Json {
        let statements: Vec<Json> = self
            .workload
            .queries
            .iter()
            .map(|q| Json::Arr(vec![Json::from(q.sql.as_str()), Json::from(hex_bits(q.cost))]))
            .collect();
        let mut fields = vec![
            ("version".into(), Json::from(1u64)),
            ("next_seq".into(), Json::from(next_seq)),
            ("wal_seq".into(), Json::from(wal_seq)),
            ("statements".into(), Json::Arr(statements)),
            ("isum".into(), self.isum.snapshot()),
        ];
        if let Some(d) = drift {
            fields.push(("drift".into(), d.clone()));
        }
        Json::Obj(fields)
    }

    /// Rebuilds an engine (plus the sequencer high-water mark, the WAL
    /// record watermark, and the checkpointed drift state, if any) from a
    /// [`Engine::snapshot`] document. Statements are re-parsed and
    /// re-bound in order with their checkpointed cost bits, and the
    /// observer state is restored bit-exactly from its own snapshot. A
    /// missing `wal_seq` (pre-WAL snapshot) restores as 0; a missing
    /// `drift` field restores as `None` (fresh tracker).
    pub fn restore(
        catalog: Catalog,
        config: IsumConfig,
        snap: &Json,
    ) -> Result<(Engine, u64, u64, Option<Json>)> {
        let corrupt = |what: &str| Error::Io(format!("corrupt server checkpoint: {what}"));
        let obj = snap.as_object().ok_or_else(|| corrupt("not an object"))?;
        let field = |name: &str| obj.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        match field("version").and_then(Json::as_u64) {
            Some(1) => {}
            other => return Err(corrupt(&format!("unsupported version {other:?}"))),
        }
        let next_seq =
            field("next_seq").and_then(Json::as_u64).ok_or_else(|| corrupt("missing next_seq"))?;
        let wal_seq = field("wal_seq").and_then(Json::as_u64).unwrap_or(0);
        let statements = field("statements")
            .and_then(Json::as_array)
            .ok_or_else(|| corrupt("missing statements"))?;
        let mut workload = Workload::empty(catalog);
        for (i, entry) in statements.iter().enumerate() {
            let Some([sql, bits]) = entry.as_array().and_then(|a| <&[Json; 2]>::try_from(a).ok())
            else {
                return Err(corrupt(&format!("statement {i} is not a [sql, cost] pair")));
            };
            let sql = sql.as_str().ok_or_else(|| corrupt("statement sql is not a string"))?;
            let cost = bits
                .as_str()
                .and_then(unhex_bits)
                .ok_or_else(|| corrupt("statement cost is not a bit pattern"))?;
            workload
                .push_sql(sql, cost)
                .map_err(|e| corrupt(&format!("statement {i} no longer binds: {e}")))?;
        }
        let isum_snap = field("isum").ok_or_else(|| corrupt("missing isum snapshot"))?;
        let isum = IncrementalIsum::restore(config, isum_snap)?;
        if isum.len() != workload.len() {
            return Err(corrupt(&format!(
                "observer has {} queries but workload has {}",
                isum.len(),
                workload.len()
            )));
        }
        let drift = field("drift").cloned();
        Ok((Engine { workload, isum }, next_seq, wal_seq, drift))
    }

    /// Writes [`Engine::snapshot`] to `path` atomically: the document is
    /// written to `<path>.tmp` and renamed into place, so a crash leaves
    /// either the previous checkpoint or the new one, never a torn file.
    pub fn checkpoint_to(
        &self,
        path: &Path,
        next_seq: u64,
        wal_seq: u64,
        drift: Option<&Json>,
    ) -> Result<()> {
        let doc = self.snapshot(next_seq, wal_seq, drift).to_pretty();
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, doc)?;
        std::fs::rename(&tmp, path)?;
        count!("server.checkpoints");
        Ok(())
    }

    /// Loads an engine from a checkpoint file written by
    /// [`Engine::checkpoint_to`].
    pub fn restore_from(
        catalog: Catalog,
        config: IsumConfig,
        path: &Path,
    ) -> Result<(Engine, u64, u64, Option<Json>)> {
        let text = std::fs::read_to_string(path)?;
        let snap =
            Json::parse(&text).map_err(|e| Error::Io(format!("corrupt server checkpoint: {e}")))?;
        Engine::restore(catalog, config, &snap)
    }
}

/// Renders a compressed selection as the canonical summary JSON shared by
/// `GET /summary` and `isum compress --json`: selection order is
/// preserved and each weight carries its exact IEEE-754 bit pattern.
pub fn summary_to_json(
    k: usize,
    observed: usize,
    templates: usize,
    entries: &[(isum_common::QueryId, f64)],
) -> Json {
    let selected: Vec<Json> = entries
        .iter()
        .map(|(id, w)| {
            Json::Obj(vec![
                ("query".into(), Json::from(id.index())),
                ("weight".into(), Json::from(*w)),
                ("weight_bits".into(), Json::from(hex_bits(*w))),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("k".into(), Json::from(k)),
        ("observed".into(), Json::from(observed)),
        ("templates".into(), Json::from(templates)),
        ("selected".into(), Json::Arr(selected)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use isum_catalog::CatalogBuilder;
    use isum_core::Compressor;

    fn catalog() -> Catalog {
        CatalogBuilder::new()
            .table("t", 100_000)
            .col_key("id")
            .col_int("grp", 500, 0, 500)
            .col_int("v", 1000, 0, 10_000)
            .finish()
            .expect("fresh table")
            .build()
    }

    fn script(n: usize) -> String {
        (0..n)
            .map(|i| format!("SELECT id FROM t WHERE grp = {} AND v > {};\n", i % 7, i * 3))
            .collect()
    }

    #[test]
    fn apply_matches_batch_cli_load_path() {
        let mut engine = Engine::new(catalog(), IsumConfig::isum());
        let outcome = engine.apply_script(&script(12));
        assert_eq!(outcome.accepted, 12);
        assert!(outcome.rejected.is_empty());

        // The batch reference: load the same script through the loader and
        // fill costs the way the CLI does.
        let mut w = isum_workload::load_script(catalog(), &script(12)).expect("loads");
        isum_optimizer::populate_costs(&mut w);
        let batch = isum_core::Isum::new().compress(&w, 5).expect("compresses");
        let live = engine.summary_json(5).expect("summarizes");
        let reference = summary_to_json(5, w.len(), w.template_count(), &batch.entries);
        assert_eq!(live.to_pretty(), reference.to_pretty(), "live /summary == batch compress");
    }

    #[test]
    fn bad_statements_are_lenient_and_stateless() {
        let mut engine = Engine::new(catalog(), IsumConfig::isum());
        let outcome = engine.apply_script(
            "SELECT id FROM t WHERE grp = 1;\n\
             SELECT FROM;\n\
             SELECT id FROM no_such_table;\n\
             SELECT id FROM t WHERE grp = 2;",
        );
        assert_eq!(outcome.accepted, 2);
        assert_eq!(outcome.total, 4);
        assert_eq!(outcome.rejected.len(), 2);
        assert_eq!(outcome.rejected[0].0, 1);
        assert_eq!(outcome.rejected[1].0, 2);
        assert_eq!(engine.observed(), 2, "rejected statements leave no state");
        engine.summary_json(2).expect("engine still serves summaries");
    }

    #[test]
    fn checkpoint_round_trip_is_bit_exact() {
        let mut engine = Engine::new(catalog(), IsumConfig::isum());
        engine.apply_script(&script(9));
        let drift_state = Json::Obj(vec![("above".into(), Json::from(true))]);
        let snap = engine.snapshot(4, 17, Some(&drift_state));
        let reparsed = Json::parse(&snap.to_pretty()).expect("snapshot parses");
        let (restored, next_seq, wal_seq, drift) =
            Engine::restore(catalog(), IsumConfig::isum(), &reparsed).expect("restores");
        assert_eq!(next_seq, 4);
        assert_eq!(wal_seq, 17);
        assert_eq!(restored.observed(), 9);
        assert_eq!(drift.as_ref().map(Json::to_pretty), Some(drift_state.to_pretty()));
        assert_eq!(
            restored.summary_json(4).unwrap().to_pretty(),
            engine.summary_json(4).unwrap().to_pretty(),
            "restored engine summarizes bit-identically"
        );

        // Snapshots written before the WAL existed carry no `wal_seq`
        // field and restore with watermark 0, not an error. The same
        // compatibility holds for the optional `drift` field: a snapshot
        // without one restores drift state `None`.
        let legacy = engine
            .snapshot(4, 17, None)
            .to_pretty()
            .lines()
            .filter(|l| !l.trim_start().starts_with("\"wal_seq\""))
            .collect::<Vec<_>>()
            .join("\n");
        let legacy = Json::parse(&legacy).expect("legacy doc parses");
        let (_, next_seq, wal_seq, drift) =
            Engine::restore(catalog(), IsumConfig::isum(), &legacy).expect("legacy restores");
        assert_eq!((next_seq, wal_seq), (4, 0));
        assert!(drift.is_none(), "no drift field restores as None");
    }

    #[test]
    fn corrupt_checkpoints_are_errors() {
        for bad in [
            "[]",
            r#"{"version": 2, "next_seq": 0, "statements": [], "isum": {}}"#,
            r#"{"version": 1, "statements": [], "isum": {}}"#,
            r#"{"version": 1, "next_seq": 0, "statements": [["SELECT FROM", "0"]], "isum": {}}"#,
        ] {
            let snap = Json::parse(bad).expect("test doc parses");
            let err =
                Engine::restore(catalog(), IsumConfig::isum(), &snap).err().expect("must fail");
            assert!(err.to_string().contains("corrupt"), "{bad} -> {err}");
        }
    }

    #[test]
    fn resummarize_keeps_suffix_bit_identically() {
        let mut engine = Engine::new(catalog(), IsumConfig::isum());
        engine.apply_script(&script(12));
        let kept = engine.resummarize_keep_last(5);
        assert_eq!(kept, 5);
        assert_eq!(engine.observed(), 5);

        // The rebuilt engine must summarize exactly like an engine that
        // only ever saw the retained suffix (statements 7..12).
        let suffix: String = (7..12)
            .map(|i| format!("SELECT id FROM t WHERE grp = {} AND v > {};\n", i % 7, i * 3))
            .collect();
        let mut reference = Engine::new(catalog(), IsumConfig::isum());
        reference.apply_script(&suffix);
        assert_eq!(
            engine.summary_json(3).unwrap().to_pretty(),
            reference.summary_json(3).unwrap().to_pretty(),
            "resummarized engine == fresh engine over the suffix"
        );

        // Keeping more than observed keeps everything.
        assert_eq!(engine.resummarize_keep_last(100), 5);
    }

    #[test]
    fn tune_runs_on_compressed_workload() {
        let mut engine = Engine::new(catalog(), IsumConfig::isum());
        engine.apply_script(&script(10));
        let out = engine.tune_json(4, "dta", &TuningConstraints::with_max_indexes(2)).unwrap();
        let obj = out.as_object().unwrap();
        assert!(obj.iter().any(|(k, _)| k == "indexes"));
        assert!(engine.tune_json(4, "nope", &TuningConstraints::with_max_indexes(2)).is_err());
    }
}
