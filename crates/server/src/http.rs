//! Minimal HTTP/1.1 framing over blocking `std::net` streams.
//!
//! The daemon speaks just enough HTTP for its wire API:
//! `Content-Length`-delimited bodies, percent-encoded query strings, and
//! HTTP/1.1 persistent connections (a client sending `Connection: close`
//! — as [`crate::Client`] does — gets the old one-request-per-connection
//! behavior). No chunked transfer, no pipelining, no TLS — the service
//! fronts an in-process engine on a trusted network, and every byte of
//! framing here is code we can test without a dependency.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use isum_common::{Json, Stage, StageClock};

/// Hard cap on request bodies: an ingest batch is SQL text, so anything
/// past this is a client bug, not a workload.
pub const MAX_BODY: usize = 8 * 1024 * 1024;

/// Cap on header section size (request line + headers).
const MAX_HEAD: usize = 64 * 1024;

/// A parsed HTTP request: method, path, decoded query parameters, and body.
#[derive(Debug)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the request target, without the query string.
    pub path: String,
    /// Percent-decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes).
    pub body: Vec<u8>,
    /// Whether the connection may be reused after this exchange:
    /// HTTP/1.1 defaults to keep-alive unless the client sent
    /// `Connection: close`; HTTP/1.0 requires an explicit
    /// `Connection: keep-alive`.
    pub keep_alive: bool,
}

impl Request {
    /// First value of query parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Reads one request from `stream`.
    ///
    /// The outer `Err` is a transport problem (peer hung up, timeout) —
    /// there is nobody to answer, so callers just drop the connection.
    /// The inner `Err` is a malformed request the caller should answer
    /// with the given status code and message.
    ///
    /// `Expect: 100-continue` is honored by writing the interim response
    /// before reading the body, so `curl -d @file` works out of the box.
    pub fn read(stream: &TcpStream) -> io::Result<Result<Request, (u16, String)>> {
        Self::read_timed(stream).map(|r| r.map(|(req, _)| req))
    }

    /// [`Request::read`] plus a per-request [`StageClock`]. The clock is
    /// created *after* the request line arrives — a keep-alive
    /// connection's idle wait belongs to the client, not the pipeline —
    /// and comes back with `recv` (head + body off the socket) and
    /// `parse` (struct assembly) already stamped.
    pub fn read_timed(
        stream: &TcpStream,
    ) -> io::Result<Result<(Request, StageClock), (u16, String)>> {
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        if read_head_line(&mut reader, &mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"));
        }
        let clock = StageClock::new();
        let mut parts = line.split_whitespace();
        let (Some(method), Some(target), Some(version)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Ok(Err((400, format!("malformed request line `{}`", line.trim()))));
        };
        if !version.starts_with("HTTP/1.") {
            return Ok(Err((400, format!("unsupported protocol `{version}`"))));
        }
        let http10 = version == "HTTP/1.0";
        let method = method.to_ascii_uppercase();
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), parse_query(q)),
            None => (target.to_string(), Vec::new()),
        };

        let mut headers = Vec::new();
        let mut content_length: usize = 0;
        let mut expect_continue = false;
        let mut keep_alive = !http10;
        let mut head_bytes = line.len();
        loop {
            line.clear();
            if read_head_line(&mut reader, &mut line)? == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "headers truncated"));
            }
            head_bytes += line.len();
            if head_bytes > MAX_HEAD {
                return Ok(Err((431, "header section too large".into())));
            }
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            let Some((name, value)) = trimmed.split_once(':') else {
                return Ok(Err((400, format!("malformed header `{trimmed}`"))));
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            match name.as_str() {
                "content-length" => match value.parse::<usize>() {
                    Ok(n) => content_length = n,
                    Err(_) => return Ok(Err((400, format!("bad Content-Length `{value}`")))),
                },
                "expect" if value.eq_ignore_ascii_case("100-continue") => expect_continue = true,
                "connection" => {
                    if value.eq_ignore_ascii_case("close") {
                        keep_alive = false;
                    } else if value.eq_ignore_ascii_case("keep-alive") {
                        keep_alive = true;
                    }
                }
                _ => {}
            }
            headers.push((name, value));
        }
        if content_length > MAX_BODY {
            return Ok(Err((413, format!("body of {content_length} bytes exceeds {MAX_BODY}"))));
        }
        if expect_continue && content_length > 0 {
            let mut w = stream;
            w.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        clock.stamp(Stage::Recv);
        let req = Request { method, path, query, headers, body, keep_alive };
        clock.stamp(Stage::Parse);
        Ok(Ok((req, clock)))
    }
}

/// Reads one CRLF-terminated head line; returns 0 on clean EOF.
fn read_head_line(reader: &mut BufReader<&TcpStream>, line: &mut String) -> io::Result<usize> {
    line.clear();
    reader.read_line(line)
}

/// Decodes an `application/x-www-form-urlencoded` query string.
fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Percent-decoding with `+` as space; invalid escapes pass through verbatim.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len()
                && bytes[i + 1].is_ascii_hexdigit()
                && bytes[i + 2].is_ascii_hexdigit() =>
            {
                let hi = (bytes[i + 1] as char).to_digit(16).unwrap_or(0) as u8;
                let lo = (bytes[i + 2] as char).to_digit(16).unwrap_or(0) as u8;
                out.push(hi << 4 | lo);
                i += 2;
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// An HTTP response under construction.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the synthesized framing headers.
    pub headers: Vec<(String, String)>,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response (pretty-printed, trailing newline for curl comfort).
    pub fn json(status: u16, body: &Json) -> Response {
        let mut text = body.to_pretty();
        text.push('\n');
        Response {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: text.into_bytes(),
        }
    }

    /// A plain-text response (newline-terminated).
    pub fn text(status: u16, body: &str) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "text/plain",
            body: format!("{body}\n").into_bytes(),
        }
    }

    /// A response with an explicit content type and raw body (used for
    /// non-JSON expositions like Prometheus text and JSONL event tails).
    pub fn raw(status: u16, content_type: &'static str, body: Vec<u8>) -> Response {
        Response { status, headers: Vec::new(), content_type, body }
    }

    /// A JSON error envelope: `{"error": msg, "status": code}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            &Json::Obj(vec![
                ("error".into(), Json::from(message)),
                ("status".into(), Json::from(u64::from(status))),
            ]),
        )
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serializes the response onto `w` with `Connection: close` framing.
    pub fn write(&self, w: &mut impl Write) -> io::Result<()> {
        self.write_framed(w, false)
    }

    /// Serializes the response onto `w`, advertising `Connection:
    /// keep-alive` or `Connection: close` per `keep_alive`. Bodies are
    /// always `Content-Length`-delimited, so the frame is identical
    /// either way apart from the `Connection` header.
    pub fn write_framed(&self, w: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, status_text(self.status))?;
        write!(w, "Content-Type: {}\r\n", self.content_type)?;
        write!(w, "Content-Length: {}\r\n", self.body.len())?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        let conn: &[u8] = if keep_alive {
            b"Connection: keep-alive\r\n\r\n"
        } else {
            b"Connection: close\r\n\r\n"
        };
        w.write_all(conn)?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Process-global call counter feeding [`retry_after_value`].
static RETRY_JITTER_CALLS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// The `Retry-After` value for a retryable 429/503: `base` plus a
/// bounded jitter of 0 or 1 seconds, so a herd of concurrent connections
/// told to back off does not return in lockstep. The jitter is a pure
/// function (a SplitMix64 bit-mix) of a process-global call counter — no
/// clocks, no OS randomness — so a fixed request sequence produces a
/// fixed jitter sequence and seeded fault tests stay reproducible.
/// Protocol-speed retry sites (`Retry-After: 0` on ahead-of-stream and
/// injected-fault responses) do not jitter: their retries are the
/// convergence mechanism, not a thundering herd.
pub(crate) fn retry_after_value(base: u64) -> String {
    let n = RETRY_JITTER_CALLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut z = n.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (base + (z & 1)).to_string()
}

/// Canonical reason phrases for the status codes the daemon emits.
pub fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// A raw response as read off the wire: status code, headers (lowercased
/// names), and body bytes.
pub type RawResponse = (u16, Vec<(String, String)>, Vec<u8>);

/// Reads one HTTP response from `stream`: status code, headers
/// (lowercased names), and the `Content-Length`-delimited body. The
/// client half of the framing above, shared by [`crate::Client`].
pub fn read_response(stream: &TcpStream) -> io::Result<RawResponse> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "no status line"));
        }
        // Skip interim 1xx responses (the server sends `100 Continue`).
        if !line.starts_with("HTTP/1.1 1") {
            break;
        }
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "interim truncated"));
            }
            if line.trim_end().is_empty() {
                break;
            }
        }
    }
    let status: u16 =
        line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad status: {line}"))
        })?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "headers truncated"));
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().unwrap_or(0);
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length.min(MAX_BODY)];
    reader.read_exact(&mut body)?;
    Ok((status, headers, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_strings_decode() {
        let q = parse_query("k=10&sql=SELECT%20a+b&flag");
        assert_eq!(q[0], ("k".to_string(), "10".to_string()));
        assert_eq!(q[1], ("sql".to_string(), "SELECT a b".to_string()));
        assert_eq!(q[2], ("flag".to_string(), String::new()));
    }

    #[test]
    fn percent_decode_handles_truncated_escapes() {
        assert_eq!(percent_decode("a%2"), "a%2");
        assert_eq!(percent_decode("a%"), "a%");
        assert_eq!(percent_decode("%41%zz"), "A%zz");
    }

    #[test]
    fn response_frames_are_well_formed() {
        let mut buf = Vec::new();
        Response::text(200, "hi").with_header("Retry-After", "1").write(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 3\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nhi\n"), "{text}");
    }

    #[test]
    fn keep_alive_frames_advertise_reuse() {
        let mut buf = Vec::new();
        Response::text(200, "hi").write_framed(&mut buf, true).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(!text.contains("Connection: close"), "{text}");

        let mut buf = Vec::new();
        Response::text(200, "hi").write_framed(&mut buf, false).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("Connection: close\r\n"), "{text}");
    }

    #[test]
    fn retry_after_jitter_stays_in_bounds_and_varies() {
        let draws: Vec<u64> = (0..128).map(|_| retry_after_value(1).parse().unwrap()).collect();
        assert!(draws.iter().all(|&v| v == 1 || v == 2), "jitter is bounded to base..=base+1");
        assert!(draws.contains(&1) && draws.contains(&2), "jitter varies");
    }

    #[test]
    fn error_envelope_is_json() {
        let r = Response::error(429, "queue full");
        let parsed = Json::parse(std::str::from_utf8(&r.body).unwrap()).unwrap();
        let obj = parsed.as_object().unwrap();
        assert!(obj.iter().any(|(k, v)| k == "error" && v.as_str() == Some("queue full")));
    }
}
