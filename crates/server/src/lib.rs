//! `isum_server` — the online workload-compression service.
//!
//! Wraps [`isum_core::IncrementalIsum`] in a zero-dependency HTTP/1.1
//! daemon (`std::net` only) so a database can stream its query log to a
//! long-running compressor and ask for an up-to-date workload summary —
//! or a full index recommendation — at any time, instead of re-running
//! batch compression from scratch (DESIGN.md §10).
//!
//! # Wire API
//!
//! | Endpoint | Effect |
//! |----------|--------|
//! | `POST /ingest[?seq=N]` | apply a `;`-separated SQL script (lenient per statement) |
//! | `GET /summary?k=N` | compress observed queries to `k`, with exact weight bits |
//! | `GET /summary/explain?k=N` | per-member template attribution + coverage gauges |
//! | `GET /status[?k=N]` | one-document rollup: seq, queue, checkpoint age, coverage, drift, span timings |
//! | `POST /tune?k=N[&m=M&advisor=dta\|dexter&budget_bytes=B]` | advisor on the compressed workload |
//! | `GET /healthz` | liveness + observed-query count |
//! | `GET /telemetry` | telemetry snapshot (when enabled) |
//! | `POST /shutdown` | graceful drain + final checkpoint |
//!
//! Error statuses follow the [`isum_common::IsumError`] taxonomy:
//! Transient → 503 (+`Retry-After`), Permanent → 400, Budget → 429. A
//! full ingest queue answers 429 with `Retry-After` — backpressure, not
//! a dropped connection.
//!
//! # Guarantees
//!
//! * A live `/summary` over ingested statements is **bit-identical** to
//!   `isum compress` over the same script (shared featurize → select →
//!   weigh pipeline; weights compared by IEEE-754 bit pattern).
//! * Sequenced concurrent ingest is **deterministic**: batches stamped
//!   with contiguous `seq` numbers are applied in order no matter how
//!   many connections deliver them.
//! * With a checkpoint configured, every acknowledged batch is on disk
//!   (atomic temp-file + rename) before the ack, so a `SIGKILL` and
//!   restart resumes the observed workload bit-identically and client
//!   retries of unacknowledged batches converge via duplicate detection.

mod client;
mod drift;
mod engine;
mod http;
mod server;

pub use client::{ApiResponse, Client};
pub use engine::{summary_to_json, Engine, IngestOutcome};
pub use http::{Request, Response};
pub use server::{install_signal_handlers, signal_pending, Server, ServerConfig};
