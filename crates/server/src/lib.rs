//! `isum_server` — the online workload-compression service.
//!
//! Wraps [`isum_core::IncrementalIsum`] in a zero-dependency HTTP/1.1
//! daemon (`std::net` only) so a database can stream its query log to a
//! long-running compressor and ask for an up-to-date workload summary —
//! or a full index recommendation — at any time, instead of re-running
//! batch compression from scratch (DESIGN.md §10). The daemon is
//! multi-tenant: each `X-Isum-Tenant` value owns an isolated shard
//! (engine + sequencer + drift tracker + checkpoint), and a cross-shard
//! `GET /summary` merges every shard's partial sums deterministically
//! (DESIGN.md §13). `ISUM_SHARDS=n` instead spreads a single-tenant
//! stream over `n` hash-routed shards for parallel ingest.
//!
//! # Wire API
//!
//! | Endpoint | Effect |
//! |----------|--------|
//! | `POST /ingest[?seq=N]` | apply a `;`-separated SQL script (lenient per statement) to the request's tenant |
//! | `GET /summary?k=N[&tenant=T]` | per-tenant: compress that shard to `k`, exact weight bits; no tenant + several shards: the merged template-level summary |
//! | `GET /summary/explain?k=N[&tenant=T]` | per-member template attribution + coverage gauges (per-shard) |
//! | `GET /status[?k=N]` | one-document rollup: seq, queue, checkpoint age, WAL durability, coverage, drift, span timings, per-shard breakdown |
//! | `POST /tune?k=N[&m=M&advisor=dta\|dexter&budget_bytes=B&tenant=T]` | advisor on the shard's compressed workload |
//! | `GET /healthz` | liveness + totals + shard count |
//! | `GET /telemetry` | telemetry snapshot (when enabled) |
//! | `GET /metrics` | Prometheus exposition + tenant-labeled `isum_shard_*` families |
//! | `POST /shutdown` | graceful drain + final per-shard WAL compactions |
//!
//! Every endpoint accepts the tenant as either the `X-Isum-Tenant`
//! header or a `tenant` query parameter (the parameter wins). Tenant
//! names are validated identically on the server and in `isum client
//! --tenant`: non-empty, ≤ 64 bytes, visible ASCII, no `/`
//! ([`validate_tenant`]).
//!
//! Error statuses follow the [`isum_common::IsumError`] taxonomy:
//! Transient → 503 (+`Retry-After`), Permanent → 400, Budget → 429. A
//! full ingest queue answers 429 with `Retry-After` — backpressure, not
//! a dropped connection. Retryable `Retry-After` values carry a bounded
//! deterministic jitter (base or base+1 seconds) so concurrent clients
//! told to back off do not return in lockstep. Malformed query
//! parameters answer a typed 400 whose body names the parameter
//! (`{"error", "param", "status"}`).
//!
//! Connections are HTTP/1.1 persistent: a client may issue any number of
//! requests over one socket (`crates/loadgen` does), and `Connection:
//! close` restores the one-request-per-connection behavior.
//!
//! Workload drift (template-distribution divergence between the recent
//! window and the summarized history) is scored after every applied
//! batch. `ISUM_DRIFT_ACTION=warn` (default) only raises the
//! edge-triggered alert; `ISUM_DRIFT_ACTION=resummarize` additionally
//! re-summarizes the shard over the recent window, behind the sequencer,
//! so the adaptation is deterministic for a fixed request stream.
//!
//! # Guarantees
//!
//! * A live per-tenant `/summary` over ingested statements is
//!   **bit-identical** to `isum compress` over the same script (shared
//!   featurize → select → weigh pipeline; weights compared by IEEE-754
//!   bit pattern).
//! * Sequenced concurrent ingest is **deterministic**: batches stamped
//!   with contiguous `seq` numbers are applied in order no matter how
//!   many connections deliver them. Each tenant's stream is ordered
//!   independently.
//! * The **merged** `/summary` is bit-deterministic under shard count,
//!   shard assignment, and ingest interleaving: partial sums are
//!   re-sorted canonically before every floating-point fold and ties
//!   break on template fingerprints ([`isum_core::merge_partials`]).
//! * With a checkpoint configured, every acknowledged batch is **durably
//!   logged** before the ack: the batch's statements are appended to a
//!   per-shard write-ahead log (CRC-checksummed, length-prefixed
//!   records) and `fsync`ed first; snapshots are periodic compaction
//!   artifacts, after which the log is truncated. A `SIGKILL` at any
//!   point and restart replays the newest valid snapshot plus the WAL
//!   tail through the normal observe path and resumes every shard
//!   bit-identically; a torn final record (crash mid-append) is
//!   truncated with a warning, and client retries of unacknowledged
//!   batches converge via duplicate detection (DESIGN.md §14).

mod client;
mod drift;
mod engine;
mod http;
mod server;
mod shards;
mod wal;

pub use client::{ApiResponse, Client};
pub use drift::DriftAction;
pub use engine::{summary_to_json, Engine, IngestOutcome};
pub use http::{read_response, RawResponse, Request, Response};
pub use server::{install_signal_handlers, signal_pending, Server, ServerConfig};
pub use shards::{validate_tenant, ShardMode, DEFAULT_TENANT};
